//! Rowhammer-scenario exploration (paper §VI "Security").
//!
//! "We intend to use DStress for discovering new 'rowhammer' attack
//! scenarios … it enables us to find the combination of data and access
//! patterns maximizing the probability of errors without knowledge of the
//! internal DRAM design."
//!
//! This example profiles the error-prone rows of a DIMM, then searches for
//! the neighbour-row access pattern that maximizes errors in them, and
//! inspects which aggressor rows the discovered access viruses use —
//! without ever reading the device's hidden topology.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example rowhammer_exploration
//! ```

use dstress::{DStress, EnvKind, ExperimentScale, Metric, WORST_WORD};
use dstress_vpl::BoundValue;

fn main() -> Result<(), dstress::DStressError> {
    let mut dstress = DStress::new(ExperimentScale::quick(), 99);
    let temp = 60.0;

    println!("phase 1: profiling error-prone (victim) rows at {temp} °C ...");
    let victims = dstress.profile_victims(temp, WORST_WORD)?;
    for v in &victims {
        println!("  victim row: {v}");
    }

    println!("\nphase 2: measuring the data-only baseline on those rows ...");
    let baseline = dstress.measure(
        &EnvKind::Word64,
        [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into(),
        temp,
        Metric::CeInRows(victims.clone()),
    )?;
    println!(
        "  data-only victim-row errors: {:.1} CEs/run",
        baseline.fitness
    );

    println!("\nphase 3: GA search over neighbour-row access patterns ...");
    let campaign = dstress.search_row_access(temp, victims.clone(), WORST_WORD)?;
    println!(
        "  best access virus: {:.1} CEs/run ({:+.0} % over data-only)",
        campaign.result.best_fitness,
        (campaign.result.best_fitness / baseline.fitness.max(1.0) - 1.0) * 100.0
    );
    println!(
        "  search similarity {:.2} — {} (saturating disturbance leaves many equally strong \
         aggressor subsets; paper Fig. 11)",
        campaign.result.similarity,
        if campaign.result.converged {
            "converged"
        } else {
            "did not converge"
        }
    );

    println!("\naggressor rows used by the strongest discovered virus:");
    let best = &campaign.result.best;
    let mut aggressors = Vec::new();
    for r in 0..64usize {
        if best.bit(r) {
            // r < 32 are the predecessors -32..-1; r >= 32 the successors.
            let offset: i64 = if r < 32 { r as i64 - 32 } else { r as i64 - 31 };
            aggressors.push(offset);
        }
    }
    println!("  chunk offsets relative to each victim: {aggressors:?}");
    println!(
        "  ({} of 64 neighbour rows hammered; offsets that are multiples of 8 are \
         same-bank adjacent rows — classic rowhammer aggressors)",
        aggressors.len()
    );
    Ok(())
}
