//! Authoring a custom virus template (paper §III-A, Fig. 3).
//!
//! DStress is a *programming tool*: users describe a family of viruses as a
//! C-like template with `$$$_NAME_$$$` placeholders, declare each
//! placeholder's domain in the `->parameters` section, and let the GA
//! explore it. This example writes a template from scratch — a virus that
//! fills memory with an alternating pair of searched words — processes it,
//! wires it to a custom GA search, and prints the winning program.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_template
//! ```

use dstress::{DStress, ExperimentScale, Metric};
use dstress_ga::{BitGenome, Fitness, GaEngine};
use dstress_vpl::{pretty, BoundValue, Template};
use std::collections::HashMap;

/// The custom template: two searched words written to alternating columns.
const TWO_WORD_TEMPLATE: &str = r#"
->parameters
$$$_EVEN_$$$ [0,18446744073709551615]
$$$_ODD_$$$ [0,18446744073709551615]

->local_data
unsigned long long i = 0;
unsigned long long acc = 0;

->body
volatile unsigned long long* buf = (unsigned long long*)(malloc($$$_MEM_BYTES_$$$));
/* alternating data pattern */
for (i = 0; i < $$$_MEM_WORDS_$$$; i += 2) {
    buf[i] = $$$_EVEN_$$$;
    buf[i + 1] = $$$_ODD_$$$;
}
/* read pressure */
for (i = 0; i < $$$_MEM_WORDS_$$$; i += 1) {
    acc += buf[i];
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::quick();

    // Processing phase: lexical/syntax/semantic analysis + parameter
    // extraction (paper §III-D).
    let template = Template::parse(TWO_WORD_TEMPLATE)?;
    let processed = template.process(&HashMap::new())?;
    println!("searched parameters:");
    for p in processed.params() {
        println!("  {} : {:?}", p.name, p.shape);
    }

    // Build an evaluator for the custom template against the platform.
    let dstress = DStress::new(scale, 7);
    let mem_words = scale.dimm_words();
    let env: HashMap<String, BoundValue> = [
        ("MEM_BYTES".to_string(), BoundValue::Scalar(mem_words * 8)),
        ("MEM_WORDS".to_string(), BoundValue::Scalar(mem_words)),
    ]
    .into_iter()
    .collect();
    let mut evaluator = dstress::VirusEvaluator::new(
        dstress.server_at(60.0)?,
        processed.clone(),
        env.clone(),
        Metric::CeAverage,
        scale.runs_per_virus,
        2,
    );

    // Synthesis phase: a 128-bit chromosome = the two searched words.
    struct TwoWordFitness<'a> {
        evaluator: &'a mut dstress::VirusEvaluator,
    }
    impl Fitness<BitGenome> for TwoWordFitness<'_> {
        fn evaluate(&mut self, genome: &BitGenome) -> f64 {
            let words = genome.to_words();
            self.evaluator.fitness_of(
                [
                    ("EVEN".to_string(), BoundValue::Scalar(words[0])),
                    ("ODD".to_string(), BoundValue::Scalar(words[1])),
                ]
                .into(),
            )
        }
    }

    println!("\nsearching the two-word pattern space at 60 °C ...");
    let mut engine = GaEngine::new(scale.ga, 11);
    let mut fitness = TwoWordFitness {
        evaluator: &mut evaluator,
    };
    let result = engine.run(|rng| BitGenome::random(rng, 128), &mut fitness);
    let words = result.best.to_words();
    println!(
        "best pair: even {:#018x} / odd {:#018x} -> {:.1} CEs/run ({} generations)",
        words[0], words[1], result.best_fitness, result.generations
    );

    // Evaluation phase artifact: render the winning program as source.
    let mut bindings = env;
    bindings.insert("EVEN".into(), BoundValue::Scalar(words[0]));
    bindings.insert("ODD".into(), BoundValue::Scalar(words[1]));
    let program = processed.instantiate(&bindings)?;
    println!(
        "\nthe synthesized virus:\n{}",
        pretty::render_program(&program)
    );
    Ok(())
}
