//! Fleet screening: predictive maintenance with synthesized viruses
//! (paper §VI "DRAM reliability testing").
//!
//! A data-centre operator wants to find the DIMMs that will misbehave
//! under relaxed operating parameters *before* deploying them. This
//! example screens a fleet of simulated servers (each with four distinct
//! DIMMs) using (a) the classic MSCAN micro-benchmark and (b) the
//! synthesized worst-case virus, and shows that the virus exposes weak
//! modules the micro-benchmark misses.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fleet_screening
//! ```

use dstress::report::TextTable;
use dstress::{Baseline, DStress, EnvKind, ExperimentScale, Metric, WORST_WORD};
use dstress_vpl::BoundValue;

fn main() -> Result<(), dstress::DStressError> {
    let fleet_size = 6;
    let screen_temp = 55.0;

    println!("screening {fleet_size} servers at {screen_temp} °C under relaxed parameters ...\n");
    let mut table = TextTable::new(vec![
        "server",
        "MSCAN CEs",
        "virus CEs",
        "virus UE?",
        "verdict",
    ]);

    let mut flagged_by_virus_only = 0;
    for server_id in 0..fleet_size {
        // Each server in the fleet has different physical DIMMs: new seeds.
        let mut scale = ExperimentScale::quick();
        for (slot, seed) in scale.server.dimm_seeds.iter_mut().enumerate() {
            *seed = 0xF1EE7 + server_id * 16 + slot as u64;
        }
        // Manufacturing spread across the fleet.
        scale.server.density_multipliers = [0.4, 0.8, 0.5 + 0.45 * server_id as f64, 0.2];
        let dstress = DStress::new(scale, server_id);

        // (a) classic MSCAN screen.
        let mscan = dstress.measure(
            &EnvKind::CycleFill {
                cycle: Baseline::All0s.cycle(),
            },
            Default::default(),
            screen_temp,
            Metric::CeAverage,
        )?;
        // (b) synthesized worst-case virus screen.
        let virus = dstress.measure(
            &EnvKind::Word64,
            [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into(),
            screen_temp,
            Metric::CeAverage,
        )?;

        // Screening policy: flag a server whose stress-error rate exceeds
        // a fixed budget.
        let budget = 400.0;
        let mscan_flags = mscan.fitness > budget;
        let virus_flags = virus.fitness > budget || virus.ue_runs > 0;
        if virus_flags && !mscan_flags {
            flagged_by_virus_only += 1;
        }
        table.row(vec![
            format!("server-{server_id}"),
            format!("{:.0}", mscan.fitness),
            format!("{:.0}", virus.fitness),
            if virus.ue_runs > 0 {
                "yes".into()
            } else {
                "no".into()
            },
            match (mscan_flags, virus_flags) {
                (_, false) => "ok".into(),
                (true, true) => "flagged (both)".into(),
                (false, true) => "flagged (virus only)".into(),
            },
        ]);
    }

    println!("{}", table.render());
    println!(
        "{flagged_by_virus_only} of {fleet_size} weak servers were caught only by the synthesized virus —"
    );
    println!("the paper's point: classic micro-benchmarks under-stress DRAM (§V-A.1, Fig. 8e).");
    Ok(())
}
