//! Power tuning: discover safe DRAM operating margins and convert them to
//! energy savings (paper §VI "Scaling of DRAM parameters", Fig. 14).
//!
//! Uses the worst-case virus to find, per temperature, the largest refresh
//! period that manifests no errors under lowered supply voltage, then
//! reports the DRAM and system power saved by running the second memory
//! domain at that margin.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example power_tuning
//! ```

use dstress::report::TextTable;
use dstress::usecases::{find_marginal_trefp, savings_at_margin, SafetyCriterion};
use dstress::{DStress, EnvKind, ExperimentScale, WORST_WORD};
use dstress_vpl::BoundValue;
use std::collections::HashMap;

fn main() -> Result<(), dstress::DStressError> {
    let dstress = DStress::new(ExperimentScale::quick(), 7);
    let virus: HashMap<String, dstress_vpl::BoundValue> =
        [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into();

    println!("sweeping refresh periods with the worst-case virus ...\n");
    let mut table = TextTable::new(vec![
        "temp",
        "criterion",
        "marginal TREFP",
        "DRAM savings",
        "system savings",
    ]);
    for temp in [50.0, 60.0, 70.0] {
        for criterion in [SafetyCriterion::NoErrors, SafetyCriterion::NoUncorrectable] {
            let margin =
                find_marginal_trefp(&dstress, &EnvKind::Word64, &virus, temp, criterion, 10)?;
            let savings = savings_at_margin(margin.marginal_trefp_s, 1.0e6);
            table.row(vec![
                format!("{temp:.0} °C"),
                match criterion {
                    SafetyCriterion::NoErrors => "no errors".into(),
                    SafetyCriterion::NoUncorrectable => "CEs tolerated".into(),
                },
                format!("{:.3} s", margin.marginal_trefp_s),
                format!("{:.1} %", savings.dram_savings * 100.0),
                format!("{:.1} %", savings.system_savings * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(nominal TREFP is 0.064 s; the platform maximum is 2.283 s — paper §IV)");
    println!("paper result at the discovered margins: 17.7 % DRAM / 8.6 % system savings");
    Ok(())
}
