//! Quickstart: synthesize a worst-case 64-bit DRAM data-pattern virus.
//!
//! Boots the simulated X-Gene 2 server, relaxes the second memory domain
//! (TREFP 2.283 s, VDD 1.428 V), heats DIMM2 to 60 °C, and runs a small GA
//! search for the 64-bit data pattern that maximizes correctable errors —
//! the paper's Fig. 8 campaign in miniature.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dstress::report::pattern_prefix;
use dstress::{DStress, EnvKind, ExperimentScale, Metric, WORST_WORD};
use dstress_vpl::BoundValue;

fn main() -> Result<(), dstress::DStressError> {
    // `quick()` keeps this example snappy; use `paper()` for a full
    // campaign (see crates/bench/src/bin for the figure regenerations).
    let scale = ExperimentScale::quick();
    let mut dstress = DStress::new(scale, 42);

    println!("searching for the worst-case 64-bit data pattern at 60 °C ...");
    let campaign = dstress.search_word64(60.0, Metric::CeAverage, false)?;

    let word = campaign.result.best.to_words()[0];
    println!();
    println!("best pattern : {:#018x}", word);
    println!("bit string   : {} ...", pattern_prefix(&[word], 32));
    println!(
        "fitness      : {:.1} CEs per run",
        campaign.result.best_fitness
    );
    println!(
        "search       : {} generations, leaderboard SMF {:.2}, converged: {}",
        campaign.result.generations, campaign.result.similarity, campaign.result.converged
    );

    // Compare against the classic MSCAN all-zeros micro-benchmark.
    let baseline = dstress.measure(
        &EnvKind::Word64,
        [("PATTERN".to_string(), BoundValue::Scalar(0u64))].into(),
        60.0,
        Metric::CeAverage,
    )?;
    println!();
    println!("all-0s MSCAN : {:.1} CEs per run", baseline.fitness);
    println!(
        "the synthesized virus manifests {:.0} % more errors",
        (campaign.result.best_fitness / baseline.fitness.max(1.0) - 1.0) * 100.0
    );

    // The canonical TTAA worst word, for reference (the paper's repeating
    // `1100` discovery — a converged search lands on or near it).
    println!();
    println!(
        "canonical worst word {:#018x} renders as {} ...",
        WORST_WORD,
        pattern_prefix(&[WORST_WORD], 16)
    );
    Ok(())
}
