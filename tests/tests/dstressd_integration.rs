//! End-to-end `dstressd` integration over real loopback TCP.
//!
//! The determinism contract under test: a campaign submitted to the
//! daemon — concurrently with other tenants, streamed to a live watcher,
//! and even killed and restarted midway — produces the same journal
//! snapshot and the same leaderboard as a solo `search_word64_journaled`
//! run with the same seed. CI runs this suite as its dedicated daemon
//! integration step.

use dstress::service::{
    CampaignSpec, DaemonConfig, Dstressd, Event, LeaderboardEntry, Request, Response, SeqEvent,
};
use dstress::{CampaignJournal, DStress, DiskStorage, ExperimentScale, Metric};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dstressd-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_daemon(dir: &Path) -> Dstressd {
    Dstressd::start(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        dir: dir.to_path_buf(),
        workers: 2,
        event_capacity: 256,
        ..DaemonConfig::default()
    })
    .expect("daemon boots")
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send(stream: &mut TcpStream, request: &Request) {
    let mut line = serde_json::to_string(request).expect("encode");
    line.push('\n');
    stream.write_all(line.as_bytes()).expect("send");
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply line");
    line
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    serde_json::from_str(&read_line(reader)).expect("typed response")
}

fn quick_spec(seed: u64) -> CampaignSpec {
    CampaignSpec {
        scale: "quick".into(),
        seed,
        ..CampaignSpec::default()
    }
}

/// The reference: a solo journaled quick-scale run with this framework
/// seed. Returns the snapshot bytes and the final leaderboard.
fn solo_run(dir: &Path, seed: u64) -> (Vec<u8>, Vec<LeaderboardEntry>) {
    let path = dir.join(format!("solo-{seed}.db.json"));
    let mut journal = CampaignJournal::open(DiskStorage::new(), &path).expect("journal");
    let mut dstress = DStress::new(ExperimentScale::quick(), seed);
    let campaign = dstress
        .search_word64_journaled(&mut journal, 60.0, Metric::CeAverage, false)
        .expect("solo search");
    let leaderboard = campaign
        .result
        .leaderboard
        .iter()
        .map(|(genome, fitness)| LeaderboardEntry {
            genes: genome.to_words(),
            fitness: *fitness,
        })
        .collect();
    (std::fs::read(&path).expect("snapshot"), leaderboard)
}

/// One client session: submit a campaign, watch it to completion, return
/// its id and the leaderboard the `Completed` event carried.
fn submit_and_watch(addr: SocketAddr, seed: u64) -> (u64, Vec<LeaderboardEntry>) {
    let (mut stream, mut reader) = connect(addr);
    send(
        &mut stream,
        &Request::Submit {
            spec: quick_spec(seed),
        },
    );
    let campaign = match read_response(&mut reader) {
        Response::Submitted { campaign, .. } => campaign,
        other => panic!("expected Submitted, got {other:?}"),
    };
    send(
        &mut stream,
        &Request::Watch {
            campaign,
            from_seq: 0,
        },
    );
    match read_response(&mut reader) {
        Response::Watching { campaign: watched } => assert_eq!(watched, campaign),
        other => panic!("expected Watching, got {other:?}"),
    }
    let mut generations_seen = 0u32;
    let mut last_seq = 0u64;
    let mut completed = None;
    loop {
        let line = read_line(&mut reader);
        let Ok(stamped) = serde_json::from_str::<SeqEvent>(&line) else {
            // The end-of-stream marker (a Response) ends the watch.
            break;
        };
        if stamped.seq > 0 {
            assert!(
                stamped.seq > last_seq,
                "event seqs must be strictly increasing ({} after {last_seq})",
                stamped.seq
            );
            last_seq = stamped.seq;
        }
        match stamped.event {
            Event::Generation { generation, .. } => {
                generations_seen = generations_seen.max(generation)
            }
            Event::Completed {
                campaign: done,
                leaderboard,
                ..
            } => {
                assert_eq!(done, campaign);
                completed = Some(leaderboard);
            }
            Event::Cancelled { .. } => panic!("campaign was cancelled unexpectedly"),
            Event::Failed { error, .. } => panic!("campaign failed unexpectedly: {error}"),
            Event::Lagged { .. } => {}
        }
    }
    let leaderboard = completed.expect("watched to completion");
    assert!(generations_seen > 0, "no generation events streamed");
    (campaign, leaderboard)
}

#[test]
fn two_concurrent_clients_match_their_solo_runs_byte_for_byte() {
    let dir = temp_dir("pair");
    let daemon_dir = dir.join("daemon");
    let daemon = start_daemon(&daemon_dir);
    let addr = daemon.addr();
    let a = std::thread::spawn(move || submit_and_watch(addr, 41));
    let b = std::thread::spawn(move || submit_and_watch(addr, 42));
    let (id_a, board_a) = a.join().expect("client a");
    let (id_b, board_b) = b.join().expect("client b");
    assert_ne!(id_a, id_b, "campaigns get distinct ids");
    // A third client reads both final states over the wire.
    let (mut stream, mut reader) = connect(addr);
    for id in [id_a, id_b] {
        send(&mut stream, &Request::Status { campaign: id });
        match read_response(&mut reader) {
            Response::Status { report } => {
                assert_eq!(report.state, "done");
                assert!(report.generation > 0);
            }
            other => panic!("expected Status, got {other:?}"),
        }
    }
    drop(stream);
    daemon.shutdown().expect("clean shutdown");
    // Journals and leaderboards are exactly what solo runs produce.
    let (solo_bytes_a, solo_board_a) = solo_run(&dir, 41);
    let (solo_bytes_b, solo_board_b) = solo_run(&dir, 42);
    let daemon_a = std::fs::read(daemon_dir.join(format!("c{id_a}.db.json"))).unwrap();
    let daemon_b = std::fs::read(daemon_dir.join(format!("c{id_b}.db.json"))).unwrap();
    assert_eq!(daemon_a, solo_bytes_a, "campaign A snapshot diverged");
    assert_eq!(daemon_b, solo_bytes_b, "campaign B snapshot diverged");
    assert_eq!(board_a, solo_board_a, "campaign A leaderboard diverged");
    assert_eq!(board_b, solo_board_b, "campaign B leaderboard diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_killed_daemon_restarts_and_resumes_bit_identically() {
    let dir = temp_dir("restart");
    let daemon_dir = dir.join("daemon");
    // Phase 1: submit, let the campaign make some progress, then kill
    // the daemon mid-run.
    let daemon = start_daemon(&daemon_dir);
    let (mut stream, mut reader) = connect(daemon.addr());
    send(
        &mut stream,
        &Request::Submit {
            spec: quick_spec(7),
        },
    );
    let campaign = match read_response(&mut reader) {
        Response::Submitted { campaign, .. } => campaign,
        other => panic!("expected Submitted, got {other:?}"),
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "campaign never stepped");
        send(&mut stream, &Request::Status { campaign });
        match read_response(&mut reader) {
            Response::Status { report } => {
                if report.evaluations > 0 && report.state == "running" {
                    break;
                }
                if report.state == "done" {
                    // Too fast to interrupt; the restart below still has
                    // to keep the finished campaign intact.
                    break;
                }
            }
            other => panic!("expected Status, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(stream);
    daemon.shutdown().expect("mid-run shutdown");
    // Phase 2: a fresh daemon over the same directory resumes the
    // campaign from its journal without being asked.
    let daemon = start_daemon(&daemon_dir);
    let (mut stream, mut reader) = connect(daemon.addr());
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "campaign never finished");
        send(&mut stream, &Request::Status { campaign });
        match read_response(&mut reader) {
            Response::Status { report } => {
                assert_ne!(report.state, "cancelled");
                if report.state == "done" {
                    assert!(report.generation > 0);
                    break;
                }
            }
            other => panic!("expected Status, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(stream);
    daemon.shutdown().expect("clean shutdown");
    let (solo_bytes, _) = solo_run(&dir, 7);
    let resumed = std::fs::read(daemon_dir.join(format!("c{campaign}.db.json"))).unwrap();
    assert_eq!(resumed, solo_bytes, "restart diverged from the solo run");
    let _ = std::fs::remove_dir_all(&dir);
}
