//! Protocol robustness for the `dstressd` campaign daemon.
//!
//! These tests speak raw bytes over real loopback TCP: torn frames,
//! oversized lines, unknown commands, malformed JSON, and many clients
//! interleaving — none of it may kill the daemon, and every malformed
//! frame earns a typed `Error` reply on a connection that stays usable.

use dstress::service::{DaemonConfig, Dstressd, Request, Response, MAX_FRAME_BYTES};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dstressd-proto-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_daemon(tag: &str) -> Dstressd {
    Dstressd::start(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        dir: temp_dir(tag),
        workers: 1,
        event_capacity: 8,
        ..DaemonConfig::default()
    })
    .expect("daemon boots")
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply line");
    serde_json::from_str(&line).expect("typed response")
}

fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &Request,
) -> Response {
    let mut line = serde_json::to_string(request).expect("encode");
    line.push('\n');
    stream.write_all(line.as_bytes()).expect("send");
    read_response(reader)
}

#[test]
fn malformed_frames_earn_typed_errors_and_the_connection_survives() {
    let daemon = start_daemon("malformed");
    let (mut stream, mut reader) = connect(daemon.addr());
    for bad in [
        "not json at all",
        "{\"truncated\":",
        "{\"Unknown\":{}}",
        "\"Frobnicate\"",
        "[1,2,3]",
        "{\"Submit\":{\"spec\":{\"scale\":17}}}",
    ] {
        stream.write_all(bad.as_bytes()).expect("send");
        stream.write_all(b"\n").expect("send");
        match read_response(&mut reader) {
            Response::Error { message } => assert!(!message.is_empty()),
            other => panic!("expected a typed error for {bad:?}, got {other:?}"),
        }
    }
    // After every malformed frame the connection still answers pings.
    assert_eq!(
        roundtrip(&mut stream, &mut reader, &Request::Ping),
        Response::Pong
    );
    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn torn_frames_reassemble_and_mid_frame_disconnects_are_harmless() {
    let daemon = start_daemon("torn");
    // A request split across many writes with pauses is one frame.
    let (mut stream, mut reader) = connect(daemon.addr());
    let line = format!("{}\n", serde_json::to_string(&Request::Ping).unwrap());
    for chunk in line.as_bytes().chunks(3) {
        stream.write_all(chunk).expect("send chunk");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(read_response(&mut reader), Response::Pong);
    // A client that dies mid-frame (no trailing newline) does not take
    // the daemon with it.
    let (mut dying, _) = connect(daemon.addr());
    dying
        .write_all(b"{\"Status\":{\"campai")
        .expect("send torn");
    drop(dying);
    let (mut stream, mut reader) = connect(daemon.addr());
    assert_eq!(
        roundtrip(&mut stream, &mut reader, &Request::List),
        Response::List {
            campaigns: Vec::new()
        }
    );
    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn oversized_lines_are_refused_without_losing_the_connection() {
    let daemon = start_daemon("oversized");
    let (mut stream, mut reader) = connect(daemon.addr());
    let huge = vec![b'x'; MAX_FRAME_BYTES + 100];
    stream.write_all(&huge).expect("send oversized");
    stream.write_all(b"\n").expect("send newline");
    match read_response(&mut reader) {
        Response::Error { message } => assert!(message.contains("too long"), "{message}"),
        other => panic!("expected a frame-too-long error, got {other:?}"),
    }
    // The overflow was drained to the newline: the next frame parses.
    assert_eq!(
        roundtrip(&mut stream, &mut reader, &Request::Ping),
        Response::Pong
    );
    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn interleaved_clients_each_get_their_own_replies() {
    let daemon = start_daemon("interleaved");
    let addr = daemon.addr();
    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                for round in 0..20 {
                    if (i + round) % 3 == 0 {
                        // Sprinkle garbage between valid requests.
                        stream.write_all(b"###garbage###\n").expect("send");
                        match read_response(&mut reader) {
                            Response::Error { .. } => {}
                            other => panic!("expected an error, got {other:?}"),
                        }
                    }
                    // Unknown campaign ids are typed errors, not panics.
                    let reply = roundtrip(
                        &mut stream,
                        &mut reader,
                        &Request::Status {
                            campaign: 1_000 + i,
                        },
                    );
                    match reply {
                        Response::Error { message } => {
                            assert!(message.contains("no campaign"), "{message}")
                        }
                        other => panic!("expected an error, got {other:?}"),
                    }
                    assert_eq!(
                        roundtrip(&mut stream, &mut reader, &Request::Ping),
                        Response::Pong
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn pausing_cancelling_and_watching_unknown_campaigns_is_typed() {
    let daemon = start_daemon("unknown-ids");
    let (mut stream, mut reader) = connect(daemon.addr());
    for request in [
        Request::Pause { campaign: 9 },
        Request::Resume { campaign: 9 },
        Request::Cancel { campaign: 9 },
        Request::Watch {
            campaign: 9,
            from_seq: 0,
        },
    ] {
        match roundtrip(&mut stream, &mut reader, &request) {
            Response::Error { message } => assert!(message.contains("no campaign"), "{message}"),
            other => panic!("expected an error for {request:?}, got {other:?}"),
        }
    }
    daemon.shutdown().expect("clean shutdown");
}

/// Slow-loris containment: a client that trickles half a frame and then
/// stalls, and a client that connects and never speaks, are both reaped
/// on the configured deadlines — and neither takes the daemon (or any
/// well-behaved client) with it.
#[test]
fn stalled_and_idle_connections_are_reaped_without_hurting_the_daemon() {
    let daemon = Dstressd::start(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        dir: temp_dir("slow-loris"),
        workers: 1,
        event_capacity: 8,
        frame_deadline: Duration::from_millis(300),
        idle_timeout: Duration::from_millis(700),
    })
    .expect("daemon boots");
    let reaped = |mut reader: BufReader<TcpStream>| {
        // A reaped connection reads EOF; a live one would time out.
        let mut line = String::new();
        matches!(reader.read_line(&mut line), Ok(0))
    };
    // Half a frame, then silence: reaped on the frame deadline.
    let (mut stalled, stalled_reader) = connect(daemon.addr());
    stalled.write_all(b"{\"Status\":{\"campai").expect("send");
    // No bytes at all: reaped on the (longer) idle timeout.
    let (_idle, idle_reader) = connect(daemon.addr());
    std::thread::sleep(Duration::from_millis(2_000));
    assert!(reaped(stalled_reader), "mid-frame staller was not reaped");
    assert!(reaped(idle_reader), "idle connection was not reaped");
    // The daemon and fresh connections are unharmed.
    let (mut stream, mut reader) = connect(daemon.addr());
    assert_eq!(
        roundtrip(&mut stream, &mut reader, &Request::Ping),
        Response::Pong
    );
    daemon.shutdown().expect("clean shutdown");
}

/// One shared daemon for the property tests: booting a fresh one per
/// case would dominate the runtime. The daemon is intentionally leaked —
/// its threads die with the test process.
fn shared_daemon() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let daemon = start_daemon("property");
        let addr = daemon.addr();
        std::mem::forget(daemon);
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary newline-free garbage never panics the daemon and always
    /// earns exactly one reply, after which the connection still works.
    #[test]
    // Empty frames (and lone carriage returns, which strip to empty) are
    // skipped without a reply by design, so the property sends at least
    // one printable byte (0x20..0x7f excludes both newline flavours).
    fn arbitrary_frames_never_kill_the_daemon(
        frame in proptest::collection::vec(0x20u8..0x7f, 1..200),
    ) {
        let (mut stream, mut reader) = connect(shared_daemon());
        stream.write_all(&frame).expect("send");
        stream.write_all(b"\n").expect("send");
        // Whatever came back was a well-formed Response frame...
        let _ = read_response(&mut reader);
        // ...and the connection is still in protocol sync.
        prop_assert_eq!(
            roundtrip(&mut stream, &mut reader, &Request::Ping),
            Response::Pong
        );
    }

    /// Requests round-trip through their wire encoding.
    #[test]
    fn requests_roundtrip_the_wire_encoding(campaign in any::<u64>()) {
        for request in [
            Request::Status { campaign },
            Request::Pause { campaign },
            Request::Watch {
                campaign,
                from_seq: campaign / 2,
            },
            Request::List,
            Request::Ping,
        ] {
            let encoded = serde_json::to_string(&request).expect("encode");
            let decoded: Request = serde_json::from_str(&encoded).expect("decode");
            prop_assert_eq!(decoded, request);
        }
    }
}
