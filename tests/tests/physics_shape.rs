//! Integration: the paper's qualitative physics claims hold end-to-end on
//! the simulated platform (the shape targets listed in DESIGN.md §5).

use dstress::{Baseline, DStress, EnvKind, ExperimentScale, Metric, BEST_WORD, WORST_WORD};
use dstress_vpl::BoundValue;

fn measure_word(dstress: &DStress, word: u64, temp: f64) -> dstress::EvalOutcome {
    dstress
        .measure(
            &EnvKind::Word64,
            [("PATTERN".to_string(), BoundValue::Scalar(word))].into(),
            temp,
            Metric::CeAverage,
        )
        .expect("measurement")
}

#[test]
fn ce_counts_grow_monotonically_with_temperature_below_ue_onset() {
    let dstress = DStress::new(ExperimentScale::quick(), 1);
    let mut previous = 0.0;
    for temp in [48.0, 52.0, 56.0, 60.0] {
        let outcome = measure_word(&dstress, WORST_WORD, temp);
        assert!(
            outcome.fitness >= previous,
            "CEs dropped from {previous} to {} at {temp} C",
            outcome.fitness
        );
        assert_eq!(
            outcome.ue_runs, 0,
            "no UEs below 62 C (got some at {temp} C)"
        );
        previous = outcome.fitness;
    }
    assert!(previous > 0.0);
}

#[test]
fn ue_onset_is_at_62_degrees() {
    // Paper §V-A.1: CEs only below 62 C; UEs appear at 62 C and stop runs.
    let dstress = DStress::new(ExperimentScale::quick(), 1);
    let at_60 = measure_word(&dstress, WORST_WORD, 60.0);
    assert_eq!(at_60.total_ue, 0, "no UEs at 60 C");
    let at_62 = measure_word(&dstress, WORST_WORD, 62.0);
    assert!(at_62.total_ue > 0, "UEs must appear at 62 C");
    assert!(
        at_62.ue_runs > 0,
        "UEs stop virus runs (paper: OS kills the virus)"
    );
}

#[test]
fn worst_word_beats_every_classic_micro_benchmark() {
    // Paper Fig. 8e: the 1100-family pattern induces at least 45 % more
    // CEs than the best traditional micro-benchmark. At the quick scale we
    // assert a clear (>25 %) margin; the paper-scale figure run records
    // the full-size margin in EXPERIMENTS.md.
    let dstress = DStress::new(ExperimentScale::quick(), 2);
    let worst = measure_word(&dstress, WORST_WORD, 60.0).fitness;
    for baseline in Baseline::all(7) {
        let outcome = dstress
            .measure(
                &EnvKind::CycleFill {
                    cycle: baseline.cycle(),
                },
                Default::default(),
                60.0,
                Metric::CeAverage,
            )
            .expect("baseline measurement");
        assert!(
            worst > 1.25 * outcome.fitness,
            "{}: {} vs worst {}",
            baseline.name(),
            outcome.fitness,
            worst
        );
    }
}

#[test]
fn best_case_pattern_is_several_times_below_worst_case() {
    // Paper §V-A.1: the worst-case pattern induces ~8x the CEs of the
    // best-case pattern.
    let dstress = DStress::new(ExperimentScale::quick(), 3);
    let worst = measure_word(&dstress, WORST_WORD, 60.0).fitness;
    let best = measure_word(&dstress, BEST_WORD, 60.0).fitness;
    let ratio = worst / best.max(1.0);
    assert!((2.0..40.0).contains(&ratio), "worst/best ratio {ratio}");
}

#[test]
fn worst_pattern_is_temperature_stable() {
    // Paper observation (Fig. 8b): the worst-case data pattern does not
    // change with temperature — the same word dominates at both 55 and 60.
    let dstress = DStress::new(ExperimentScale::quick(), 4);
    for temp in [55.0, 60.0] {
        let worst = measure_word(&dstress, WORST_WORD, temp).fitness;
        let zeros = measure_word(&dstress, 0, temp).fitness;
        assert!(worst > zeros, "worst must dominate at {temp} C");
    }
}

#[test]
fn access_virus_beats_data_virus_on_victim_rows() {
    // Paper Fig. 11: hammering the neighbour rows raises victim-row CEs
    // well beyond any data-only pattern.
    let mut dstress = DStress::new(ExperimentScale::quick(), 5);
    let victims = dstress.profile_victims(60.0, WORST_WORD).expect("victims");
    let metric = Metric::CeInRows(victims.clone());
    let data_only = dstress
        .measure(
            &EnvKind::Word64,
            [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into(),
            60.0,
            metric.clone(),
        )
        .expect("data measurement");
    let hammer_all = dstress
        .measure(
            &EnvKind::RowAccess {
                victims,
                fill: WORST_WORD,
            },
            [("SEL".to_string(), BoundValue::Array(vec![1u64; 64]))].into(),
            60.0,
            metric,
        )
        .expect("access measurement");
    assert!(
        hammer_all.fitness > data_only.fitness,
        "hammering ({}) must beat data-only ({})",
        hammer_all.fitness,
        data_only.fitness
    );
    assert_eq!(hammer_all.ue_runs, 0, "no UEs at 60 C even under hammering");
}

#[test]
fn no_errors_at_nominal_operating_parameters() {
    // The guardband sanity check: a nominal server never errs, whatever
    // the data pattern (paper §II: vendors' pessimistic margins).
    let scale = ExperimentScale::quick();
    let dstress = DStress::new(scale, 6);
    let mut evaluator = dstress
        .evaluator(&EnvKind::Word64, 55.0, Metric::CeAverage)
        .expect("evaluator");
    // Undo the relaxation: nominal TREFP and VDD everywhere.
    let server = evaluator.server_mut();
    for mcu in 0..4 {
        server.set_trefp(mcu, dstress_dram::env::NOMINAL_TREFP_S);
    }
    server.set_vdd(0, dstress_dram::env::NOMINAL_VDD_V);
    server.set_vdd(1, dstress_dram::env::NOMINAL_VDD_V);
    let outcome = evaluator
        .evaluate_bindings([("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into())
        .expect("evaluation");
    assert_eq!(
        outcome.total_ce + outcome.total_ue,
        0,
        "nominal parameters must be safe"
    );
}

#[test]
fn dimm_to_dimm_variation_is_visible() {
    // Paper Fig. 1b / §II: the same pattern manifests very different error
    // counts across DIMM slots (manufacturing variation).
    let scale = ExperimentScale::quick();
    let dstress = DStress::new(scale, 7);
    let mut evaluator = dstress
        .evaluator(&EnvKind::Word64, 60.0, Metric::CeAverage)
        .expect("evaluator");
    // Heat and relax DIMM3 like DIMM2 so only the module differs.
    evaluator
        .server_mut()
        .set_dimm_temperature(3, 60.0)
        .unwrap();
    evaluator
        .evaluate_bindings([("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into())
        .expect("evaluation");
    let counters = evaluator.server().counters();
    let dimm2: u64 = counters
        .iter()
        .filter(|d| d.mcu == 2)
        .map(|d| d.counts.ce)
        .sum();
    let dimm3: u64 = counters
        .iter()
        .filter(|d| d.mcu == 3)
        .map(|d| d.counts.ce)
        .sum();
    assert!(
        dimm2 > 5 * dimm3.max(1),
        "DIMM2 ({dimm2}) must err far more than the sparse DIMM3 ({dimm3})"
    );
}
