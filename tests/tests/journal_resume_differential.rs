//! Differential crash/resume tests for the campaign journal: a search
//! killed at **any** generation boundary and resumed from the journal must
//! produce a bit-identical `SearchResult` (best chromosome, fitness,
//! leaderboard, history, convergence flag) and the same record stream as an
//! uninterrupted run. Only wall-clock timing (`generation_eval_seconds`)
//! may differ.

use dstress::{CampaignJournal, DStress, ExperimentScale, MemStorage, Metric};
use dstress_ga::{
    run_journaled, BitGenome, Fitness, GaConfig, Genome, ParallelFitness, SearchResult,
    SupervisionPolicy, VirusDatabase, VirusRecord,
};
use rand::rngs::StdRng;

/// A pure, replicable popcount fitness.
struct Popcount;

impl Fitness<BitGenome> for Popcount {
    fn evaluate(&mut self, genome: &BitGenome) -> f64 {
        genome.count_ones() as f64
    }
}

impl ParallelFitness<BitGenome> for Popcount {
    fn replicate(&self) -> Self {
        Popcount
    }
}

fn ga_config() -> GaConfig {
    let mut config = GaConfig::paper_defaults();
    config.population_size = 12;
    config.max_generations = 10;
    config.stagnation_window = 4;
    config
}

fn popcount_record(genome: &BitGenome, value: f64) -> VirusRecord {
    VirusRecord {
        campaign: "pop".into(),
        genes: genome.to_words(),
        gene_len: genome.len(),
        fitness: value,
        ce: value.max(0.0) as u64,
        ue: 0,
        sequence: 0,
    }
}

fn drive_popcount(
    journal: &mut CampaignJournal<MemStorage>,
    max_steps: Option<u32>,
    workers: usize,
) -> Option<SearchResult<BitGenome>> {
    run_journaled(
        journal,
        "pop",
        ga_config(),
        7,
        |rng: &mut StdRng| BitGenome::random(rng, 24),
        &mut Popcount,
        workers,
        popcount_record,
        max_steps,
        SupervisionPolicy::default(),
        None,
    )
    .expect("journal I/O")
}

/// Everything except wall-clock timing must match.
fn assert_results_identical(a: &SearchResult<BitGenome>, b: &SearchResult<BitGenome>, ctx: &str) {
    assert_eq!(a.best, b.best, "{ctx}");
    assert_eq!(a.best_fitness, b.best_fitness, "{ctx}");
    assert_eq!(a.leaderboard, b.leaderboard, "{ctx}");
    assert_eq!(a.generations, b.generations, "{ctx}");
    assert_eq!(a.converged, b.converged, "{ctx}");
    assert_eq!(a.similarity, b.similarity, "{ctx}");
    assert_eq!(a.history, b.history, "{ctx}");
    assert_eq!(a.eval_stats.evaluations, b.eval_stats.evaluations, "{ctx}");
    assert_eq!(a.eval_stats.cache_hits, b.eval_stats.cache_hits, "{ctx}");
}

#[test]
fn ga_search_killed_at_every_generation_boundary_resumes_bit_identically() {
    let mut clean = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
    let reference = drive_popcount(&mut clean, None, 2).expect("clean run finishes");
    for boundary in 0u32.. {
        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        let partial = drive_popcount(&mut journal, Some(boundary), 2);
        let interrupted = partial.is_none();
        // The kill: every unsynced byte is lost, then the process restarts
        // and recovers from the durable state alone.
        let mut storage = journal.into_storage();
        storage.crash();
        let mut journal = CampaignJournal::open(storage, "db.json").unwrap();
        // Resuming with a *different* worker count must not change anything
        // — not even the order records enter the journal.
        let resumed = drive_popcount(&mut journal, None, 3).expect("resumed run finishes");
        assert_results_identical(&resumed, &reference, &format!("boundary={boundary}"));
        assert_eq!(
            journal.db().records(),
            clean.db().records(),
            "boundary={boundary}: record streams must match exactly"
        );
        assert!(journal.checkpoint().is_none(), "boundary={boundary}");
        if !interrupted {
            break; // the budget outlived the search: every boundary covered
        }
    }
}

#[test]
fn word64_killed_at_every_generation_boundary_resumes_bit_identically() {
    // The acceptance criterion end-to-end: the real word64 campaign over
    // the simulated server, interrupted at each generation boundary via the
    // step budget, crashed, and resumed through `--resume`'s code path.
    let search = |journal: &mut CampaignJournal<MemStorage>, max_steps| {
        let mut dstress = DStress::new(ExperimentScale::quick(), 42);
        dstress
            .search_word64_journaled_budget(journal, 60.0, Metric::CeAverage, false, max_steps)
            .expect("journaled search")
    };
    let mut clean = CampaignJournal::open(MemStorage::new(), "viruses.json").unwrap();
    let reference = search(&mut clean, None).expect("clean run finishes");
    for boundary in 0u32.. {
        let mut journal = CampaignJournal::open(MemStorage::new(), "viruses.json").unwrap();
        let interrupted = search(&mut journal, Some(boundary)).is_none();
        let mut storage = journal.into_storage();
        storage.crash();
        let mut journal = CampaignJournal::open(storage, "viruses.json").unwrap();
        if interrupted {
            assert!(
                journal.checkpoint().is_some(),
                "boundary={boundary}: the checkpoint must survive the crash"
            );
        }
        let resumed = search(&mut journal, None).expect("resumed run finishes");
        assert_eq!(resumed.name, reference.name);
        assert_results_identical(
            &resumed.result,
            &reference.result,
            &format!("boundary={boundary}"),
        );
        assert_eq!(resumed.failed_evaluations, 0);
        assert_eq!(
            journal.db().records(),
            clean.db().records(),
            "boundary={boundary}"
        );
        if !interrupted {
            break;
        }
    }
}

#[test]
fn fresh_journaled_search_matches_the_plain_search() {
    // With no checkpoint to resume, the journaled campaign must be
    // bit-identical to the non-journaled one: same seed derivation, same
    // RNG stream, same engine loop.
    let mut plain = DStress::new(ExperimentScale::quick(), 42);
    let reference = plain
        .search_word64(60.0, Metric::CeAverage, false)
        .expect("plain search");
    let mut journaled = DStress::new(ExperimentScale::quick(), 42);
    let mut journal = CampaignJournal::open(MemStorage::new(), "viruses.json").unwrap();
    let campaign = journaled
        .search_word64_journaled(&mut journal, 60.0, Metric::CeAverage, false)
        .expect("journaled search");
    assert_eq!(campaign.name, reference.name);
    assert_results_identical(&campaign.result, &reference.result, "fresh journaled");
    // The journal recorded every distinct evaluated chromosome — at least
    // the whole leaderboard — under the campaign's name.
    let recorded = journal.db().campaign(&campaign.name).count() as u64;
    assert_eq!(recorded, campaign.result.eval_stats.evaluations);
    let best = journal.db().best(&campaign.name).expect("recorded best");
    assert_eq!(best.fitness, campaign.result.best_fitness);
    assert_eq!(best.genes, campaign.result.best.to_words());
}

#[test]
fn pre_journal_databases_load_through_both_paths() {
    // A `viruses.json` written before the journal existed is a bare
    // database: both `VirusDatabase::load` and the journal must accept it.
    let mut legacy = VirusDatabase::new();
    legacy.record(VirusRecord {
        campaign: "word64-ce-max-60C".into(),
        genes: vec![0x3333_3333_3333_3333],
        gene_len: 64,
        fitness: 812.0,
        ce: 8120,
        ue: 0,
        sequence: 0,
    });
    let json = legacy.to_json().unwrap();

    let dir = std::env::temp_dir().join("dstress-journal-compat-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("viruses.json");
    std::fs::write(&path, &json).unwrap();
    assert_eq!(VirusDatabase::load(&path).unwrap(), legacy);
    let journal = CampaignJournal::open(dstress::DiskStorage::new(), &path).unwrap();
    assert_eq!(*journal.db(), legacy);
    assert!(journal.checkpoint().is_none());
    std::fs::remove_file(&path).ok();

    // And once the journal compacts, `VirusDatabase::load` still reads the
    // new snapshot format back (the CLI's non-journaled commands keep
    // working against a journaled file).
    let mut storage = MemStorage::new();
    storage.install("viruses.json", json.into_bytes());
    let mut journal = CampaignJournal::open(storage, "viruses.json").unwrap();
    journal.compact().unwrap();
    let snapshot = journal
        .into_storage()
        .contents(std::path::Path::new("viruses.json"))
        .unwrap()
        .to_vec();
    let reread = VirusDatabase::from_json(std::str::from_utf8(&snapshot).unwrap());
    assert!(
        reread.is_err(),
        "the snapshot wraps the db; the wrapper must be used"
    );
    let via_load_path = dir.join("snapshot.json");
    std::fs::write(&via_load_path, &snapshot).unwrap();
    assert_eq!(VirusDatabase::load(&via_load_path).unwrap(), legacy);
    std::fs::remove_file(&via_load_path).ok();
}
