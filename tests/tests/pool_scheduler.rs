//! Differential tests for the persistent work-stealing evaluation pool and
//! the multi-campaign fair-share scheduler: for *any* worker count, steal
//! interleaving and hazard schedule, the pool's results are bit-identical
//! to the serial oracle; a journaled campaign kill-and-resumes identically
//! under the pool; and a campaign multiplexed with others over one shared
//! pool produces the same journal as running it alone.

use dstress::{DStress, ExperimentScale, Metric};
use dstress_ga::{
    run_journaled, BitGenome, CampaignJournal, CampaignScheduler, EvalPool, Fitness, GaConfig,
    GaEngine, Genome, Hazard, HazardPlan, MemStorage, ParallelFitness, SearchResult, SearchSession,
    SupervisionPolicy, VirusRecord,
};
use proptest::prelude::*;
use rand::rngs::StdRng;

/// A pure, replicable popcount fitness.
#[derive(Clone)]
struct Popcount;

impl Fitness<BitGenome> for Popcount {
    fn evaluate(&mut self, genome: &BitGenome) -> f64 {
        genome.count_ones() as f64
    }
}

impl ParallelFitness<BitGenome> for Popcount {
    fn replicate(&self) -> Self {
        Popcount
    }
}

fn ga_config() -> GaConfig {
    let mut config = GaConfig::paper_defaults();
    config.population_size = 10;
    config.max_generations = 6;
    config.stagnation_window = 3;
    config
}

/// The worker counts the pool sweep runs at. CI pins 1 and 4 via
/// `DSTRESS_WORKERS`; the sweep widens without a recompile.
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Some(extra) = std::env::var("DSTRESS_WORKERS")
        .ok()
        .and_then(|w| w.parse::<usize>().ok())
    {
        counts.push(extra.max(1));
    }
    counts
}

/// The serial oracle: the single-threaded engine path, no pool, no cache
/// replicas — just `evaluate_generation` in population order.
fn serial_oracle(seed: u64) -> SearchResult<BitGenome> {
    let mut engine = GaEngine::new(ga_config(), seed);
    engine.run(|rng| BitGenome::random(rng, 24), &mut Popcount)
}

/// A full campaign on the persistent pool at the given worker count.
fn pooled_run(seed: u64, workers: usize, plan: Option<HazardPlan>) -> SearchResult<BitGenome> {
    let mut session = SearchSession::start(ga_config(), seed, |rng: &mut StdRng| {
        BitGenome::random(rng, 24)
    });
    session.set_hazards(plan);
    let pool = EvalPool::new(&Popcount, workers);
    while !session.done() {
        session.step_pooled(&pool);
    }
    pool.shutdown();
    session.finish()
}

/// Leaderboard comparison that survives the `NaN` scores of quarantined
/// candidates.
fn board_bits(result: &SearchResult<BitGenome>) -> Vec<(Vec<u64>, u64)> {
    result
        .leaderboard
        .iter()
        .map(|(g, f)| (g.to_words(), f.to_bits()))
        .collect()
}

/// Trajectory equality: the search path (winner, leaderboard, history,
/// incidents) — what the oracle comparison pins. The serial engine path
/// evaluates without a dedup cache, so its evaluation *counters* lawfully
/// differ from the pool's; [`assert_search_identical`] adds them back for
/// pool-vs-pool comparisons.
fn assert_trajectory_identical(
    run: &SearchResult<BitGenome>,
    reference: &SearchResult<BitGenome>,
    tag: &str,
) {
    assert_eq!(run.best, reference.best, "{tag}: best");
    assert_eq!(
        run.best_fitness.to_bits(),
        reference.best_fitness.to_bits(),
        "{tag}: best fitness"
    );
    assert_eq!(board_bits(run), board_bits(reference), "{tag}: leaderboard");
    assert_eq!(run.history, reference.history, "{tag}: history");
    assert_eq!(run.generations, reference.generations, "{tag}: generations");
    assert_eq!(run.incidents, reference.incidents, "{tag}: incidents");
}

fn assert_search_identical(
    run: &SearchResult<BitGenome>,
    reference: &SearchResult<BitGenome>,
    tag: &str,
) {
    assert_trajectory_identical(run, reference, tag);
    assert_eq!(
        run.eval_stats.evaluations, reference.eval_stats.evaluations,
        "{tag}: evaluations"
    );
    assert_eq!(
        run.eval_stats.cache_hits, reference.eval_stats.cache_hits,
        "{tag}: cache hits"
    );
}

#[test]
fn pool_matches_the_serial_oracle_for_any_worker_count() {
    let oracle = serial_oracle(41);
    let reference = pooled_run(41, 1, None);
    assert_trajectory_identical(&reference, &oracle, "workers=1 vs serial oracle");
    for workers in worker_counts() {
        let pooled = pooled_run(41, workers, None);
        assert_search_identical(&pooled, &reference, &format!("workers={workers}"));
    }
}

/// One generated hazard: `(evaluation index, attempt, kind)`.
type SpecHazard = (u64, u32, u8);

fn hazards() -> impl Strategy<Value = (Vec<SpecHazard>, Vec<u64>)> {
    let one = (0u64..30, 0u32..3, 0u8..4);
    (
        proptest::collection::vec(one, 0..5),
        proptest::collection::vec(0u64..30, 0..3),
    )
}

/// Builds a fresh fire-once plan from the generated spec — every run needs
/// its own, built identically (a cloned plan shares consumed hazards).
fn plan_from(spec: &[SpecHazard], kills: &[u64]) -> HazardPlan {
    let plan = HazardPlan::new();
    for &(index, attempt, kind) in spec {
        let hazard = match kind {
            0 => Hazard::Transient,
            1 => Hazard::Permanent,
            2 => Hazard::BudgetBlowout,
            _ => Hazard::Panic,
        };
        plan.schedule_attempt(index, attempt, hazard);
    }
    for &index in kills {
        plan.schedule(index, Hazard::KillWorker);
    }
    plan
}

fn popcount_record(campaign: &str) -> impl Fn(&BitGenome, f64) -> VirusRecord + '_ {
    move |genome, value| VirusRecord {
        campaign: campaign.into(),
        genes: genome.to_words(),
        gene_len: genome.len(),
        fitness: value,
        ce: value.max(0.0) as u64,
        ue: 0,
        sequence: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The pool's acceptance criterion: under any hazard schedule — which
    /// also perturbs task costs and thus the steal interleaving — every
    /// worker count produces the same trajectory as one worker.
    #[test]
    fn pooled_trajectories_are_worker_count_invariant(spec_and_kills in hazards()) {
        let (spec, kills) = spec_and_kills;
        let reference = pooled_run(97, 1, Some(plan_from(&spec, &kills)));
        for (n, incident) in reference.incidents.iter().enumerate() {
            prop_assert_eq!(incident.seq, n as u64, "dense incident sequence");
        }
        for workers in worker_counts() {
            let run = pooled_run(97, workers, Some(plan_from(&spec, &kills)));
            assert_search_identical(&run, &reference, &format!("workers={workers}"));
        }
    }

    /// Kill-and-resume under the pool: a journaled campaign interrupted at
    /// an arbitrary generation boundary resumes — on a *fresh* pool with a
    /// fresh, identically-built hazard plan — into the same incident
    /// stream, record stream and outcome as the uninterrupted run.
    #[test]
    fn journaled_campaign_resumes_identically_under_the_pool(
        spec_and_kills in hazards(),
        boundary in 0u32..6,
    ) {
        let (spec, kills) = spec_and_kills;
        let drive = |journal: &mut CampaignJournal<MemStorage>, max_steps, plan| {
            run_journaled(
                journal,
                "pool",
                ga_config(),
                59,
                |rng: &mut StdRng| BitGenome::random(rng, 24),
                &mut Popcount,
                3,
                popcount_record("pool"),
                max_steps,
                SupervisionPolicy::default(),
                Some(plan),
            )
            .expect("journal I/O")
        };
        let mut clean = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        let reference = drive(&mut clean, None, plan_from(&spec, &kills))
            .expect("clean run finishes");

        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        drive(&mut journal, Some(boundary), plan_from(&spec, &kills));
        let mut storage = journal.into_storage();
        storage.crash();
        let mut journal = CampaignJournal::open(storage, "db.json").unwrap();
        let resumed = drive(&mut journal, None, plan_from(&spec, &kills))
            .expect("resumed run finishes");

        prop_assert_eq!(&resumed.incidents, &reference.incidents);
        prop_assert_eq!(&resumed.best, &reference.best);
        prop_assert_eq!(board_bits(&resumed), board_bits(&reference));
        let replay: Vec<_> = journal.campaign_incidents("pool").cloned().collect();
        let acked: Vec<_> = clean.campaign_incidents("pool").cloned().collect();
        prop_assert_eq!(replay, acked, "acked incidents replay bit-identically");
        prop_assert_eq!(journal.db().records(), clean.db().records());
    }
}

/// Drives a scheduler holding the given sessions to completion, journaling
/// every campaign into its own `MemStorage` journal between ticks — the
/// multi-tenant twin of `run_journaled`'s drain loop.
fn run_scheduled_journaled(
    sessions: Vec<SearchSession<BitGenome>>,
    names: &[&str],
    workers: usize,
) -> (
    Vec<SearchResult<BitGenome>>,
    Vec<CampaignJournal<MemStorage>>,
) {
    let mut scheduler = CampaignScheduler::new(EvalPool::new(&Popcount, workers));
    for session in sessions {
        scheduler.add(session, None);
    }
    let mut journals: Vec<CampaignJournal<MemStorage>> = names
        .iter()
        .map(|_| CampaignJournal::open(MemStorage::new(), "db.json").unwrap())
        .collect();
    loop {
        for (id, name) in names.iter().enumerate() {
            let make_record = popcount_record(name);
            let session = scheduler.session_mut(id);
            for (genome, value) in session.take_newly_evaluated() {
                journals[id]
                    .append_record(make_record(&genome, value))
                    .unwrap();
            }
            for incident in session.take_new_incidents() {
                journals[id].append_incident(name, incident).unwrap();
            }
        }
        if !scheduler.tick() {
            break;
        }
    }
    let (sessions, _replicas) = scheduler.finish();
    (
        sessions.into_iter().map(SearchSession::finish).collect(),
        journals,
    )
}

#[test]
fn multiplexed_campaign_journals_are_bit_identical_to_running_alone() {
    // Two campaigns fair-share one pool; each journal must match the
    // journal of the same campaign running the pool alone.
    let seeds = [71u64, 72];
    let names = ["alpha", "beta"];
    let session_for = |seed: u64| {
        SearchSession::start(ga_config(), seed, |rng: &mut StdRng| {
            BitGenome::random(rng, 24)
        })
    };
    let (together, shared_journals) =
        run_scheduled_journaled(seeds.iter().map(|&s| session_for(s)).collect(), &names, 3);
    for ((&seed, name), (result, journal)) in seeds
        .iter()
        .zip(names)
        .zip(together.iter().zip(&shared_journals))
    {
        let (solo_results, solo_journals) =
            run_scheduled_journaled(vec![session_for(seed)], &[name], 3);
        assert_search_identical(result, &solo_results[0], &format!("campaign {name}"));
        assert_eq!(
            journal.db().records(),
            solo_journals[0].db().records(),
            "campaign {name}: journaled records"
        );
        let shared: Vec<_> = journal.campaign_incidents(name).cloned().collect();
        let solo: Vec<_> = solo_journals[0].campaign_incidents(name).cloned().collect();
        assert_eq!(shared, solo, "campaign {name}: journaled incidents");
        // Solo again as a plain pooled session — the scheduler adds
        // nothing to a lone campaign.
        let direct = pooled_run(seed, 3, None);
        assert_search_identical(result, &direct, &format!("campaign {name} vs direct"));
    }
}

#[test]
fn concurrent_word64_campaigns_match_their_solo_twins() {
    // The real substrate end-to-end: N concurrent word64 searches on the
    // quick scale must each reproduce the solo campaign with the same
    // campaign seed (campaign i of the batch draws the i-th seed of the
    // engine stream, exactly like i prior solo searches).
    let scale = ExperimentScale::quick;
    let mut multi = DStress::new(scale(), 7);
    multi.set_workers(4);
    let results = multi
        .search_word64_concurrent(2, 60.0, Metric::CeAverage, false)
        .expect("concurrent campaigns run");
    assert_eq!(results.len(), 2);

    let mut solo = DStress::new(scale(), 7);
    solo.set_workers(2);
    let first = solo.search_word64(60.0, Metric::CeAverage, false).unwrap();
    let second = solo.search_word64(60.0, Metric::CeAverage, false).unwrap();
    for (concurrent, alone) in results.iter().zip([first, second]) {
        assert_search_identical(
            &concurrent.result,
            &alone.result,
            &format!("campaign {}", concurrent.name),
        );
        assert_eq!(
            concurrent.result.eval_stats.compile_hits, alone.result.eval_stats.compile_hits,
            "absorbed compile counters agree with the solo run"
        );
    }
}

#[test]
fn absorbed_compile_counters_are_worker_count_invariant() {
    // The satellite bugfix regression: with replicas absorbed at campaign
    // end (on every exit path), the master evaluator's compile statistics
    // are exact — the same totals whether one replica did all the work or
    // four replicas split it.
    let run = |workers: usize| {
        let mut dstress = DStress::new(ExperimentScale::quick(), 11);
        dstress.set_workers(workers);
        let campaign = dstress
            .search_word64(60.0, Metric::CeAverage, false)
            .expect("campaign runs");
        (
            campaign.result.eval_stats.compile_hits,
            campaign.result.eval_stats.evaluations,
            campaign.failed_evaluations,
        )
    };
    let reference = run(1);
    for workers in [2usize, 4] {
        assert_eq!(run(workers), reference, "workers={workers}");
    }
}
