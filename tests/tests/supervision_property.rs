//! Property tests for the supervised evaluation runtime: under *any*
//! hazard schedule the supervisor's decisions (retries, quarantines,
//! worker-loss redeals) are a pure function of the evaluation-index stream
//! — identical for 1, 2 and 8 workers — and a journaled campaign killed at
//! an arbitrary generation boundary resumes replaying the same incidents.

use dstress_ga::{
    run_journaled, BitGenome, CampaignJournal, Fitness, GaConfig, GaEngine, Genome, Hazard,
    HazardPlan, IncidentKind, MemStorage, ParallelFitness, SearchResult, SupervisionPolicy,
    VirusRecord,
};
use proptest::prelude::*;
use rand::rngs::StdRng;

/// A pure, replicable popcount fitness.
struct Popcount;

impl Fitness<BitGenome> for Popcount {
    fn evaluate(&mut self, genome: &BitGenome) -> f64 {
        genome.count_ones() as f64
    }
}

impl ParallelFitness<BitGenome> for Popcount {
    fn replicate(&self) -> Self {
        Popcount
    }
}

fn ga_config() -> GaConfig {
    let mut config = GaConfig::paper_defaults();
    config.population_size = 10;
    config.max_generations = 6;
    config.stagnation_window = 3;
    config
}

/// One generated hazard: `(evaluation index, attempt, kind)`.
type SpecHazard = (u64, u32, u8);

fn hazards() -> impl Strategy<Value = (Vec<SpecHazard>, Vec<u64>)> {
    let one = (0u64..30, 0u32..3, 0u8..4);
    (
        proptest::collection::vec(one, 0..5),
        proptest::collection::vec(0u64..30, 0..3),
    )
}

/// Builds a fresh fire-once plan from the generated spec. Every run needs
/// its own plan (hazards are consumed), built identically.
fn plan_from(spec: &[SpecHazard], kills: &[u64]) -> HazardPlan {
    let plan = HazardPlan::new();
    for &(index, attempt, kind) in spec {
        let hazard = match kind {
            0 => Hazard::Transient,
            1 => Hazard::Permanent,
            2 => Hazard::BudgetBlowout,
            _ => Hazard::Panic,
        };
        plan.schedule_attempt(index, attempt, hazard);
    }
    for &index in kills {
        plan.schedule(index, Hazard::KillWorker);
    }
    plan
}

fn popcount_record(genome: &BitGenome, value: f64) -> VirusRecord {
    VirusRecord {
        campaign: "prop".into(),
        genes: genome.to_words(),
        gene_len: genome.len(),
        fitness: value,
        ce: value.max(0.0) as u64,
        ue: 0,
        sequence: 0,
    }
}

fn supervised_run(workers: usize, plan: HazardPlan) -> SearchResult<BitGenome> {
    let mut engine = GaEngine::new(ga_config(), 97);
    engine.set_supervision(SupervisionPolicy::default());
    engine.set_hazards(Some(plan));
    engine.run_parallel(workers, |rng| BitGenome::random(rng, 24), &mut Popcount)
}

/// Leaderboard comparison that survives `NaN` scores of quarantined
/// candidates (`NaN != NaN` under `==`).
fn board_bits(result: &SearchResult<BitGenome>) -> Vec<(Vec<u64>, u64)> {
    result
        .leaderboard
        .iter()
        .map(|(g, f)| (g.to_words(), f.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance criterion of the supervised runtime: whatever the
    /// hazard schedule, retry/quarantine decisions and the search outcome
    /// are bit-identical for 1, 2 and 8 workers.
    #[test]
    fn supervision_decisions_are_worker_count_invariant(spec_and_kills in hazards()) {
        let (spec, kills) = spec_and_kills;
        let reference = supervised_run(1, plan_from(&spec, &kills));
        // Incident sequence numbers are dense in stream order whatever the
        // schedule shape.
        for (n, incident) in reference.incidents.iter().enumerate() {
            prop_assert_eq!(incident.seq, n as u64);
        }
        for workers in [2usize, 8] {
            let run = supervised_run(workers, plan_from(&spec, &kills));
            prop_assert_eq!(&run.incidents, &reference.incidents, "workers={}", workers);
            prop_assert_eq!(&run.best, &reference.best, "workers={}", workers);
            prop_assert_eq!(
                run.best_fitness.to_bits(),
                reference.best_fitness.to_bits(),
                "workers={}", workers
            );
            prop_assert_eq!(board_bits(&run), board_bits(&reference), "workers={}", workers);
            prop_assert_eq!(run.generations, reference.generations, "workers={}", workers);
            prop_assert_eq!(
                run.eval_stats.evaluations,
                reference.eval_stats.evaluations,
                "workers={}", workers
            );
        }
    }

    /// Quarantine never leaks into selection of the survivors: a candidate
    /// the supervisor quarantined keeps its NaN score to the end and sits
    /// below every finite leaderboard entry.
    #[test]
    fn quarantined_candidates_rank_below_all_survivors(spec_and_kills in hazards()) {
        let (spec, kills) = spec_and_kills;
        let result = supervised_run(2, plan_from(&spec, &kills));
        let first_nan = result
            .leaderboard
            .iter()
            .position(|(_, f)| f.is_nan())
            .unwrap_or(result.leaderboard.len());
        for (i, (_, fitness)) in result.leaderboard.iter().enumerate() {
            prop_assert_eq!(
                fitness.is_nan(),
                i >= first_nan,
                "NaN scores must form the leaderboard's tail"
            );
        }
        let quarantines = result
            .incidents
            .iter()
            .filter(|i| matches!(i.kind, IncidentKind::Quarantine { .. }))
            .count();
        prop_assert!(
            result.leaderboard.len() - first_nan <= quarantines,
            "only quarantined candidates may carry NaN"
        );
    }

    /// Kill-and-resume round-trip: a journaled campaign interrupted at an
    /// arbitrary generation boundary under an arbitrary hazard schedule
    /// resumes (with a fresh, identically-built plan) into the same
    /// incident stream, record stream and outcome as the uninterrupted run.
    #[test]
    fn journaled_campaign_resumes_identically_after_any_kill(
        spec_and_kills in hazards(),
        boundary in 0u32..6,
    ) {
        let (spec, kills) = spec_and_kills;
        let drive = |journal: &mut CampaignJournal<MemStorage>, max_steps, plan| {
            run_journaled(
                journal,
                "prop",
                ga_config(),
                31,
                |rng: &mut StdRng| BitGenome::random(rng, 24),
                &mut Popcount,
                2,
                popcount_record,
                max_steps,
                SupervisionPolicy::default(),
                Some(plan),
            )
            .expect("journal I/O")
        };
        let mut clean = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        let reference = drive(&mut clean, None, plan_from(&spec, &kills))
            .expect("clean run finishes");

        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        drive(&mut journal, Some(boundary), plan_from(&spec, &kills));
        let mut storage = journal.into_storage();
        storage.crash();
        let mut journal = CampaignJournal::open(storage, "db.json").unwrap();
        let resumed = drive(&mut journal, None, plan_from(&spec, &kills))
            .expect("resumed run finishes");

        prop_assert_eq!(&resumed.incidents, &reference.incidents);
        prop_assert_eq!(&resumed.best, &reference.best);
        prop_assert_eq!(board_bits(&resumed), board_bits(&reference));
        let replay: Vec<_> = journal.campaign_incidents("prop").cloned().collect();
        let acked: Vec<_> = clean.campaign_incidents("prop").cloned().collect();
        prop_assert_eq!(replay, acked, "acked incidents replay bit-identically");
        prop_assert_eq!(journal.db().records(), clean.db().records());
    }
}
