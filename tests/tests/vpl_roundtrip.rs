//! Property test: pretty-printing an arbitrary generated program yields
//! source that re-parses to the *same* AST (modulo the printer's explicit
//! parenthesization, which the parser normalizes away).

use dstress_vpl::ast::{AssignOp, BinOp, Decl, Expr, Init, LValue, Program, Stmt, UnOp};
use dstress_vpl::parser::parse_program;
use dstress_vpl::pretty::render_program;
use proptest::prelude::*;

/// Variable names the generator draws from (all pre-declared).
const VARS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const ARRAYS: [&str; 2] = ["table", "buffer"];

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0u64..1_000_000).prop_map(Expr::Num),
        (0usize..VARS.len()).prop_map(|i| Expr::Var(VARS[i].into())),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Binary operations over the full operator set.
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Rem),
                    Just(BinOp::Shl),
                    Just(BinOp::Shr),
                    Just(BinOp::BitAnd),
                    Just(BinOp::BitOr),
                    Just(BinOp::BitXor),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Gt),
                    Just(BinOp::Le),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, lhs, rhs)| Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs)
                }),
            (prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)], inner.clone()).prop_map(
                |(op, operand)| Expr::Unary {
                    op,
                    operand: Box::new(operand)
                }
            ),
            ((0usize..ARRAYS.len()), inner).prop_map(|(a, index)| Expr::Index {
                base: ARRAYS[a].into(),
                index: Box::new(index)
            }),
        ]
    })
}

fn arb_lvalue() -> impl Strategy<Value = LValue> {
    prop_oneof![
        (0usize..VARS.len()).prop_map(|i| LValue::Var(VARS[i].into())),
        ((0usize..ARRAYS.len()), arb_expr()).prop_map(|(a, index)| LValue::Index {
            base: ARRAYS[a].into(),
            index
        }),
    ]
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        (
            arb_lvalue(),
            prop_oneof![
                Just(AssignOp::Set),
                Just(AssignOp::Add),
                Just(AssignOp::Sub),
                Just(AssignOp::Mul),
                Just(AssignOp::Div)
            ],
            arb_expr()
        )
            .prop_map(|(target, op, value)| Stmt::Assign { target, op, value }),
        (arb_lvalue(), any::<bool>())
            .prop_map(|(target, increment)| Stmt::IncDec { target, increment }),
    ];
    simple.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (
                arb_expr(),
                proptest::collection::vec(inner.clone(), 1..3),
                proptest::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(cond, then, els)| Stmt::If { cond, then, els }),
            (proptest::collection::vec(inner, 1..3)).prop_map(Stmt::Block),
        ]
    })
}

/// A program whose variables are all declared up front, so it also passes
/// semantic checking.
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_stmt(), 1..6).prop_map(|body| Program {
        globals: ARRAYS
            .iter()
            .map(|name| Decl {
                name: (*name).into(),
                is_array: true,
                is_pointer: false,
                init: Some(Init::List(vec![Expr::Num(1), Expr::Num(2), Expr::Num(3)])),
            })
            .collect(),
        locals: VARS
            .iter()
            .map(|name| Decl {
                name: (*name).into(),
                is_array: false,
                is_pointer: false,
                init: Some(Init::Expr(Expr::Num(0))),
            })
            .collect(),
        body,
    })
}

/// Strips the printer's section comments, leaving parseable sections.
fn split_rendered(rendered: &str) -> (String, String, String) {
    let mut sections = vec![String::new()];
    for line in rendered.lines() {
        if line.starts_with("/*") {
            sections.push(String::new());
            continue;
        }
        let current = sections.last_mut().expect("at least one section");
        current.push_str(line);
        current.push('\n');
    }
    // sections[0] is the empty prefix; then global, local, body.
    let mut iter = sections.into_iter().skip(1);
    (
        iter.next().unwrap_or_default(),
        iter.next().unwrap_or_default(),
        iter.next().unwrap_or_default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pretty_print_reparse_is_identity(program in arb_program()) {
        let rendered = render_program(&program);
        let (globals, locals, body) = split_rendered(&rendered);
        let reparsed = parse_program(&globals, &locals, &body);
        prop_assert!(reparsed.is_ok(), "rendered program must reparse:\n{rendered}\n{reparsed:?}");
        let reparsed = reparsed.expect("checked");
        // The body ASTs must match exactly (the printer's parentheses are
        // redundant to the parser's precedence).
        prop_assert_eq!(
            &reparsed.body, &program.body,
            "round-trip changed the AST:\n{}", rendered
        );
        prop_assert_eq!(&reparsed.locals, &program.locals);
        prop_assert_eq!(&reparsed.globals, &program.globals);
    }
}
