//! Integration: the full DStress pipeline (paper Fig. 4) across all crates
//! — processing phase (vpl) → synthesis phase (ga) → evaluation phase
//! (platform + dram + ecc).

use dstress::{DStress, EnvKind, ExperimentScale, Metric, BEST_WORD, WORST_WORD};
use dstress_vpl::{BoundValue, ExecLimits, Interpreter, Template};
use std::collections::HashMap;

/// A tiny scale for fast integration runs.
fn tiny() -> ExperimentScale {
    let mut scale = ExperimentScale::quick();
    scale.server.dimm.weak.singles_per_rank = 400;
    scale.server.dimm.weak.pairs_per_rank = 15;
    scale.ga.population_size = 8;
    scale.ga.max_generations = 6;
    scale.ga.stagnation_window = 2;
    scale.runs_per_virus = 2;
    scale
}

#[test]
fn template_processing_extracts_fig3_style_parameters() {
    // A template shaped like the paper's Fig. 3 flows through the whole
    // processing phase.
    let src = r#"
->parameters
$$$_ARRAY1_VEC_$$$ [N1][DB1,UP1]
$$$_VAR1_$$$ [DB3,UP3]

->global_data
volatile unsigned long long var1[] = $$$_ARRAY1_VEC_$$$;

->local_data
unsigned long long var3 = $$$_VAR1_$$$;
int i = 0;
int j = 0;

->body
volatile unsigned long long* temp_array = (unsigned long long*)(malloc(N1 * 8));
/* data pattern */
for (i = 0; i < N1; i += 1) {
    temp_array[i] = var1[i] + var3;
}
"#;
    let constants: HashMap<String, u64> = [
        ("N1".to_string(), 8u64),
        ("DB1".to_string(), 0),
        ("UP1".to_string(), u64::MAX),
        ("DB3".to_string(), 0),
        ("UP3".to_string(), 255),
    ]
    .into_iter()
    .collect();
    // N1 also appears in the body as an identifier-like constant: bind it
    // as an environment scalar at instantiation.
    let src = src
        .replace("N1 * 8", "$$$_N1_$$$ * 8")
        .replace("i < N1", "i < $$$_N1_$$$");
    let processed = Template::parse(&src)
        .expect("parses")
        .process(&constants)
        .expect("processes");
    assert_eq!(processed.params().len(), 2);
    let mut bindings: HashMap<String, BoundValue> = HashMap::new();
    bindings.insert("ARRAY1_VEC".into(), BoundValue::Array((0..8).collect()));
    bindings.insert("VAR1".into(), BoundValue::Scalar(7));
    bindings.insert("N1".into(), BoundValue::Scalar(8));
    let program = processed.instantiate(&bindings).expect("instantiates");
    assert!(program.placeholder_names().is_empty());
}

#[test]
fn instantiated_virus_runs_against_the_real_server() {
    let scale = tiny();
    let dstress = DStress::new(scale, 1);
    let mut server = dstress.server_at(60.0).unwrap();
    let template =
        dstress::templates::process(dstress::templates::WORD64, &scale).expect("processes");
    let mut bindings = EnvKind::Word64.bindings(&scale).expect("env binds");
    bindings.insert("PATTERN".into(), BoundValue::Scalar(WORST_WORD));
    let program = template.instantiate(&bindings).expect("instantiates");
    let mut session = server.session(2);
    let stats = Interpreter::new(ExecLimits::default())
        .run(&program, &mut session)
        .expect("virus executes");
    // The virus wrote the whole DIMM and then swept it.
    assert_eq!(stats.writes as u64, scale.dimm_words());
    assert_eq!(stats.reads as u64, scale.dimm_words());
    let run = session.finish();
    assert!(!run.truncated);
    let outcome = server.evaluate_run(&run, 0).expect("evaluate");
    assert!(outcome.totals.ce > 0, "relaxed DIMM2 at 60C must err");
}

#[test]
fn allocation_layout_matches_environment_prediction() {
    // The environment binding computation predicts where the big buffer
    // starts (after the template's global data). Verify against reality:
    // instantiate the row-triple template with a marker pattern and check
    // the marker lands in the predicted victim row of the DIMM.
    let scale = tiny();
    let dstress = DStress::new(scale, 3);
    let mut server = dstress.server_at(50.0).unwrap();
    let victims = vec![dstress_dram::geometry::RowKey::new(0, 4, 13)];
    let env = EnvKind::RowTriple {
        victims: victims.clone(),
    };
    let template =
        dstress::templates::process(dstress::templates::ROW_TRIPLE, &scale).expect("processes");
    let row_words = scale.row_words() as usize;
    let mut bindings = env.bindings(&scale).expect("env binds");
    let marker = 0xDEAD_BEEF_0000_0001u64;
    bindings.insert("PREV_PATTERN".into(), BoundValue::Array(vec![1; row_words]));
    bindings.insert(
        "VICTIM_PATTERN".into(),
        BoundValue::Array(vec![marker; row_words]),
    );
    bindings.insert("NEXT_PATTERN".into(), BoundValue::Array(vec![2; row_words]));
    let program = template.instantiate(&bindings).expect("instantiates");
    let mut session = server.session(2);
    Interpreter::new(ExecLimits::default())
        .run(&program, &mut session)
        .expect("executes");
    drop(session);
    // The marker must sit exactly in the victim row on the DIMM.
    let loc = dstress_dram::Location::new(0, 4, 13, 7);
    assert_eq!(
        server.dimm(2).read_word(loc),
        marker,
        "victim-row offset arithmetic must agree with the session allocator"
    );
}

#[test]
fn quick_campaign_beats_baselines_and_records_database() {
    let mut dstress = DStress::new(tiny(), 5);
    let campaign = dstress
        .search_word64(60.0, Metric::CeAverage, false)
        .expect("campaign runs");
    // The database holds the leaderboard.
    let best = dstress.db.best(&campaign.name).expect("db recorded");
    assert_eq!(best.genes, campaign.result.best.to_words());
    // The discovered pattern beats the all-zeros and best-case references.
    let zeros = dstress
        .measure(
            &EnvKind::Word64,
            [("PATTERN".to_string(), BoundValue::Scalar(0u64))].into(),
            60.0,
            Metric::CeAverage,
        )
        .expect("baseline");
    let best_case = dstress
        .measure(
            &EnvKind::Word64,
            [("PATTERN".to_string(), BoundValue::Scalar(BEST_WORD))].into(),
            60.0,
            Metric::CeAverage,
        )
        .expect("baseline");
    assert!(campaign.result.best_fitness > zeros.fitness);
    assert!(zeros.fitness > best_case.fitness);
}

#[test]
fn campaigns_are_deterministic_per_seed() {
    let run = |seed| {
        let mut dstress = DStress::new(tiny(), seed);
        let campaign = dstress
            .search_word64(60.0, Metric::CeAverage, false)
            .expect("campaign runs");
        (campaign.result.best.to_words(), campaign.result.generations)
    };
    assert_eq!(
        run(9),
        run(9),
        "same seed must reproduce the campaign exactly"
    );
}

#[test]
fn virus_database_roundtrips_through_disk() {
    let mut dstress = DStress::new(tiny(), 11);
    let campaign = dstress
        .search_word64(60.0, Metric::CeAverage, false)
        .expect("campaign runs");
    let dir = std::env::temp_dir().join("dstress-integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("db.json");
    dstress.db.save(&path).expect("saves");
    let restored = dstress_ga::VirusDatabase::load(&path).expect("loads");
    assert_eq!(restored, dstress.db);
    assert!(restored.best(&campaign.name).is_some());
    std::fs::remove_file(&path).ok();
}
