//! Deterministic replays of persisted VPL round-trip regressions.
//!
//! `proptest-regressions/tests/vpl_roundtrip.txt` records the shrunk
//! failure cases the property suite has found. Property runners replay
//! those seeds, but seed→value mappings are runner-specific; these tests
//! reconstruct the recorded ASTs literally so the exact historical cases
//! are re-checked on every CI run, with any runner.

use dstress_vpl::ast::{AssignOp, Decl, Expr, Init, LValue, Program, Stmt, UnOp};
use dstress_vpl::parser::parse_program;
use dstress_vpl::pretty::render_program;

/// Splits rendered source into (globals, locals, body), dropping the
/// printer's `/* section */` comment lines.
fn split_rendered(rendered: &str) -> (String, String, String) {
    let mut sections = vec![String::new()];
    for line in rendered.lines() {
        if line.starts_with("/*") {
            sections.push(String::new());
            continue;
        }
        let current = sections.last_mut().expect("at least one section");
        current.push_str(line);
        current.push('\n');
    }
    let mut iter = sections.into_iter().skip(1);
    (
        iter.next().unwrap_or_default(),
        iter.next().unwrap_or_default(),
        iter.next().unwrap_or_default(),
    )
}

fn assert_roundtrips(program: &Program) {
    let rendered = render_program(program);
    let (globals, locals, body) = split_rendered(&rendered);
    let reparsed = parse_program(&globals, &locals, &body)
        .unwrap_or_else(|e| panic!("rendered program must reparse:\n{rendered}\n{e:?}"));
    assert_eq!(reparsed.body, program.body, "body changed:\n{rendered}");
    assert_eq!(
        reparsed.locals, program.locals,
        "locals changed:\n{rendered}"
    );
    assert_eq!(
        reparsed.globals, program.globals,
        "globals changed:\n{rendered}"
    );
}

fn array_decl(name: &str, init: Vec<Expr>) -> Decl {
    Decl {
        name: name.into(),
        is_array: true,
        is_pointer: false,
        init: Some(Init::List(init)),
    }
}

fn scalar_decl(name: &str) -> Decl {
    Decl {
        name: name.into(),
        is_array: false,
        is_pointer: false,
        init: Some(Init::Expr(Expr::Num(0))),
    }
}

fn standard_frame(body: Vec<Stmt>) -> Program {
    Program {
        globals: ["table", "buffer"]
            .iter()
            .map(|n| array_decl(n, vec![Expr::Num(1), Expr::Num(2), Expr::Num(3)]))
            .collect(),
        locals: ["alpha", "beta", "gamma", "delta"]
            .iter()
            .map(|n| scalar_decl(n))
            .collect(),
        body,
    }
}

/// The shrunk case persisted as `cc eb7a7f60…`: a doubly-negated literal
/// must render as `-(-(0))`, never `--0` (which lexes as a decrement).
#[test]
fn persisted_nested_negation_case_roundtrips() {
    let program = standard_frame(vec![Stmt::If {
        cond: Expr::Num(0),
        then: vec![Stmt::Assign {
            target: LValue::Var("alpha".into()),
            op: AssignOp::Set,
            value: Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(Expr::Num(0)),
                }),
            },
        }],
        els: vec![],
    }]);
    assert_roundtrips(&program);
}

/// Deeper unary chains (both operators, mixed) must also round-trip.
#[test]
fn deep_mixed_unary_chains_roundtrip() {
    let mut value = Expr::Var("beta".into());
    for i in 0..6 {
        let op = if i % 2 == 0 { UnOp::Neg } else { UnOp::Not };
        value = Expr::Unary {
            op,
            operand: Box::new(value),
        };
    }
    let program = standard_frame(vec![Stmt::Assign {
        target: LValue::Index {
            base: "table".into(),
            index: Expr::Num(1),
        },
        op: AssignOp::Sub,
        value,
    }]);
    assert_roundtrips(&program);
}

/// Initializer lists longer than eight elements must render in full: the
/// printer used to elide the tail behind a comment, which the lexer skips,
/// so reparsing silently dropped elements.
#[test]
fn long_initializer_lists_roundtrip() {
    let long: Vec<Expr> = (0..23).map(|i| Expr::Num(i * 7 + 1)).collect();
    let program = Program {
        globals: vec![
            array_decl("table", long),
            array_decl("buffer", vec![Expr::Num(9)]),
        ],
        locals: vec![scalar_decl("alpha")],
        body: vec![Stmt::Assign {
            target: LValue::Var("alpha".into()),
            op: AssignOp::Add,
            value: Expr::Index {
                base: "table".into(),
                index: Box::new(Expr::Num(22)),
            },
        }],
    };
    assert_roundtrips(&program);
}

/// The persisted regression file must stay in place so property runners
/// keep replaying its seeds before fresh cases.
#[test]
fn regression_seed_file_is_preserved() {
    let manifest = env!("CARGO_MANIFEST_DIR");
    let path = std::path::Path::new(manifest)
        .parent()
        .expect("workspace root")
        .join("proptest-regressions/tests/vpl_roundtrip.txt");
    let contents = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("regression file missing at {}: {e}", path.display()));
    assert!(
        contents.lines().any(|l| l.trim_start().starts_with("cc ")),
        "regression file must keep at least one persisted case"
    );
}
