//! Cross-crate property tests: invariants that must hold for arbitrary
//! inputs, spanning the ECC ↔ DRAM ↔ platform ↔ framework boundaries.

use dstress::{EnvKind, ExperimentScale};
use dstress_dram::{ActivationCounts, Dimm, DimmConfig, OperatingEnv};
use dstress_ecc::{classify_flips, Codeword, EventKind};
use dstress_ga::{BitGenome, Genome, IntGenome};
use dstress_stats::{mean_pairwise, sokal_michener};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every fault event the DRAM model reports classifies to a *visible or
    /// silent* ECC event — never `None` (a reported flip can't vanish).
    #[test]
    fn every_dram_event_classifies_nontrivially(seed in 0u64..500, temp in 55.0f64..70.0) {
        let mut config = DimmConfig::default();
        config.geometry.rows_per_bank = 8;
        config.weak.singles_per_rank = 200;
        config.weak.pairs_per_rank = 10;
        let mut dimm = Dimm::new(config, seed);
        let env = OperatingEnv::relaxed(temp);
        for event in dimm.advance_window(&env, &ActivationCounts::new(), seed) {
            let kind = classify_flips(event.written, event.flip_mask, 0);
            prop_assert_ne!(kind, EventKind::None, "event {} vanished", event.loc);
            match event.flipped_bits() {
                1 => prop_assert_eq!(kind, EventKind::Ce),
                2 => prop_assert_eq!(kind, EventKind::Ue),
                _ => prop_assert!(kind != EventKind::Ce || kind.corrupts_data()),
            }
        }
    }

    /// ECC correction is exact for any data under any single-bit fault, and
    /// the corrected data always round-trips through re-encoding.
    #[test]
    fn ecc_single_fault_roundtrip(data in any::<u64>(), bit in 0u32..64) {
        let faulty = Codeword::encode(data).with_data_flips(1u64 << bit);
        match faulty.decode() {
            dstress_ecc::EccEvent::Corrected { data: d, .. } => {
                prop_assert_eq!(d, data);
                let reencoded_clean =
                    matches!(Codeword::encode(d).decode(), dstress_ecc::EccEvent::Clean { .. });
                prop_assert!(reencoded_clean);
            }
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    /// Genome similarity is a proper similarity: reflexive, symmetric,
    /// bounded — for both encodings.
    #[test]
    fn genome_similarity_axioms(seed in any::<u64>(), len in 1usize..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BitGenome::random(&mut rng, len);
        let b = BitGenome::random(&mut rng, len);
        prop_assert_eq!(a.similarity(&a), 1.0);
        prop_assert!((a.similarity(&b) - b.similarity(&a)).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&a.similarity(&b)));
        let c = IntGenome::random(&mut rng, (len % 32) + 1, 0, 20);
        let d = IntGenome::random(&mut rng, (len % 32) + 1, 0, 20);
        prop_assert_eq!(c.similarity(&c), 1.0);
        prop_assert!((c.similarity(&d) - d.similarity(&c)).abs() < 1e-12);
    }

    /// Packed-genome similarity agrees with the OTU-based Sokal–Michener
    /// definition for arbitrary lengths (including non-word-aligned ones).
    #[test]
    fn packed_similarity_matches_reference(seed in any::<u64>(), len in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = BitGenome::random(&mut rng, len);
        let b = BitGenome::random(&mut rng, len);
        let reference = sokal_michener(&a.bits(), &b.bits());
        prop_assert!((a.similarity(&b) - reference).abs() < 1e-12);
    }

    /// Mean pairwise similarity of identical chromosomes is exactly 1 and
    /// never exceeds 1 for arbitrary populations.
    #[test]
    fn mean_pairwise_bounds(seed in any::<u64>(), n in 2usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop: Vec<BitGenome> = (0..n).map(|_| BitGenome::random(&mut rng, 64)).collect();
        let sim = mean_pairwise(&pop, |a, b| a.similarity(b));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&sim));
        let clones = vec![pop[0].clone(); n];
        prop_assert_eq!(mean_pairwise(&clones, |a, b| a.similarity(b)), 1.0);
    }

    /// Environment bindings always fit inside the DIMM: `MEM_WORDS` plus
    /// the global rows never exceed capacity, for any victim row that the
    /// binding accepts.
    #[test]
    fn environment_bindings_fit_the_dimm(bank in 0u8..8, row in 0u32..16, rank in 0u8..2) {
        let scale = ExperimentScale::quick();
        let victim = dstress_dram::geometry::RowKey::new(rank, bank, row);
        for env in [
            EnvKind::RowTriple { victims: vec![victim] },
            EnvKind::Chunks { victims: vec![victim] },
            EnvKind::RowAccess { victims: vec![victim], fill: 0 },
            EnvKind::StrideAccess { victims: vec![victim], fill: 0 },
        ] {
            if let Ok(bindings) = env.bindings(&scale) {
                let mem_words = match bindings["MEM_WORDS"] {
                    dstress_vpl::BoundValue::Scalar(w) => w,
                    _ => unreachable!("MEM_WORDS is scalar"),
                };
                prop_assert!(mem_words <= scale.dimm_words());
                prop_assert!(mem_words > 0);
            }
        }
    }

    /// The disturbance factor is monotone in every aggressor's activation
    /// count and bounded by `max_factor`, whatever the activation layout.
    #[test]
    fn disturbance_monotone_bounded(counts in proptest::collection::vec(0u64..100_000, 1..6)) {
        use dstress_dram::geometry::RowKey;
        let model = dstress_dram::DisturbanceModel::default();
        let victim = RowKey::new(0, 0, 16);
        let acts: ActivationCounts = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (RowKey::new(0, 0, 10 + i as u32), c))
            .collect();
        let f = model.factor(victim, &acts);
        prop_assert!((0.0..=model.max_factor).contains(&f));
        let boosted: ActivationCounts = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (RowKey::new(0, 0, 10 + i as u32), c + 1000))
            .collect();
        prop_assert!(model.factor(victim, &boosted) >= f);
    }
}
