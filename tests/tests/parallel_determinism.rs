//! Cross-crate determinism of parallel GA evaluation: a full campaign must
//! produce bit-identical results for any evaluation worker count, because
//! every fitness evaluation is a pure function of the chromosome (the VRT
//! nonce is chromosome-derived) and the engine's RNG stream never leaves
//! the single-threaded generation loop.

use dstress::{DStress, EnvKind, ExperimentScale, Metric};
use dstress_ga::{BitGenome, Fitness, GaConfig, GaEngine, ParallelFitness};

/// Runs the word64 CE campaign with the given worker count.
fn word64_campaign(workers: usize) -> dstress::search::BitCampaign {
    let mut dstress = DStress::new(ExperimentScale::quick(), 77);
    dstress.set_workers(workers);
    dstress
        .search_word64(60.0, Metric::CeAverage, false)
        .expect("campaign runs")
}

#[test]
fn campaign_is_bit_identical_across_worker_counts() {
    let serial = word64_campaign(1);
    let parallel = word64_campaign(3);
    // Identical leaderboards: same chromosomes, same error counts, same
    // order — the ISSUE's acceptance criterion.
    assert_eq!(serial.result.leaderboard, parallel.result.leaderboard);
    assert_eq!(serial.result.best, parallel.result.best);
    assert_eq!(serial.result.best_fitness, parallel.result.best_fitness);
    assert_eq!(serial.result.generations, parallel.result.generations);
    assert_eq!(serial.result.converged, parallel.result.converged);
    assert_eq!(serial.result.similarity, parallel.result.similarity);
    assert_eq!(serial.result.history, parallel.result.history);
    assert_eq!(serial.failed_evaluations, parallel.failed_evaluations);
    // The substrate work is identical too: the evaluation cache makes both
    // paths run each distinct chromosome exactly once.
    assert_eq!(
        serial.result.eval_stats.evaluations,
        parallel.result.eval_stats.evaluations
    );
    assert_eq!(
        serial.result.eval_stats.cache_hits,
        parallel.result.eval_stats.cache_hits
    );
    assert_eq!(serial.result.eval_stats.workers, 1);
    assert_eq!(parallel.result.eval_stats.workers, 3);
}

#[test]
fn parallel_engine_matches_owned_evaluator_scores() {
    // Engine-level check against the real DStress substrate (not a toy
    // fitness): the scores the parallel search records for its best
    // chromosome must equal a from-scratch evaluation of that chromosome.
    let dstress = DStress::new(ExperimentScale::quick(), 5);
    let make_fitness = || dstress::ParallelBitFitness {
        evaluator: dstress
            .evaluator(&EnvKind::Word64, 60.0, Metric::CeAverage)
            .expect("evaluator builds"),
        codec: dstress::patterns::BitCodec::Word64 {
            param: "PATTERN".into(),
        },
    };
    let mut config = GaConfig::paper_defaults();
    config.max_generations = 4;
    let mut engine = GaEngine::new(config, 13);
    let mut fitness = make_fitness();
    let result = engine.run_parallel(2, |rng| BitGenome::random(rng, 64), &mut fitness);
    let mut fresh = make_fitness();
    let recomputed = fresh.evaluate(&result.best);
    assert_eq!(
        recomputed, result.best_fitness,
        "recorded best fitness must be reproducible from the chromosome alone"
    );
    // Replicas of the fresh fitness agree as well.
    let mut replica = fresh.replicate();
    assert_eq!(replica.evaluate(&result.best), recomputed);
}
