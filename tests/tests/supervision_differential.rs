//! Differential tests for the supervised evaluation runtime at the campaign
//! level: a `HazardPlan` injected into the real word64 search (panics,
//! transient faults, permanent faults, step-budget blowouts, worker deaths)
//! must never abort the campaign — the search completes (or quarantines the
//! offenders) with bit-identical results and an identical incident stream
//! for every worker count, and a campaign killed mid-search under hazards
//! resumes from the journal replaying the same supervision decisions.

use dstress::{
    CampaignJournal, DStress, ExperimentScale, Hazard, HazardPlan, IncidentKind, MemStorage,
    Metric, SupervisionPolicy,
};
use dstress_ga::{BitGenome, FaultKind, SearchResult};

/// The hazard schedule every test run replays: one of each fault class,
/// all within the initial population (12 distinct candidates at quick
/// scale), so the plan fires regardless of convergence.
///
/// Expected outcome under the default policy (3 retries, quarantine at 4
/// faults): 4 quarantines (panic, exhausted transient, permanent, budget
/// blowout), 4 retries (one lone transient + three on the exhausted
/// candidate), 1 worker loss.
fn full_plan() -> HazardPlan {
    let plan = HazardPlan::new();
    plan.schedule(1, Hazard::Panic);
    plan.schedule(3, Hazard::Transient);
    for attempt in 0..4 {
        plan.schedule_attempt(5, attempt, Hazard::Transient);
    }
    plan.schedule(7, Hazard::Permanent);
    plan.schedule(9, Hazard::BudgetBlowout);
    plan.schedule(6, Hazard::KillWorker);
    plan
}

fn supervised_search(workers: usize, plan: Option<HazardPlan>) -> SearchResult<BitGenome> {
    let mut dstress = DStress::new(ExperimentScale::quick(), 42);
    dstress.set_workers(workers);
    dstress.set_supervision(SupervisionPolicy::default());
    dstress.set_hazard_plan(plan);
    dstress
        .search_word64(60.0, Metric::CeAverage, false)
        .expect("a hazard plan must never abort the campaign")
        .result
}

/// Bit-level equality that survives `NaN` scores (quarantined candidates
/// sit in the leaderboard with `NaN`, and `NaN != NaN` under `==`).
fn assert_search_identical(a: &SearchResult<BitGenome>, b: &SearchResult<BitGenome>, ctx: &str) {
    assert_eq!(a.best, b.best, "{ctx}");
    assert_eq!(a.best_fitness.to_bits(), b.best_fitness.to_bits(), "{ctx}");
    let bits = |r: &SearchResult<BitGenome>| {
        r.leaderboard
            .iter()
            .map(|(g, f)| (g.clone(), f.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(a), bits(b), "{ctx}");
    assert_eq!(a.generations, b.generations, "{ctx}");
    assert_eq!(a.converged, b.converged, "{ctx}");
    assert_eq!(a.incidents, b.incidents, "{ctx}");
    assert_eq!(a.eval_stats.evaluations, b.eval_stats.evaluations, "{ctx}");
    assert_eq!(a.eval_stats.cache_hits, b.eval_stats.cache_hits, "{ctx}");
}

#[test]
fn hazard_sweep_is_bit_identical_across_worker_counts() {
    let reference = supervised_search(1, Some(full_plan()));
    assert_eq!(reference.quarantined(), 4, "one per fatal hazard");
    assert_eq!(reference.workers_lost(), 1);
    let retries = reference
        .incidents
        .iter()
        .filter(|i| matches!(i.kind, IncidentKind::Retry { .. }))
        .count();
    assert_eq!(retries, 4, "one lone transient + three exhausted ones");

    // CI pins 1 and 4; DSTRESS_WORKERS lets the sweep widen without a
    // recompile.
    let mut counts = vec![2, 4];
    if let Some(extra) = std::env::var("DSTRESS_WORKERS")
        .ok()
        .and_then(|w| w.parse::<usize>().ok())
    {
        counts.push(extra.max(1));
    }
    for workers in counts {
        let run = supervised_search(workers, Some(full_plan()));
        assert_search_identical(&run, &reference, &format!("workers={workers}"));
    }
}

#[test]
fn benign_hazards_leave_the_search_outcome_unchanged() {
    // Retried transients and worker deaths never change a score, so the
    // search trajectory — every generation, every winner — must match the
    // clean run exactly; only the incident stream differs.
    let clean = supervised_search(2, None);
    assert!(clean.incidents.is_empty());
    let plan = HazardPlan::new();
    plan.schedule(3, Hazard::Transient);
    plan.schedule(8, Hazard::Transient);
    plan.schedule(4, Hazard::KillWorker);
    plan.schedule(10, Hazard::KillWorker);
    let hazarded = supervised_search(2, Some(plan));
    assert_eq!(hazarded.workers_lost(), 2);
    assert_eq!(hazarded.quarantined(), 0);
    assert_eq!(hazarded.best, clean.best, "the winner survives supervision");
    assert_eq!(
        hazarded.best_fitness.to_bits(),
        clean.best_fitness.to_bits()
    );
    assert_eq!(hazarded.leaderboard, clean.leaderboard);
    assert_eq!(hazarded.history, clean.history);
}

#[test]
fn step_budget_watchdog_quarantines_every_runaway_deterministically() {
    // The real watchdog, not an injected hazard: a 1-step VM budget makes
    // every virus a "runaway". The campaign still completes — every
    // distinct candidate is quarantined with a budget fault, none is ever
    // re-evaluated, and the outcome is worker-count invariant.
    let run = |workers: usize| {
        let mut dstress = DStress::new(ExperimentScale::quick(), 42);
        dstress.set_workers(workers);
        dstress.set_step_budget(Some(1));
        dstress
            .search_word64(60.0, Metric::CeAverage, false)
            .expect("budget blowouts must never abort the campaign")
    };
    let reference = run(1);
    assert_eq!(
        reference.result.quarantined() as u64,
        reference.result.eval_stats.evaluations,
        "every evaluated candidate trips the watchdog"
    );
    assert!(
        reference.result.best_fitness.is_nan(),
        "an all-quarantined campaign has no finite winner"
    );
    assert!(reference.result.incidents.iter().all(|i| matches!(
        &i.kind,
        IncidentKind::Quarantine { faults: 1, fault } if fault.kind == FaultKind::BudgetExhausted
    )));
    assert_eq!(
        reference.failed_evaluations, reference.result.eval_stats.evaluations,
        "the evaluator counted each blowout exactly once"
    );
    let other = run(3);
    assert_eq!(other.result.incidents, reference.result.incidents);
    assert_eq!(other.result.best, reference.result.best);
}

#[test]
fn campaign_killed_under_hazards_resumes_with_the_same_incident_stream() {
    // Kill the journaled word64 campaign at every generation boundary while
    // the hazard plan is live, crash, and resume with a *fresh* identical
    // plan: cached pre-checkpoint evaluations never re-fire their hazards,
    // post-checkpoint hazards fire exactly once, and the replayed incident
    // stream matches the uninterrupted run's bit for bit.
    let search = |journal: &mut CampaignJournal<MemStorage>, max_steps, plan| {
        let mut dstress = DStress::new(ExperimentScale::quick(), 42);
        dstress.set_workers(2);
        dstress.set_hazard_plan(Some(plan));
        dstress
            .search_word64_journaled_budget(journal, 60.0, Metric::CeAverage, false, max_steps)
            .expect("journaled search")
    };
    let mut clean = CampaignJournal::open(MemStorage::new(), "viruses.json").unwrap();
    let reference = search(&mut clean, None, full_plan()).expect("clean run finishes");
    assert_eq!(reference.result.quarantined(), 4);
    let campaign = reference.name.clone();
    let journaled: Vec<_> = clean.campaign_incidents(&campaign).cloned().collect();
    assert_eq!(
        journaled, reference.result.incidents,
        "every supervision decision is acked into the journal"
    );

    for boundary in 0u32.. {
        let mut journal = CampaignJournal::open(MemStorage::new(), "viruses.json").unwrap();
        let interrupted = search(&mut journal, Some(boundary), full_plan()).is_none();
        let mut storage = journal.into_storage();
        storage.crash();
        let mut journal = CampaignJournal::open(storage, "viruses.json").unwrap();
        let resumed = search(&mut journal, None, full_plan()).expect("resumed run finishes");
        let ctx = format!("boundary={boundary}");
        assert_search_identical(&resumed.result, &reference.result, &ctx);
        let replayed: Vec<_> = journal.campaign_incidents(&campaign).cloned().collect();
        assert_eq!(replayed, journaled, "{ctx}: journaled incidents replay");
        assert_eq!(journal.db().records(), clean.db().records(), "{ctx}");
        if !interrupted {
            break; // the budget outlived the search: every boundary covered
        }
    }
}
