//! Differential coverage for the prepared run-plan window kernel.
//!
//! The `RunPlan` fast path (DESIGN.md "Run-plan window kernel") is an
//! algebraic factoring of the reference per-cell retention loop, not an
//! approximation: for any contents, operating environment, activation
//! profile, and VRT nonce it must emit a *bit-identical* `WordEvent`
//! stream. These tests pin that equivalence from two directions:
//!
//! * a property test at the DIMM layer, randomising everything the plan
//!   partitions over (contents, temperature, voltage, refresh period,
//!   hammering profile, nonce);
//! * determinism tests at the server layer, checking that
//!   `evaluate_prepared` over a shared [`PreparedRun`] equals both
//!   `evaluate_run` and the retained reference path for every nonce.

use dstress_dram::geometry::RowKey;
use dstress_dram::{ActivationCounts, Dimm, DimmConfig, Location, OperatingEnv};
use dstress_platform::session::MemoryBus;
use dstress_platform::{RecordedRun, ServerConfig, XGene2Server};
use proptest::prelude::*;

/// A DIMM config with a weak-cell population small enough for hundreds of
/// property cases but still containing singles, pairs, and VRT cells.
fn small_dimm_config() -> DimmConfig {
    let mut config = DimmConfig::default();
    config.weak.singles_per_rank = 400;
    config.weak.pairs_per_rank = 16;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The planned kernel's event stream matches the reference loop for
    /// random contents, operating envs, activation profiles, and nonces.
    #[test]
    fn planned_events_match_reference_loop(
        seed in any::<u64>(),
        temp_c in 45.0f64..70.0,
        vdd_v in 1.35f64..1.55,
        trefp_s in 0.3f64..2.3,
        writes in proptest::collection::vec(
            (0u8..2, 0u8..8, 0u32..64, 0u32..1024, any::<u64>()),
            0..40,
        ),
        activations in proptest::collection::vec(
            (0u8..2, 0u8..8, 0u32..64, 1u64..60_000),
            0..12,
        ),
        nonce in any::<u64>(),
    ) {
        let mut dimm = Dimm::new(small_dimm_config(), seed);
        for &(rank, bank, row, col, value) in &writes {
            dimm.write_word(Location::new(rank, bank, row, col), value);
        }
        let mut acts = ActivationCounts::new();
        for &(rank, bank, row, count) in &activations {
            acts.add(RowKey::new(rank, bank, row), count);
        }
        let env = OperatingEnv { temp_c, vdd_v, trefp_s };
        let disturbance = dimm.disturbance_profile(&acts);
        let plan = dimm.prepare_run(&env, &disturbance).expect("prepare");
        let mut planned = Vec::new();
        for window in 0..4u64 {
            let window_nonce = nonce.wrapping_add(window);
            let reference =
                dimm.advance_window_profiled(&env, &disturbance, window_nonce);
            dimm.advance_window_planned(&plan, window_nonce, &mut planned)
                .expect("fresh plan");
            prop_assert_eq!(&planned, &reference);
        }
    }

    /// Re-preparing after a contents change tracks the reference loop: the
    /// plan is a pure function of (contents, env, disturbance), so a fresh
    /// plan over mutated contents must agree with the reference again.
    #[test]
    fn replanning_after_writes_matches_reference(
        seed in any::<u64>(),
        first in any::<u64>(),
        second in any::<u64>(),
        col in 0u32..1024,
        nonce in any::<u64>(),
    ) {
        let mut dimm = Dimm::new(small_dimm_config(), seed);
        let env = OperatingEnv::relaxed(60.0);
        let no_acts = dimm.disturbance_profile(&ActivationCounts::new());
        dimm.write_word(Location::new(0, 0, 0, col), first);
        let plan = dimm.prepare_run(&env, &no_acts).expect("prepare");
        let mut planned = Vec::new();
        dimm.advance_window_planned(&plan, nonce, &mut planned)
            .expect("fresh plan");
        prop_assert_eq!(
            &planned,
            &dimm.advance_window_profiled(&env, &no_acts, nonce)
        );
        // Mutate contents, rebuild, and the equivalence must hold again.
        dimm.write_word(Location::new(0, 0, 0, col), second);
        let replan = dimm.prepare_run(&env, &no_acts).expect("prepare");
        dimm.advance_window_planned(&replan, nonce, &mut planned)
            .expect("fresh plan");
        prop_assert_eq!(
            &planned,
            &dimm.advance_window_profiled(&env, &no_acts, nonce)
        );
    }
}

/// Builds a stressed server plus a recorded run that manifests errors:
/// relaxed refresh/voltage on the second domain, hot DIMMs, a worst-case
/// fill, and a few read passes for activation pressure.
fn stressed_server_and_run() -> (XGene2Server, RecordedRun) {
    let mut server = XGene2Server::new(ServerConfig::small());
    server.relax_second_domain();
    server.set_dimm_temperature(2, 60.0).unwrap();
    server.set_dimm_temperature(3, 60.0).unwrap();
    let mut session = server.session(2);
    let base = session.alloc(16 * 1024).expect("alloc");
    let values: Vec<u64> = (0..2048)
        .map(|i| {
            if i % 2 == 0 {
                0x3333_3333_3333_3333
            } else {
                0xCCCC_CCCC_CCCC_CCCC
            }
        })
        .collect();
    session.fill(base, &values).expect("fill");
    for _ in 0..3 {
        for w in 0..2048u64 {
            session.read_u64(base + w * 8).expect("read");
        }
    }
    let run = session.finish();
    (server, run)
}

/// `evaluate_prepared` over one shared `PreparedRun` equals `evaluate_run`
/// (which re-prepares per call) *and* the retained reference evaluator for
/// every nonce — the plan carries no per-nonce state.
#[test]
fn evaluate_prepared_equals_evaluate_run_for_all_nonces() {
    let (mut fast, run) = stressed_server_and_run();
    let mut per_call = fast.clone();
    let mut reference = fast.clone();
    let prepared = fast.prepare_run(&run).expect("prepare");
    let mut total_ce = 0u64;
    for nonce in 0..32u64 {
        let outcome = fast.evaluate_prepared(&prepared, nonce).expect("evaluate");
        assert_eq!(
            outcome,
            per_call.evaluate_run(&run, nonce).expect("evaluate"),
            "nonce {nonce}"
        );
        assert_eq!(
            outcome,
            reference.evaluate_run_reference(&run, nonce),
            "nonce {nonce}"
        );
        total_ce += outcome.totals.ce;
    }
    assert!(total_ce > 0, "stress setup must manifest errors");
}

/// `evaluate_runs` (plan built once, nonce incremented per repeat) equals a
/// loop of independent `evaluate_run` calls — plan reuse is invisible to
/// the paper's 10-run averaging workflow.
#[test]
fn evaluate_runs_equals_independent_evaluations() {
    let (mut batched, run) = stressed_server_and_run();
    let mut looped = batched.clone();
    let outcomes = batched.evaluate_runs(&run, 10, 7).expect("runs");
    assert_eq!(outcomes.len(), 10);
    for (r, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome,
            &looped.evaluate_run(&run, 7 + r as u64).expect("run"),
            "run {r}"
        );
    }
}

/// A cloned server replays the same outcomes — evaluation is a pure
/// function of (server state, run, nonce), which is what lets parallel GA
/// workers each own a replica.
#[test]
fn cloned_server_replays_identical_outcomes() {
    let (mut original, run) = stressed_server_and_run();
    let mut replica = original.clone();
    for nonce in [0u64, 1, 99, u64::MAX] {
        assert_eq!(
            original.evaluate_run(&run, nonce).expect("evaluate"),
            replica.evaluate_run(&run, nonce).expect("evaluate")
        );
    }
}
