//! Integration: the §VI use cases (margin discovery, power savings) and the
//! §III-F resume workflow.

use dstress::usecases::{find_marginal_trefp, savings_at_margin, SafetyCriterion};
use dstress::{DStress, EnvKind, ExperimentScale, WORST_WORD};
use dstress_dram::env::{MAX_TREFP_S, NOMINAL_TREFP_S};
use dstress_ga::{BitGenome, GaConfig, GaEngine, Genome, VirusDatabase, VirusRecord};
use dstress_vpl::BoundValue;
use std::collections::HashMap;

fn worst_chromosome() -> HashMap<String, BoundValue> {
    [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into()
}

#[test]
fn margins_shrink_with_temperature() {
    // Fig. 14: hotter DIMMs leave less refresh headroom.
    let dstress = DStress::new(ExperimentScale::quick(), 1);
    let chromosome = worst_chromosome();
    let mut previous = f64::INFINITY;
    for temp in [50.0, 60.0, 70.0] {
        let margin = find_marginal_trefp(
            &dstress,
            &EnvKind::Word64,
            &chromosome,
            temp,
            SafetyCriterion::NoErrors,
            8,
        )
        .expect("margin sweep");
        assert!(
            margin.marginal_trefp_s <= previous,
            "margin grew from {previous} to {} at {temp} C",
            margin.marginal_trefp_s
        );
        assert!(margin.marginal_trefp_s >= NOMINAL_TREFP_S);
        previous = margin.marginal_trefp_s;
    }
    assert!(
        previous < MAX_TREFP_S,
        "70 C cannot sustain the platform maximum"
    );
}

#[test]
fn ue_tolerant_margins_dominate_and_both_save_power() {
    let dstress = DStress::new(ExperimentScale::quick(), 2);
    let chromosome = worst_chromosome();
    let strict = find_marginal_trefp(
        &dstress,
        &EnvKind::Word64,
        &chromosome,
        60.0,
        SafetyCriterion::NoErrors,
        8,
    )
    .expect("margin sweep");
    let lenient = find_marginal_trefp(
        &dstress,
        &EnvKind::Word64,
        &chromosome,
        60.0,
        SafetyCriterion::NoUncorrectable,
        8,
    )
    .expect("margin sweep");
    assert!(lenient.marginal_trefp_s >= strict.marginal_trefp_s);
    let strict_savings = savings_at_margin(strict.marginal_trefp_s, 1.0e6);
    let lenient_savings = savings_at_margin(lenient.marginal_trefp_s, 1.0e6);
    assert!(strict_savings.dram_savings > 0.0);
    assert!(lenient_savings.dram_savings >= strict_savings.dram_savings);
    assert!(strict_savings.system_savings < strict_savings.dram_savings);
}

#[test]
fn margin_validation_under_benign_workloads() {
    // §VI: the paper validates margins by running ordinary benchmarks for
    // three weeks without a single error. Our analogue: at the discovered
    // no-error margin, both synthetic workloads run clean.
    let scale = ExperimentScale::quick();
    let dstress = DStress::new(scale, 3);
    let margin = find_marginal_trefp(
        &dstress,
        &EnvKind::Word64,
        &worst_chromosome(),
        60.0,
        SafetyCriterion::NoErrors,
        8,
    )
    .expect("margin sweep");
    for workload in [dstress::Workload::Kmeans, dstress::Workload::Memcached] {
        let mut server = dstress.server_at(60.0).unwrap();
        server.set_trefp(2, margin.marginal_trefp_s);
        server.set_trefp(3, margin.marginal_trefp_s);
        let run = workload.deploy(&mut server, 9).expect("deploys");
        let outcome = server.evaluate_run(&run, 17).expect("evaluate");
        let stressed: u64 = outcome
            .per_domain
            .iter()
            .filter(|d| d.mcu == 2)
            .map(|d| d.counts.visible())
            .sum();
        assert_eq!(
            stressed,
            0,
            "{} erred at the virus-validated margin {} s",
            workload.name(),
            margin.marginal_trefp_s
        );
    }
}

#[test]
fn interrupted_search_resumes_from_database() {
    // §III-F: record every virus; resume a new search from the best
    // discovered chromosomes.
    let mut db = VirusDatabase::new();
    // Phase 1: a short, interrupted search on a synthetic objective.
    let mut config = GaConfig::paper_defaults();
    config.population_size = 10;
    config.max_generations = 3;
    let mut engine = GaEngine::new(config, 4);
    let mut fitness = dstress_ga::FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
    let first = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
    for (g, f) in &first.leaderboard {
        db.record(VirusRecord {
            campaign: "resume-demo".into(),
            genes: g.to_words(),
            gene_len: g.len(),
            fitness: *f,
            ce: *f as u64,
            ue: 0,
            sequence: 0,
        });
    }
    // Phase 2: resume from the database's top records.
    let top: Vec<BitGenome> = db
        .top("resume-demo", 10)
        .iter()
        .map(|r| BitGenome::from_words(&r.genes, r.gene_len))
        .collect();
    assert_eq!(top.len(), 10);
    let mut config = GaConfig::paper_defaults();
    config.population_size = 10;
    config.max_generations = 40;
    let mut engine = GaEngine::new(config, 5);
    let resumed = engine.run_from(top, &mut fitness);
    assert!(
        resumed.best_fitness >= first.best_fitness,
        "resumed search ({}) must not regress below the recorded best ({})",
        resumed.best_fitness,
        first.best_fitness
    );
}

#[test]
fn trefp_grid_brackets_the_platform_range() {
    let grid = dstress::usecases::trefp_grid(12);
    assert_eq!(grid.len(), 12);
    assert!((grid[0] - NOMINAL_TREFP_S).abs() < 1e-12);
    assert!((grid[11] - MAX_TREFP_S).abs() < 1e-9);
}
