//! Chaos harness for `dstressd` fault-domain isolation.
//!
//! Two failure injectors, one contract. First, a storage-fault sweep: a
//! multi-tenant engine runs over a shared in-memory filesystem and a
//! single injected I/O fault is moved across every mutating operation of
//! the run (strided by default; set `DSTRESS_CHAOS_FULL=1` for the
//! exhaustive sweep). Whatever the fault hits, the engine must not
//! panic, at most one campaign may be quarantined (`failed`, with its
//! error on the status report), every untouched tenant's journal must
//! stay byte-identical to a solo run, and once the fault clears a
//! `resume` must recover the quarantined campaign to the same bytes.
//! Second, a daemon kill+restart: a watcher reconnects mid-campaign with
//! `from_seq` and must see no duplicate sequence number, with any events
//! that died with the old daemon's ring flagged by an explicit `Lagged`
//! marker rather than silently skipped.

use dstress::service::{
    CampaignSpec, DaemonConfig, Dstressd, Event, Request, Response, SeqEvent, ServiceEngine,
};
use dstress::{CampaignJournal, DStress, ExperimentScale, MemStorage, Metric, SharedStorage};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// CI pins 1 and 4 via `DSTRESS_WORKERS`; the isolation contract must
/// hold at every worker count.
fn workers() -> usize {
    std::env::var("DSTRESS_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(2)
}

fn quick_spec(seed: u64) -> CampaignSpec {
    CampaignSpec {
        scale: "quick".into(),
        seed,
        ..CampaignSpec::default()
    }
}

/// The reference bytes: a solo journaled run of this seed against a
/// private in-memory filesystem. Cached — the sweep compares against the
/// same seeds hundreds of times.
fn solo_ref(seed: u64) -> Vec<u8> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Vec<u8>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(bytes) = cache.lock().unwrap().get(&seed) {
        return bytes.clone();
    }
    let path = PathBuf::from(format!("solo-{seed}.db.json"));
    let mut journal = CampaignJournal::open(MemStorage::new(), &path).unwrap();
    let mut dstress = DStress::new(ExperimentScale::quick(), seed);
    dstress
        .search_word64_journaled(&mut journal, 60.0, Metric::CeAverage, false)
        .unwrap();
    let bytes = journal.into_storage().contents(&path).unwrap().to_vec();
    cache.lock().unwrap().insert(seed, bytes.clone());
    bytes
}

fn boot(storage: &SharedStorage<MemStorage>) -> ServiceEngine<SharedStorage<MemStorage>> {
    ServiceEngine::with_storage(storage.clone(), "daemon", workers(), 64).expect("engine boots")
}

fn snapshot(storage: &SharedStorage<MemStorage>, id: u64) -> Vec<u8> {
    let path = PathBuf::from("daemon").join(format!("c{id}.db.json"));
    storage
        .with(|s| s.contents(&path).map(<[u8]>::to_vec))
        .unwrap_or_else(|| panic!("missing snapshot for campaign {id}"))
}

/// Mutating-op count of one faultless multi-tenant run (counted from
/// after the submits): the sweep domain. Deterministic for fixed seeds
/// and worker count, so every sweep index lands on the same operation.
fn baseline_run_ops(seeds: &[u64]) -> u64 {
    static CACHE: OnceLock<Mutex<HashMap<Vec<u64>, u64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(&ops) = cache.lock().unwrap().get(seeds) {
        return ops;
    }
    let storage = SharedStorage::new(MemStorage::new());
    let mut engine = boot(&storage);
    for &seed in seeds {
        engine.submit(quick_spec(seed)).expect("submit");
    }
    let before = storage.with(|s| s.ops());
    engine.run_until_idle();
    let ops = storage.with(|s| s.ops()) - before;
    cache.lock().unwrap().insert(seeds.to_vec(), ops);
    ops
}

/// One chaos case: run `seeds` as co-tenants with the `fault_at`-th
/// mutating run operation failing, then check containment and recovery.
fn run_faulted(seeds: &[u64], fault_at: u64) {
    let storage = SharedStorage::new(MemStorage::new());
    let mut engine = boot(&storage);
    let ids: Vec<u64> = seeds
        .iter()
        .map(|&seed| engine.submit(quick_spec(seed)).expect("submit").0)
        .collect();
    storage.with(|s| s.fail_op(fault_at));
    // The fault must never panic or wedge the engine: it drains to idle.
    engine.run_until_idle();
    storage.with(|s| s.clear_faults());
    let mut failed = Vec::new();
    for (&id, &seed) in ids.iter().zip(seeds) {
        let report = engine.status(id).expect("status");
        match report.state.as_str() {
            "done" => assert_eq!(
                snapshot(&storage, id),
                solo_ref(seed),
                "untouched tenant {id} diverged under fault at op {fault_at}"
            ),
            "failed" => {
                let error = report.error.expect("a failed campaign reports its error");
                assert!(
                    error.contains("injected fault"),
                    "unexpected error: {error}"
                );
                failed.push((id, seed));
            }
            other => panic!("campaign {id} is `{other}` after fault at op {fault_at}"),
        }
    }
    assert!(
        failed.len() <= 1,
        "one fault quarantined {} campaigns (fault at op {fault_at})",
        failed.len()
    );
    for (id, seed) in failed {
        // A quarantined campaign cannot be paused...
        assert!(
            engine.set_paused(id, true).is_err(),
            "pausing quarantined campaign {id} was accepted"
        );
        // ...but a resume retries recovery, which succeeds now that the
        // fault is gone, and the result is bit-identical to a run that
        // never faulted.
        engine
            .set_paused(id, false)
            .expect("recovery after the fault cleared");
        engine.run_until_idle();
        let report = engine.status(id).expect("status");
        assert_eq!(
            report.state, "done",
            "campaign {id} did not recover from fault at op {fault_at}"
        );
        assert_eq!(
            snapshot(&storage, id),
            solo_ref(seed),
            "recovered campaign {id} diverged under fault at op {fault_at}"
        );
    }
}

#[test]
fn a_storage_fault_at_any_op_quarantines_at_most_one_tenant() {
    let seeds = [41, 42, 43];
    let run_ops = baseline_run_ops(&seeds);
    assert!(run_ops > 0, "the baseline run performed no storage ops");
    let full = std::env::var("DSTRESS_CHAOS_FULL").is_ok_and(|v| v == "1");
    let stride = if full { 1 } else { (run_ops / 16).max(1) };
    let mut fault_at = 0;
    while fault_at < run_ops {
        run_faulted(&seeds, fault_at);
        fault_at += stride;
    }
    // The final operation (the last settle's bookkeeping) is an edge the
    // stride can miss.
    if stride > 1 {
        run_faulted(&seeds, run_ops - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The containment contract is not special to three tenants or to
    /// hand-picked fault sites: any tenant count and any fault index
    /// spares the untouched campaigns and recovers the hit one.
    #[test]
    fn any_fault_index_spares_untouched_tenants(
        count in 2usize..=4,
        offset in any::<u64>(),
    ) {
        let seeds: Vec<u64> = (0..count as u64).map(|i| 60 + i).collect();
        let run_ops = baseline_run_ops(&seeds);
        prop_assume!(run_ops > 0);
        run_faulted(&seeds, offset % run_ops);
    }
}

// ---------------------------------------------------------------------
// Daemon kill+restart with a reconnecting watcher (real loopback TCP).
// ---------------------------------------------------------------------

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dstressd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_daemon(dir: &Path) -> Dstressd {
    Dstressd::start(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        dir: dir.to_path_buf(),
        workers: workers(),
        event_capacity: 256,
        ..DaemonConfig::default()
    })
    .expect("daemon boots")
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send(stream: &mut TcpStream, request: &Request) {
    let mut line = serde_json::to_string(request).expect("encode");
    line.push('\n');
    stream.write_all(line.as_bytes()).expect("send");
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("reply line");
    line
}

/// Accounting for one watch connection: every sequenced event lands in
/// `seqs` (duplicates assert), `missed` accumulates what `Lagged`
/// markers admit was dropped, and `completed` records the terminal
/// event.
struct WatchLog {
    seqs: BTreeSet<u64>,
    missed: u64,
    completed: bool,
}

impl WatchLog {
    fn new() -> Self {
        WatchLog {
            seqs: BTreeSet::new(),
            missed: 0,
            completed: false,
        }
    }

    fn last_seq(&self) -> u64 {
        self.seqs.iter().next_back().copied().unwrap_or(0)
    }
}

/// Opens a watch at `from_seq` and pumps events into `log`. Returns
/// when the stream settles (daemon end-of-stream marker), or — if
/// `stop_after` events arrive first — mid-stream, simulating a client
/// about to lose its daemon.
fn watch_into(addr: SocketAddr, campaign: u64, from_seq: u64, log: &mut WatchLog, stop_after: u64) {
    let (mut stream, mut reader) = connect(addr);
    send(&mut stream, &Request::Watch { campaign, from_seq });
    match serde_json::from_str::<Response>(&read_line(&mut reader)) {
        Ok(Response::Watching { .. }) => {}
        other => panic!("expected Watching, got {other:?}"),
    }
    let mut received = 0u64;
    loop {
        let line = read_line(&mut reader);
        let Ok(stamped) = serde_json::from_str::<SeqEvent>(&line) else {
            // The end-of-stream marker: the campaign settled.
            return;
        };
        if stamped.seq > 0 {
            assert!(
                stamped.seq >= from_seq,
                "daemon replayed seq {} below the requested cut {from_seq}",
                stamped.seq
            );
            assert!(
                log.seqs.insert(stamped.seq),
                "duplicate event seq {} across reconnects",
                stamped.seq
            );
        }
        match stamped.event {
            Event::Completed { .. } => log.completed = true,
            Event::Cancelled { .. } => panic!("campaign cancelled unexpectedly"),
            Event::Failed { error, .. } => panic!("campaign failed unexpectedly: {error}"),
            Event::Lagged { missed } => log.missed += missed,
            Event::Generation { .. } => {}
        }
        received += 1;
        if !log.completed && received >= stop_after {
            return;
        }
    }
}

#[test]
fn a_watcher_reconnects_across_a_daemon_kill_without_duplicates_or_silent_gaps() {
    let dir = temp_dir("kill-restart");
    let daemon = start_daemon(&dir);
    let (mut stream, mut reader) = connect(daemon.addr());
    send(
        &mut stream,
        &Request::Submit {
            spec: quick_spec(7),
        },
    );
    let campaign = match serde_json::from_str::<Response>(&read_line(&mut reader)) {
        Ok(Response::Submitted { campaign, .. }) => campaign,
        other => panic!("expected Submitted, got {other:?}"),
    };
    drop(stream);
    // Phase 1: watch from the beginning, then abandon the stream after a
    // couple of events and kill the daemon mid-campaign.
    let mut log = WatchLog::new();
    watch_into(daemon.addr(), campaign, 0, &mut log, 2);
    daemon.shutdown().expect("mid-run shutdown");
    // Phase 2: a fresh daemon over the same directory resumes the
    // campaign; the watcher reconnects asking for exactly the events it
    // has not seen.
    if !log.completed {
        let daemon = start_daemon(&dir);
        watch_into(
            daemon.addr(),
            campaign,
            log.last_seq() + 1,
            &mut log,
            u64::MAX,
        );
        daemon.shutdown().expect("clean shutdown");
    }
    assert!(log.completed, "the watcher never saw the Completed event");
    // No silent gaps: every sequence number up to the last is either an
    // event the watcher received or one a Lagged marker owned up to
    // (events that died with the killed daemon's in-memory ring).
    let last = log.last_seq();
    assert!(last >= 2, "campaign produced almost no events");
    assert_eq!(
        log.seqs.len() as u64 + log.missed,
        last,
        "event stream has unaccounted gaps: got {:?} with {} flagged as lagged",
        log.seqs,
        log.missed
    );
    let _ = std::fs::remove_dir_all(&dir);
}
