//! Fault injection over the campaign journal: fail every single storage
//! operation (append, fsync, snapshot write, rename, remove) of a full
//! journaled campaign, crash, recover, and resume — no schedule may lose an
//! acknowledged record or change the search outcome. Plus a property test
//! for torn journal tails: recovery keeps exactly the acked prefix.

use dstress_ga::{
    run_journaled, BitGenome, CampaignJournal, Fitness, GaConfig, Genome, MemStorage,
    ParallelFitness, SearchResult, SupervisionPolicy, VirusRecord,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use std::path::Path;

/// A pure, replicable popcount fitness.
struct Popcount;

impl Fitness<BitGenome> for Popcount {
    fn evaluate(&mut self, genome: &BitGenome) -> f64 {
        genome.count_ones() as f64
    }
}

impl ParallelFitness<BitGenome> for Popcount {
    fn replicate(&self) -> Self {
        Popcount
    }
}

fn ga_config() -> GaConfig {
    let mut config = GaConfig::paper_defaults();
    config.population_size = 10;
    config.max_generations = 6;
    config.stagnation_window = 3;
    config
}

fn popcount_record(genome: &BitGenome, value: f64) -> VirusRecord {
    VirusRecord {
        campaign: "pop".into(),
        genes: genome.to_words(),
        gene_len: genome.len(),
        fitness: value,
        ce: value.max(0.0) as u64,
        ue: 0,
        sequence: 0,
    }
}

fn drive(
    journal: &mut CampaignJournal<MemStorage>,
) -> std::io::Result<Option<SearchResult<BitGenome>>> {
    run_journaled(
        journal,
        "pop",
        ga_config(),
        11,
        |rng: &mut StdRng| BitGenome::random(rng, 24),
        &mut Popcount,
        1,
        popcount_record,
        None,
        SupervisionPolicy::default(),
        None,
    )
}

#[test]
fn no_single_fault_schedule_loses_an_acknowledged_record() {
    // Reference: a clean campaign, and the number of storage operations it
    // performs — the space of injection points.
    let mut clean = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
    let reference = drive(&mut clean).unwrap().expect("clean run finishes");
    let total_ops = clean.storage_mut().ops();
    assert!(total_ops > 20, "the campaign must exercise the journal");

    for fail_at in 0..total_ops {
        // Fresh campaign with exactly one failing operation.
        let mut storage = MemStorage::new();
        storage.fail_op(fail_at);
        let mut journal = CampaignJournal::open(storage, "db.json").unwrap();
        let outcome = drive(&mut journal);
        assert!(
            outcome.is_err(),
            "schedule {fail_at}: the injected fault must surface"
        );
        // Power loss after the failure: unsynced bytes vanish. Then the
        // process restarts, recovers, and resumes the campaign.
        let mut storage = journal.into_storage();
        storage.clear_faults();
        storage.crash();
        let mut journal = CampaignJournal::open(storage, "db.json")
            .unwrap_or_else(|e| panic!("schedule {fail_at}: recovery failed: {e}"));
        let resumed = drive(&mut journal)
            .unwrap_or_else(|e| panic!("schedule {fail_at}: resume failed: {e}"))
            .expect("resumed run finishes");
        // The search outcome and the full record stream — values *and*
        // sequence numbers — are those of the uninterrupted run.
        assert_eq!(resumed.best, reference.best, "schedule {fail_at}");
        assert_eq!(resumed.best_fitness, reference.best_fitness);
        assert_eq!(resumed.leaderboard, reference.leaderboard);
        assert_eq!(resumed.history, reference.history);
        assert_eq!(
            journal.db().records(),
            clean.db().records(),
            "schedule {fail_at}: acknowledged records must survive exactly once"
        );
        assert!(journal.checkpoint().is_none());
    }
}

fn test_record(i: u64) -> VirusRecord {
    VirusRecord {
        campaign: "torn".into(),
        genes: vec![i, i.wrapping_mul(0x9E37_79B9_7F4A_7C15)],
        gene_len: 128,
        fitness: i as f64 * 1.5,
        ce: i,
        ue: 0,
        sequence: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ack `n` records, then crash while a further append is in flight,
    /// leaving an arbitrary prefix of its bytes on the medium. Recovery
    /// must keep every acked record (the unsynced line may round up to one
    /// extra record only if it happened to land completely), and
    /// compaction + reopen must roundtrip the recovered state.
    #[test]
    fn torn_tail_recovery_keeps_every_acked_record(n in 1usize..12, cut in 0usize..256) {
        let mut journal = CampaignJournal::open(MemStorage::new(), "db.json").unwrap();
        for i in 0..n {
            journal.append_record(test_record(i as u64)).unwrap();
        }
        let acked = journal.db().clone();
        // The (n+1)-th append reaches the file but its fsync never runs.
        journal.storage_mut().fail_op(1);
        prop_assert!(journal.append_record(test_record(n as u64)).is_err());
        let mut storage = journal.into_storage();
        storage.clear_faults();
        storage.crash_with_tail(cut);

        let recovered = CampaignJournal::open(storage, "db.json").unwrap();
        let records = recovered.db().records().to_vec();
        prop_assert!(
            records.len() == n || records.len() == n + 1,
            "recovered {} of {n} acked records",
            records.len()
        );
        prop_assert_eq!(&records[..n], acked.records());

        // Recovery already compacted any torn tail; a second recovery from
        // a fresh crash sees the identical state.
        let mut storage = recovered.into_storage();
        storage.crash();
        let again = CampaignJournal::open(storage, "db.json").unwrap();
        prop_assert_eq!(again.db().records(), records.as_slice());
        // Appends keep working on the recovered journal.
        let mut journal = again;
        journal.append_record(test_record(99)).unwrap();
        let path = Path::new("db.json");
        prop_assert_eq!(journal.path(), path);
    }
}
