//! Differential property tests: the tree-walking [`Interpreter`] is the
//! reference oracle for the bytecode [`Vm`]. Randomly generated VPL
//! programs — covering `for` loops, `if`/`else`, compound assignment,
//! array indexing, and malloc'd pointers — must produce bit-identical
//! observable behaviour on both tiers: the same `Result` (stats or
//! error, including `ExecutionLimit` and out-of-bounds), the same bus
//! memory image, and the same recorded DRAM trace.

use dstress_platform::session::{SessionError, VirtAddr};
use dstress_platform::{MemoryBus, ServerConfig, XGene2Server};
use dstress_vpl::parser::parse_program;
use dstress_vpl::{compile, compile_opt, ExecLimits, Interpreter, PassConfig, Vm};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Flat in-memory bus with full state equality, mirroring the unit-test
/// mock inside the `vpl` crate: bump allocation from 0x1000, 8-byte
/// alignment checks, zero-default loads.
#[derive(Debug, Default, PartialEq)]
struct MirrorBus {
    memory: HashMap<u64, u64>,
    cursor: u64,
    reads: u64,
    writes: u64,
}

impl MemoryBus for MirrorBus {
    fn alloc(&mut self, bytes: u64) -> Result<VirtAddr, SessionError> {
        if bytes == 0 {
            return Err(SessionError::ZeroAllocation);
        }
        let base = self.cursor + 0x1000;
        self.cursor = base + bytes.div_ceil(8) * 8;
        Ok(base)
    }

    fn read_u64(&mut self, addr: VirtAddr) -> Result<u64, SessionError> {
        if !addr.is_multiple_of(8) {
            return Err(SessionError::Unaligned(addr));
        }
        self.reads += 1;
        Ok(self.memory.get(&addr).copied().unwrap_or(0))
    }

    fn write_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), SessionError> {
        if !addr.is_multiple_of(8) {
            return Err(SessionError::Unaligned(addr));
        }
        self.writes += 1;
        self.memory.insert(addr, value);
        Ok(())
    }
}

/// Seeded random VPL source generator. Every emitted program parses; the
/// interesting divergence surface is runtime behaviour — loop budgets,
/// out-of-bounds indices, division by zero — which the generator reaches
/// by construction (small arrays, unclamped index arithmetic, random
/// divisors).
struct Gen {
    rng: StdRng,
    /// Declared arrays (name, words) usable as index bases.
    arrays: Vec<(String, u64)>,
    /// Declared scalar variables usable in expressions.
    scalars: Vec<String>,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            arrays: Vec::new(),
            scalars: Vec::new(),
        }
    }

    fn leaf(&mut self) -> String {
        if !self.scalars.is_empty() && self.rng.gen_range(0u32..3) > 0 {
            let i = self.rng.gen_range(0..self.scalars.len());
            self.scalars[i].clone()
        } else {
            format!("{}", self.rng.gen_range(0u64..10))
        }
    }

    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 {
            return self.leaf();
        }
        match self.rng.gen_range(0u32..10) {
            0..=2 => self.leaf(),
            3 if !self.arrays.is_empty() => {
                let i = self.rng.gen_range(0..self.arrays.len());
                let base = self.arrays[i].0.clone();
                let idx = self.index_expr(depth - 1, self.arrays[i].1);
                format!("{base}[{idx}]")
            }
            4 => {
                let inner = self.expr(depth - 1);
                let op = ["!", "-"][self.rng.gen_range(0usize..2)];
                format!("{op}({inner})")
            }
            _ => {
                let ops = [
                    "+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^", "==", "!=", "<", ">", "<=",
                    ">=", "&&", "||",
                ];
                let op = ops[self.rng.gen_range(0usize..ops.len())];
                let l = self.expr(depth - 1);
                let r = self.expr(depth - 1);
                format!("({l} {op} {r})")
            }
        }
    }

    /// An index expression for an array of `words` elements: usually in
    /// range, sometimes arbitrary arithmetic (which may or may not land in
    /// bounds), sometimes guaranteed out of bounds.
    fn index_expr(&mut self, depth: u32, words: u64) -> String {
        match self.rng.gen_range(0u32..8) {
            0..=4 => format!("{}", self.rng.gen_range(0..words)),
            5 | 6 => self.expr(depth),
            _ => format!("{}", words + self.rng.gen_range(0u64..3)),
        }
    }

    fn lvalue(&mut self, depth: u32) -> String {
        if !self.arrays.is_empty() && self.rng.gen_range(0u32..3) > 0 {
            let i = self.rng.gen_range(0..self.arrays.len());
            let base = self.arrays[i].0.clone();
            let idx = self.index_expr(depth, self.arrays[i].1);
            format!("{base}[{idx}]")
        } else if !self.scalars.is_empty() {
            let i = self.rng.gen_range(0..self.scalars.len());
            self.scalars[i].clone()
        } else {
            // Both pools empty cannot happen (locals are always emitted),
            // but keep the generator total.
            "0".to_string()
        }
    }

    /// A counted loop with a random (possibly nonzero) start: starts at or
    /// past the bound produce zero-trip loops, small spans are unroll
    /// candidates, larger ones exercise the back edge.
    fn for_loop(&mut self, depth: u32) -> String {
        let var = ["i", "j"][self.rng.gen_range(0usize..2)];
        let start = self.rng.gen_range(0u64..5);
        let bound = self.rng.gen_range(0u64..7);
        let body = self.block(depth - 1);
        format!("for ({var} = {start}; {var} < {bound}; {var} += 1) {{ {body} }}")
    }

    fn stmt(&mut self, depth: u32) -> String {
        match self.rng.gen_range(0u32..14) {
            0..=3 => {
                let lv = self.lvalue(1);
                let op = ["=", "+=", "-=", "*=", "/="][self.rng.gen_range(0usize..5)];
                let value = self.expr(2);
                format!("{lv} {op} {value};")
            }
            4 => {
                let lv = self.lvalue(1);
                let op = ["++", "--"][self.rng.gen_range(0usize..2)];
                format!("{lv}{op};")
            }
            5 | 6 if depth > 0 => {
                let cond = self.expr(2);
                let then = self.block(depth - 1);
                if self.rng.gen_range(0u32..2) == 0 {
                    format!("if ({cond}) {{ {then} }}")
                } else {
                    let els = self.block(depth - 1);
                    format!("if ({cond}) {{ {then} }} else {{ {els} }}")
                }
            }
            7 | 8 if depth > 0 => self.for_loop(depth),
            // Guaranteed nesting: an outer `i` loop around an inner `j`
            // loop, regardless of what the depth-driven recursion rolls.
            9 if depth > 1 => {
                let outer_bound = self.rng.gen_range(1u64..4);
                let inner = self.for_loop(depth - 1);
                format!("for (i = 0; i < {outer_bound}; i += 1) {{ {inner} }}")
            }
            // Aliasing stores: two writes into the same array through
            // different index expressions (which may collide), with a read
            // of a third index in between — a trap for any pass that
            // assumes distinct syntactic indices are distinct cells.
            10 if !self.arrays.is_empty() => {
                let k = self.rng.gen_range(0..self.arrays.len());
                let (base, words) = self.arrays[k].clone();
                let i1 = self.index_expr(1, words);
                let i2 = self.index_expr(1, words);
                let i3 = self.index_expr(1, words);
                let v = self.expr(1);
                format!("{base}[{i1}] = {v}; {base}[{i2}] += {base}[{i3}];")
            }
            // A loop-carried dependence: a scalar accumulator folded over
            // the induction variable and an expression — the accumulator's
            // value flows around the back edge, so it must never be hoisted
            // or dropped.
            11 | 12 if depth > 0 && !self.scalars.is_empty() => {
                let s = self.rng.gen_range(0..self.scalars.len());
                let acc = self.scalars[s].clone();
                let var = ["i", "j"][self.rng.gen_range(0usize..2)];
                let start = self.rng.gen_range(0u64..3);
                let bound = self.rng.gen_range(0u64..6);
                let k = self.rng.gen_range(1u64..9);
                let extra = self.expr(1);
                format!(
                    "for ({var} = {start}; {var} < {bound}; {var} += 1) \
                     {{ {acc} += {var} * {k} + {extra}; }}"
                )
            }
            _ => {
                let lv = self.lvalue(1);
                format!("{lv} = {};", self.expr(1))
            }
        }
    }

    fn block(&mut self, depth: u32) -> String {
        let n = self.rng.gen_range(1usize..4);
        (0..n)
            .map(|_| self.stmt(depth))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Emits one complete random program as (global, local, body) source.
    fn program(&mut self) -> (String, String, String) {
        let mut global = String::new();
        for k in 0..self.rng.gen_range(1usize..3) {
            let words = self.rng.gen_range(1u64..6);
            let init: Vec<String> = (0..words)
                .map(|_| format!("{:#x}", self.rng.gen_range(0u64..=u64::MAX)))
                .collect();
            global.push_str(&format!(
                "volatile unsigned long long g{k}[] = {{ {} }};\n",
                init.join(", ")
            ));
            self.arrays.push((format!("g{k}"), words));
        }
        if self.rng.gen_range(0u32..2) == 0 {
            global.push_str(&format!(
                "volatile unsigned long long gs = {};\n",
                self.rng.gen_range(0u64..100)
            ));
            self.scalars.push("gs".to_string());
        }
        let local = format!(
            "int i = 0; int j = 0; unsigned long long a = {}; unsigned long long b = {};",
            self.rng.gen_range(0u64..50),
            self.rng.gen_range(0u64..50)
        );
        for name in ["i", "j", "a", "b"] {
            self.scalars.push(name.to_string());
        }
        let mut body = String::new();
        if self.rng.gen_range(0u32..2) == 0 {
            let words = self.rng.gen_range(1u64..8);
            body.push_str(&format!("unsigned long long p = malloc({});\n", words * 8));
            self.arrays.push(("p".to_string(), words));
        }
        let n = self.rng.gen_range(2usize..6);
        for _ in 0..n {
            body.push_str(&self.stmt(2));
            body.push('\n');
        }
        (global, local, body)
    }
}

/// The pass configurations the differential suite sweeps. CI pins the two
/// extremes explicitly: `DSTRESS_VPL_PASSES=off` runs the unoptimized
/// backend only, `on` the full pipeline only; unset sweeps both plus every
/// pass alone.
fn pass_configs() -> Vec<PassConfig> {
    match std::env::var("DSTRESS_VPL_PASSES").as_deref() {
        Ok("off") => vec![PassConfig::none()],
        Ok("on") => vec![PassConfig::all()],
        _ => vec![
            PassConfig::none(),
            PassConfig {
                licm: true,
                ..PassConfig::none()
            },
            PassConfig {
                strength: true,
                ..PassConfig::none()
            },
            PassConfig {
                dse: true,
                ..PassConfig::none()
            },
            PassConfig {
                unroll: true,
                ..PassConfig::none()
            },
            PassConfig::all(),
        ],
    }
}

/// Runs one generated program through both tiers on mirrored buses — the
/// VM once per swept pass configuration — and asserts the full observable
/// state matches.
fn assert_mirror_parity(seed: u64, limits: ExecLimits) -> Result<(), TestCaseError> {
    let (global, local, body) = Gen::new(seed).program();
    let program = parse_program(&global, &local, &body)
        .unwrap_or_else(|e| panic!("generated program must parse ({e}):\n{body}"));
    let mut ibus = MirrorBus::default();
    let iresult = Interpreter::new(limits).run(&program, &mut ibus);
    for config in pass_configs() {
        let mut vbus = MirrorBus::default();
        let vresult =
            compile_opt(&program, &config).and_then(|c| Vm::new(limits).run(&c, &mut vbus));
        prop_assert_eq!(
            &iresult,
            &vresult,
            "result mismatch (seed {}, max_steps {}, {:?}):\n{}",
            seed,
            limits.max_steps,
            config,
            body
        );
        prop_assert_eq!(
            &ibus,
            &vbus,
            "bus state mismatch (seed {}, max_steps {}, {:?}):\n{}",
            seed,
            limits.max_steps,
            config,
            body
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generated programs — loops, branches, compound assigns, array and
    /// pointer indexing — behave identically under a generous budget.
    /// Runtime errors (out-of-bounds indices, division by zero) arise by
    /// construction and must carry identical error values.
    #[test]
    fn generated_programs_agree(seed in any::<u64>()) {
        let limits = ExecLimits { max_steps: 100_000 };
        assert_mirror_parity(seed, limits)?;
    }

    /// Tight budgets: every possible `ExecutionLimit` crossing point must
    /// be hit identically — same error, same partial bus state. Budgets
    /// below the program's step count land mid-loop, mid-branch, and
    /// mid-statement across seeds.
    #[test]
    fn generated_programs_agree_under_tight_budgets(
        seed in any::<u64>(),
        max_steps in 0u64..300,
    ) {
        assert_mirror_parity(seed, ExecLimits { max_steps })?;
    }
}

/// Out-of-bounds error parity, pinned (not left to generator luck): the
/// index, the array name, and the word count in the error must match.
#[test]
fn out_of_bounds_errors_match_exactly() {
    for (body, idx) in [
        ("a = g0[7];", 7u64),
        ("g0[3 + 4] = 1;", 7),
        ("g0[2 * 5] += 3;", 10),
        ("g0[4]++;", 4),
    ] {
        let program = parse_program(
            "volatile unsigned long long g0[] = { 1, 2, 3 };",
            "unsigned long long a = 0;",
            body,
        )
        .expect("parses");
        let limits = ExecLimits::default();
        let mut ibus = MirrorBus::default();
        let ierr = Interpreter::new(limits)
            .run(&program, &mut ibus)
            .unwrap_err();
        let mut vbus = MirrorBus::default();
        let verr = compile(&program)
            .and_then(|c| Vm::new(limits).run(&c, &mut vbus))
            .unwrap_err();
        assert_eq!(ierr, verr, "OOB error mismatch for `{body}`");
        assert!(
            format!("{ierr}").contains(&format!("index {idx} out of bounds")),
            "unexpected message: {ierr}"
        );
        assert_eq!(ibus, vbus);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end trace parity through the real platform: the same
    /// generated program run against identically configured servers —
    /// one via the interpreter, one per swept pass configuration via the
    /// compiled VM — must record the exact same DRAM trace and session
    /// stats (the trace feeds the replay model, so any divergence here
    /// changes manifested errors).
    #[test]
    fn session_traces_are_bit_identical(seed in any::<u64>()) {
        let (global, local, body) = Gen::new(seed).program();
        let program = parse_program(&global, &local, &body).expect("generated program parses");
        let limits = ExecLimits { max_steps: 100_000 };

        let mut iserver = XGene2Server::new(ServerConfig::default());
        let mut isession = iserver.session(2);
        let iresult = Interpreter::new(limits).run(&program, &mut isession);
        let itrace = isession.finish();

        for config in pass_configs() {
            let mut vserver = XGene2Server::new(ServerConfig::default());
            let mut vsession = vserver.session(2);
            let vresult =
                compile_opt(&program, &config).and_then(|c| Vm::new(limits).run(&c, &mut vsession));
            let vtrace = vsession.finish();

            prop_assert_eq!(
                &iresult, &vresult,
                "session result mismatch (seed {}, {:?}):\n{}", seed, config, body
            );
            prop_assert_eq!(
                &itrace, &vtrace,
                "recorded trace mismatch (seed {}, {:?}):\n{}", seed, config, body
            );
        }
    }
}
