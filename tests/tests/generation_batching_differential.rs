//! Differential tests for the population-batched generation evaluation
//! path: batching (chromosome dedup, shared plan/profile caches, the
//! lane-packed VRT window kernel, the VM's bulk-fill fast path) is a pure
//! optimization, so every score must be bit-identical to the uncached
//! per-candidate reference oracle — for any worker count, any cache state,
//! and under hazard schedules. Also pins the regression behaviour of the
//! three bugfixes that rode along: typed stale-plan errors, exact index
//! narrowing, and the bounded evaluation cache.

use std::collections::HashMap;

use dstress::templates;
use dstress::{DStress, DStressError, ExperimentScale, Hazard, HazardPlan, Metric, VirusEvaluator};
use dstress_platform::{MemoryBus, XGene2Server};
use dstress_vpl::BoundValue;
use proptest::prelude::*;

/// A word64 evaluator on a quick-scale server heated to `temp_c`.
fn evaluator(temp_c: f64) -> VirusEvaluator {
    let scale = ExperimentScale::quick();
    let mut server = XGene2Server::new(scale.server);
    server.relax_second_domain();
    server.set_dimm_temperature(2, temp_c).unwrap();
    let template = templates::process(templates::WORD64, &scale).unwrap();
    let mem_words = scale.dimm_words();
    let env: HashMap<String, BoundValue> = [
        ("MEM_BYTES".to_string(), BoundValue::Scalar(mem_words * 8)),
        ("MEM_WORDS".to_string(), BoundValue::Scalar(mem_words)),
    ]
    .into_iter()
    .collect();
    VirusEvaluator::new(server, template, env, Metric::CeAverage, 3, 2)
}

fn chromosome(pattern: u64) -> HashMap<String, BoundValue> {
    [("PATTERN".to_string(), BoundValue::Scalar(pattern))].into()
}

/// Scores `patterns` through the batched generation entry point, asserting
/// that no slot faulted.
fn batched_scores(eval: &mut VirusEvaluator, patterns: &[u64]) -> Vec<f64> {
    let chromosomes: Vec<_> = patterns.iter().map(|&p| chromosome(p)).collect();
    eval.evaluate_generation(&chromosomes)
        .into_iter()
        .map(|r| {
            r.expect("quick-scale word64 candidates never fault")
                .fitness
        })
        .collect()
}

#[test]
fn batched_generations_match_the_uncached_reference_oracle() {
    // Two generations through one evaluator: the second round hits warm
    // plan and profile caches for the repeated patterns and cold paths for
    // the fresh ones — exactly the mixed cache state a real search sees.
    let round1: Vec<u64> = vec![
        0x3333_3333_3333_3333,
        0xCCCC_CCCC_CCCC_CCCC,
        0x3333_3333_3333_3333, // repeat within the generation
        0x0000_0000_0000_0000,
    ];
    let round2: Vec<u64> = vec![
        0xCCCC_CCCC_CCCC_CCCC, // warm from round 1
        0x5A5A_5A5A_5A5A_5A5A, // cold
        0x3333_3333_3333_7333, // cold
        0x3333_3333_3333_3333, // warm
    ];
    for temp_c in [60.0, 70.0] {
        let mut batched = evaluator(temp_c);
        let got1 = batched_scores(&mut batched, &round1);
        let got2 = batched_scores(&mut batched, &round2);
        // The oracle re-instantiates, re-executes and re-plans every
        // candidate from scratch on a fresh evaluator — no caches anywhere.
        for (&pattern, &got) in round1.iter().zip(&got1).chain(round2.iter().zip(&got2)) {
            let expected = evaluator(temp_c)
                .evaluate_bindings_reference(chromosome(pattern))
                .unwrap()
                .fitness;
            assert_eq!(
                got.to_bits(),
                expected.to_bits(),
                "pattern {pattern:#018x} at {temp_c} °C"
            );
        }
    }
}

#[test]
fn cache_state_never_leaks_into_batched_scores() {
    // Clearing the shared plan/profile caches mid-campaign (as a thermal
    // sweep would) must not change a single bit of any later score.
    let patterns: Vec<u64> = vec![0x3333_3333_3333_3333, 0xCCCC_CCCC_CCCC_CCCC];
    let mut warm = evaluator(60.0);
    let before = batched_scores(&mut warm, &patterns);
    warm.server_mut().clear_eval_caches();
    let after = batched_scores(&mut warm, &patterns);
    let before_bits: Vec<u64> = before.iter().map(|f| f.to_bits()).collect();
    let after_bits: Vec<u64> = after.iter().map(|f| f.to_bits()).collect();
    assert_eq!(before_bits, after_bits);
}

#[test]
fn batched_campaign_is_bit_identical_across_worker_counts() {
    // The full word64 search at 1, 2 and 8 workers: the batched evaluation
    // path must keep every worker count on the same trajectory, and the
    // bounded evaluation cache must report the same (bounded) size.
    let run = |workers: usize| {
        let mut dstress = DStress::new(ExperimentScale::quick(), 42);
        dstress.set_workers(workers);
        dstress
            .search_word64(60.0, Metric::CeAverage, false)
            .expect("campaign runs")
            .result
    };
    let reference = run(1);
    assert!(
        reference.eval_stats.cache_size <= 1024,
        "the evaluation cache is bounded"
    );
    assert!(reference.eval_stats.cache_size > 0);
    // CI pins 1 and 4 via DSTRESS_WORKERS; the sweep widens without a
    // recompile.
    let mut counts = vec![2usize, 8];
    if let Some(extra) = std::env::var("DSTRESS_WORKERS")
        .ok()
        .and_then(|w| w.parse::<usize>().ok())
    {
        counts.push(extra.max(1));
    }
    for workers in counts {
        let other = run(workers);
        assert_eq!(
            other.leaderboard, reference.leaderboard,
            "workers={workers}"
        );
        assert_eq!(other.best, reference.best);
        assert_eq!(
            other.best_fitness.to_bits(),
            reference.best_fitness.to_bits()
        );
        assert_eq!(other.history, reference.history);
        assert_eq!(
            other.eval_stats.evaluations,
            reference.eval_stats.evaluations
        );
        assert_eq!(other.eval_stats.cache_hits, reference.eval_stats.cache_hits);
        assert_eq!(other.eval_stats.cache_size, reference.eval_stats.cache_size);
    }
}

#[test]
fn hazard_schedules_ride_the_batched_path_unchanged() {
    // Supervision hazards interleave retries and redeals with batched
    // rounds; the surviving scores must still match the clean campaign.
    let run = |plan: Option<HazardPlan>| {
        let mut dstress = DStress::new(ExperimentScale::quick(), 42);
        dstress.set_workers(2);
        dstress.set_hazard_plan(plan);
        dstress
            .search_word64(60.0, Metric::CeAverage, false)
            .expect("hazards never abort the campaign")
            .result
    };
    let clean = run(None);
    let plan = HazardPlan::new();
    plan.schedule(2, Hazard::Transient);
    plan.schedule(5, Hazard::KillWorker);
    let hazarded = run(Some(plan));
    assert_eq!(hazarded.best, clean.best);
    assert_eq!(hazarded.leaderboard, clean.leaderboard);
    assert_eq!(hazarded.history, clean.history);
}

#[test]
fn stale_plan_misuse_stays_a_typed_error_through_the_stack() {
    // Regression for the stale-plan panic: a plan evaluated against
    // superseded DIMM contents must surface as a typed, permanent,
    // non-retryable error at every layer, never a panic.
    let scale = ExperimentScale::quick();
    let mut server = XGene2Server::new(scale.server);
    server.relax_second_domain();
    server.set_dimm_temperature(2, 60.0).unwrap();
    let mut session = server.session(2);
    let base = session.alloc(64 * 8).unwrap();
    for i in 0..64u64 {
        session
            .write_u64(base + i * 8, 0x3333_3333_3333_3333)
            .unwrap();
    }
    let run = session.finish();
    let prepared = server.prepare_run(&run).unwrap();
    // Supersede the contents the plan was built against.
    let mut session = server.session(2);
    let other = session.alloc(64).unwrap();
    session.write_u64(other, 0xFFFF_FFFF_FFFF_FFFF).unwrap();
    drop(session.finish());
    let err = server
        .evaluate_prepared(&prepared, 1)
        .expect_err("superseded contents must be rejected");
    assert!(matches!(err, dstress_dram::PlanError::Stale { .. }));
    let wrapped: DStressError = err.into();
    assert!(wrapped.to_string().contains("stale RunPlan"));
    assert!(matches!(wrapped, DStressError::Plan(_)));
}

#[test]
fn plan_index_overflow_reports_the_offending_dimension() {
    // Regression for the silent `as u32` truncation: overflow is now a
    // typed error naming the dimension and the value that overflowed.
    let err = dstress_dram::PlanError::IndexOverflow {
        what: "weak-cell word index",
        value: u32::MAX as usize + 1,
    };
    let msg = err.to_string();
    assert!(msg.contains("weak-cell word index"), "{msg}");
    assert!(msg.contains("4294967296"), "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any population of word64 patterns (repeats and all), at any of the
    /// campaign operating points, scores bit-identically through the
    /// batched generation path and the uncached per-candidate oracle.
    #[test]
    fn batched_generation_equals_oracle_for_random_populations(
        patterns in proptest::collection::vec(any::<u64>(), 1..5),
        temp_idx in 0usize..3,
    ) {
        let temp_c = [45.0, 60.0, 70.0][temp_idx];
        let mut batched = evaluator(temp_c);
        let got = batched_scores(&mut batched, &patterns);
        let mut oracle = evaluator(temp_c);
        for (&pattern, &score) in patterns.iter().zip(&got) {
            let expected = oracle
                .evaluate_bindings_reference(chromosome(pattern))
                .unwrap()
                .fitness;
            prop_assert_eq!(score.to_bits(), expected.to_bits());
        }
    }
}
