//! Injectable logical fault models (paper §II "DRAM errors", §VII).
//!
//! The MARCH/MATS literature classifies DRAM faults the tests are designed
//! to detect: stuck-at faults, transition faults, and coupling faults
//! between an aggressor and a victim cell. The retention physics of
//! [`crate::Dimm`] covers the *pattern-sensitive leakage* class the paper
//! targets; this module adds the classic *logical* fault classes as
//! injectable defects so the MARCH comparison can show both sides — MARCH
//! detects stuck-at/coupling faults, but only the synthesized viruses
//! expose the pattern-sensitive population.

use crate::geometry::Location;
use serde::{Deserialize, Serialize};

/// A logical (hard) fault on one cell or cell pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicalFault {
    /// The cell always reads the given value, whatever was written.
    StuckAt {
        /// The affected word.
        loc: Location,
        /// Bit within the word.
        bit: u8,
        /// The stuck value.
        value: bool,
    },
    /// The cell cannot perform one of its transitions: a write of `to`
    /// is ignored when the cell currently holds `!to` (transition fault).
    Transition {
        /// The affected word.
        loc: Location,
        /// Bit within the word.
        bit: u8,
        /// The transition target that fails (e.g. `true` = the 0→1 write
        /// fails).
        to: bool,
    },
    /// Idempotent coupling fault (CFid): a write that causes a transition
    /// to `trigger` on the aggressor bit forces the victim bit to
    /// `victim_value`.
    Coupling {
        /// The aggressor word.
        aggressor: Location,
        /// Aggressor bit.
        aggressor_bit: u8,
        /// Aggressor transition target that triggers the fault.
        trigger: bool,
        /// The victim word (may differ from the aggressor's word).
        victim: Location,
        /// Victim bit.
        victim_bit: u8,
        /// The value forced onto the victim.
        victim_value: bool,
    },
}

impl LogicalFault {
    /// The word whose *reads* this fault corrupts.
    pub fn read_target(&self) -> Option<Location> {
        match self {
            LogicalFault::StuckAt { loc, .. } => Some(*loc),
            _ => None,
        }
    }

    /// Applies the fault to a value being read from `loc`.
    pub fn apply_on_read(&self, loc: Location, value: u64) -> u64 {
        match self {
            LogicalFault::StuckAt {
                loc: fault_loc,
                bit,
                value: stuck,
            } if *fault_loc == loc => {
                if *stuck {
                    value | (1 << bit)
                } else {
                    value & !(1 << bit)
                }
            }
            _ => value,
        }
    }

    /// Transforms a write of `new` over `old` at `loc`, returning the value
    /// actually stored (transition faults) — coupling side effects are
    /// handled separately by [`FaultSet::coupling_side_effects`].
    pub fn apply_on_write(&self, loc: Location, old: u64, new: u64) -> u64 {
        match self {
            LogicalFault::Transition {
                loc: fault_loc,
                bit,
                to,
            } if *fault_loc == loc => {
                let mask = 1u64 << bit;
                let old_bit = old & mask != 0;
                let new_bit = new & mask != 0;
                if new_bit == *to && old_bit != *to {
                    // The transition fails: the bit keeps its old value.
                    (new & !mask) | (old & mask)
                } else {
                    new
                }
            }
            _ => new,
        }
    }
}

/// A collection of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSet {
    faults: Vec<LogicalFault>,
}

impl FaultSet {
    /// An empty (healthy) fault set.
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// Injects a fault.
    pub fn inject(&mut self, fault: LogicalFault) {
        self.faults.push(fault);
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether no faults are injected.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies all read faults to a value read from `loc`.
    pub fn apply_on_read(&self, loc: Location, mut value: u64) -> u64 {
        for f in &self.faults {
            value = f.apply_on_read(loc, value);
        }
        value
    }

    /// Applies all write-transforming faults, returning the stored value.
    pub fn apply_on_write(&self, loc: Location, old: u64, mut new: u64) -> u64 {
        for f in &self.faults {
            new = f.apply_on_write(loc, old, new);
        }
        new
    }

    /// Coupling side effects of a write at `loc` transitioning `old → new`:
    /// returns `(victim location, victim bit, forced value)` for every
    /// triggered coupling fault.
    pub fn coupling_side_effects(
        &self,
        loc: Location,
        old: u64,
        new: u64,
    ) -> Vec<(Location, u8, bool)> {
        let mut out = Vec::new();
        for f in &self.faults {
            if let LogicalFault::Coupling {
                aggressor,
                aggressor_bit,
                trigger,
                victim,
                victim_bit,
                victim_value,
            } = f
            {
                if *aggressor != loc {
                    continue;
                }
                let mask = 1u64 << aggressor_bit;
                let old_bit = old & mask != 0;
                let new_bit = new & mask != 0;
                if old_bit != new_bit && new_bit == *trigger {
                    out.push((*victim, *victim_bit, *victim_value));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(col: u32) -> Location {
        Location::new(0, 0, 0, col)
    }

    #[test]
    fn stuck_at_forces_reads() {
        let f = LogicalFault::StuckAt {
            loc: loc(3),
            bit: 5,
            value: true,
        };
        assert_eq!(f.apply_on_read(loc(3), 0), 1 << 5);
        assert_eq!(f.apply_on_read(loc(3), u64::MAX), u64::MAX);
        // Other words unaffected.
        assert_eq!(f.apply_on_read(loc(4), 0), 0);
        let f0 = LogicalFault::StuckAt {
            loc: loc(3),
            bit: 5,
            value: false,
        };
        assert_eq!(f0.apply_on_read(loc(3), u64::MAX), !(1u64 << 5));
    }

    #[test]
    fn transition_fault_blocks_one_direction() {
        // 0 -> 1 transition fails.
        let f = LogicalFault::Transition {
            loc: loc(1),
            bit: 0,
            to: true,
        };
        assert_eq!(
            f.apply_on_write(loc(1), 0b0, 0b1),
            0b0,
            "up-transition must fail"
        );
        assert_eq!(
            f.apply_on_write(loc(1), 0b1, 0b0),
            0b0,
            "down-transition works"
        );
        assert_eq!(
            f.apply_on_write(loc(1), 0b1, 0b1),
            0b1,
            "no transition, no effect"
        );
        assert_eq!(
            f.apply_on_write(loc(2), 0b0, 0b1),
            0b1,
            "other words unaffected"
        );
    }

    #[test]
    fn coupling_triggers_on_the_right_transition() {
        let mut set = FaultSet::new();
        set.inject(LogicalFault::Coupling {
            aggressor: loc(0),
            aggressor_bit: 2,
            trigger: true,
            victim: loc(9),
            victim_bit: 7,
            victim_value: false,
        });
        // 0->1 on aggressor bit 2 triggers.
        let effects = set.coupling_side_effects(loc(0), 0b000, 0b100);
        assert_eq!(effects, vec![(loc(9), 7, false)]);
        // 1->0 does not.
        assert!(set.coupling_side_effects(loc(0), 0b100, 0b000).is_empty());
        // No transition does not.
        assert!(set.coupling_side_effects(loc(0), 0b100, 0b100).is_empty());
        // Other aggressor words do not.
        assert!(set.coupling_side_effects(loc(5), 0b000, 0b100).is_empty());
    }

    #[test]
    fn fault_set_composes() {
        let mut set = FaultSet::new();
        set.inject(LogicalFault::StuckAt {
            loc: loc(0),
            bit: 0,
            value: true,
        });
        set.inject(LogicalFault::StuckAt {
            loc: loc(0),
            bit: 1,
            value: false,
        });
        assert_eq!(set.apply_on_read(loc(0), 0b10), 0b01);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }
}
