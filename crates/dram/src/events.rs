//! Fault events reported by the device model.

use crate::geometry::Location;
use serde::{Deserialize, Serialize};

/// One 64-bit word whose stored bits leaked during a refresh window.
///
/// The platform layer pushes each event through the SECDED decoder
/// (`dstress-ecc`) to classify it as a CE, UE or SDC — exactly what the real
/// memory controller would observe on the next scrub of the word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WordEvent {
    /// The affected word.
    pub loc: Location,
    /// The value that was written (ground truth).
    pub written: u64,
    /// Mask of data bits that flipped this window.
    pub flip_mask: u64,
}

impl WordEvent {
    /// Number of flipped bits.
    pub fn flipped_bits(&self) -> u32 {
        self.flip_mask.count_ones()
    }

    /// The corrupted value as stored in the array.
    pub fn corrupted(&self) -> u64 {
        self.written ^ self.flip_mask
    }
}

impl std::fmt::Display for WordEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} bit(s) flipped (mask {:#018x})",
            self.loc,
            self.flipped_bits(),
            self.flip_mask
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_accounting() {
        let e = WordEvent {
            loc: Location::new(0, 1, 2, 3),
            written: 0b1100,
            flip_mask: 0b0110,
        };
        assert_eq!(e.flipped_bits(), 2);
        assert_eq!(e.corrupted(), 0b1010);
    }

    #[test]
    fn display_mentions_location_and_count() {
        let e = WordEvent {
            loc: Location::new(0, 0, 0, 0),
            written: 0,
            flip_mask: 1,
        };
        let s = e.to_string();
        assert!(s.contains("rank0/bank0/row0/col0"));
        assert!(s.contains("1 bit(s)"));
    }
}
