//! Operating conditions of a memory domain.

use serde::{Deserialize, Serialize};

/// Nominal DDR3 refresh period (paper §II: 64 ms).
pub const NOMINAL_TREFP_S: f64 = 0.064;
/// Maximum refresh period allowed by the X-Gene 2 platform (paper §IV:
/// 2.283 s, 35× the nominal).
pub const MAX_TREFP_S: f64 = 2.283;
/// Nominal DDR3 supply voltage (paper §IV: 1.5 V).
pub const NOMINAL_VDD_V: f64 = 1.5;
/// Minimum supply voltage the paper's vendor specifies (1.425 V; the paper
/// operates at 1.428 V).
pub const MIN_VDD_V: f64 = 1.425;

/// The operating point of one memory domain: temperature, supply voltage and
/// refresh period (paper §II "DRAM operating parameters").
///
/// # Examples
///
/// ```
/// use dstress_dram::OperatingEnv;
///
/// let env = OperatingEnv::relaxed(60.0);
/// assert_eq!(env.trefp_s, 2.283);
/// assert_eq!(env.vdd_v, 1.428);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingEnv {
    /// DIMM temperature in °C.
    pub temp_c: f64,
    /// Supply voltage in volts.
    pub vdd_v: f64,
    /// Refresh period in seconds.
    pub trefp_s: f64,
}

impl OperatingEnv {
    /// Nominal operating parameters (64 ms refresh, 1.5 V) at the given
    /// temperature.
    pub fn nominal(temp_c: f64) -> Self {
        OperatingEnv {
            temp_c,
            vdd_v: NOMINAL_VDD_V,
            trefp_s: NOMINAL_TREFP_S,
        }
    }

    /// The paper's relaxed stress point: maximum refresh period (2.283 s)
    /// and lowered supply voltage (1.428 V) at the given temperature
    /// (§V "DRAM parameters and Temperature").
    pub fn relaxed(temp_c: f64) -> Self {
        OperatingEnv {
            temp_c,
            vdd_v: 1.428,
            trefp_s: MAX_TREFP_S,
        }
    }

    /// Returns a copy with a different refresh period (for margin sweeps,
    /// Fig. 14).
    #[must_use]
    pub fn with_trefp(mut self, trefp_s: f64) -> Self {
        self.trefp_s = trefp_s;
        self
    }

    /// Returns a copy with a different temperature.
    #[must_use]
    pub fn with_temp(mut self, temp_c: f64) -> Self {
        self.temp_c = temp_c;
        self
    }

    /// Validates physical plausibility of the operating point.
    pub fn validate(&self) -> Result<(), EnvError> {
        if !(self.temp_c.is_finite() && (-50.0..=150.0).contains(&self.temp_c)) {
            return Err(EnvError::Temperature(self.temp_c));
        }
        if !(self.vdd_v.is_finite() && self.vdd_v > 0.0) {
            return Err(EnvError::Voltage(self.vdd_v));
        }
        if !(self.trefp_s.is_finite() && self.trefp_s > 0.0) {
            return Err(EnvError::Refresh(self.trefp_s));
        }
        Ok(())
    }
}

/// Error validating an [`OperatingEnv`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EnvError {
    /// Temperature outside the modelled range.
    Temperature(f64),
    /// Non-positive or non-finite supply voltage.
    Voltage(f64),
    /// Non-positive or non-finite refresh period.
    Refresh(f64),
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::Temperature(t) => write!(f, "temperature {t} °C outside modelled range"),
            EnvError::Voltage(v) => write!(f, "supply voltage {v} V must be positive"),
            EnvError::Refresh(t) => write!(f, "refresh period {t} s must be positive"),
        }
    }
}

impl std::error::Error for EnvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_and_relaxed_constructors() {
        let n = OperatingEnv::nominal(50.0);
        assert_eq!(n.trefp_s, NOMINAL_TREFP_S);
        assert_eq!(n.vdd_v, NOMINAL_VDD_V);
        let r = OperatingEnv::relaxed(50.0);
        assert_eq!(r.trefp_s, MAX_TREFP_S);
        assert!((r.vdd_v - 1.428).abs() < 1e-12);
    }

    #[test]
    fn with_helpers_replace_fields() {
        let e = OperatingEnv::nominal(50.0).with_trefp(1.0).with_temp(62.0);
        assert_eq!(e.trefp_s, 1.0);
        assert_eq!(e.temp_c, 62.0);
        assert_eq!(e.vdd_v, NOMINAL_VDD_V);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(OperatingEnv::nominal(55.0).validate().is_ok());
        assert!(matches!(
            OperatingEnv {
                temp_c: f64::NAN,
                vdd_v: 1.5,
                trefp_s: 0.064
            }
            .validate(),
            Err(EnvError::Temperature(_))
        ));
        assert!(matches!(
            OperatingEnv {
                temp_c: 50.0,
                vdd_v: 0.0,
                trefp_s: 0.064
            }
            .validate(),
            Err(EnvError::Voltage(_))
        ));
        assert!(matches!(
            OperatingEnv {
                temp_c: 50.0,
                vdd_v: 1.5,
                trefp_s: -1.0
            }
            .validate(),
            Err(EnvError::Refresh(_))
        ));
    }

    #[test]
    fn max_trefp_is_35x_nominal() {
        // Paper §IV: "2.283 s (35x more than the nominal 64 ms)".
        assert!((MAX_TREFP_S / NOMINAL_TREFP_S - 35.67).abs() < 0.1);
    }
}
