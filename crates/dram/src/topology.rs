//! The hidden internal design of a DIMM.
//!
//! Vendors never disclose the cell-array layout (paper §II): which cells are
//! true-cells vs anti-cells, which rows are scrambled, and which columns were
//! remapped to redundant columns. This module models exactly those three
//! mechanisms. The topology is *internal* to the device simulation — the
//! framework layers above never query it, mirroring the paper's "no
//! knowledge of DRAM internals" premise.
//!
//! The default layout repeats `true, true, anti, anti` along the bitlines —
//! the design the paper infers from its `1100` worst-case result ("such a
//! sub-pattern will increase the probability of DRAM failures in the designs
//! where cells are organized in the following order: true-cell, true-cell,
//! anti-cell, anti-cell", §V-A.1).

use crate::geometry::{DimmGeometry, RowKey};
use serde::{Deserialize, Serialize};

/// The polarity of a DRAM cell (paper §II).
///
/// A *true-cell* stores logic `1` in the charged state; an *anti-cell*
/// stores logic `0` in the charged state. Retention errors discharge a cell,
/// so true-cells fail `1 → 0` and anti-cells fail `0 → 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Charged state stores logic `1`.
    True,
    /// Charged state stores logic `0`.
    Anti,
}

impl CellKind {
    /// Whether a cell of this kind holding `value` is in the charged state
    /// (and can therefore leak).
    pub fn charged(self, value: bool) -> bool {
        match self {
            CellKind::True => value,
            CellKind::Anti => !value,
        }
    }

    /// The logic value this cell presents after losing its charge.
    pub fn discharged_value(self) -> bool {
        match self {
            CellKind::True => false,
            CellKind::Anti => true,
        }
    }
}

/// Configuration of the hidden topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Fraction of rows whose intra-row column order is scrambled.
    pub scrambled_row_fraction: f64,
    /// XOR mask applied to physical bit positions of scrambled rows (a
    /// self-inverse column permutation). The default, `0b10`, swaps columns
    /// two apart — the paper's Fig. 1a example ("the right neighbor … is a
    /// cell from the third column").
    pub scramble_mask: u32,
    /// Number of word-column swap pairs remapped per bank (faulty columns
    /// steered to redundant columns, Fig. 1a).
    pub remapped_pairs_per_bank: u32,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            scrambled_row_fraction: 0.10,
            scramble_mask: 0b10,
            remapped_pairs_per_bank: 2,
        }
    }
}

/// The hidden internal design of one DIMM: cell polarity layout, per-row
/// scrambling and per-bank column remapping.
///
/// All mappings are deterministic functions of the DIMM seed, so a device is
/// perfectly reproducible, and all are self-inverse, so physical→logical and
/// logical→physical share one code path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    geometry: DimmGeometry,
    config: TopologyConfig,
    seed: u64,
}

impl Topology {
    /// Builds the hidden topology of a DIMM from its seed.
    pub fn new(geometry: DimmGeometry, config: TopologyConfig, seed: u64) -> Self {
        Topology {
            geometry,
            config,
            seed,
        }
    }

    /// The geometry this topology covers.
    pub fn geometry(&self) -> DimmGeometry {
        self.geometry
    }

    /// Whether a row's column order is scrambled.
    pub fn is_scrambled(&self, row: RowKey) -> bool {
        let h = splitmix64(
            self.seed
                ^ 0x5C3A_11ED_u64
                ^ ((row.rank as u64) << 48)
                ^ ((row.bank as u64) << 40)
                ^ row.row as u64,
        );
        (h as f64 / u64::MAX as f64) < self.config.scrambled_row_fraction
    }

    /// Word-column remapping for a bank (self-inverse swap of word columns).
    fn remap_word_col(&self, rank: u8, bank: u8, col: u32) -> u32 {
        let words = self.geometry.words_per_row() as u64;
        for pair in 0..self.config.remapped_pairs_per_bank {
            let h = splitmix64(
                self.seed
                    ^ 0x00C0_FFEE_D00D_u64
                    ^ ((rank as u64) << 32)
                    ^ ((bank as u64) << 24)
                    ^ pair as u64,
            );
            let a = (h % words) as u32;
            let b = ((h >> 32) % words) as u32;
            if a != b {
                if col == a {
                    return b;
                }
                if col == b {
                    return a;
                }
            }
        }
        col
    }

    /// Maps a logical bit position within a row (word column × 64 + bit) to
    /// the *physical* bitline position, applying column remapping and
    /// row scrambling. The mapping is a self-inverse bijection.
    pub fn physical_bit(&self, row: RowKey, logical_bit: u32) -> u32 {
        debug_assert!((logical_bit as usize) < self.geometry.bits_per_row());
        let word = logical_bit / 64;
        let bit = logical_bit % 64;
        let word = self.remap_word_col(row.rank, row.bank, word);
        let pos = word * 64 + bit;
        if self.is_scrambled(row) {
            pos ^ self.config.scramble_mask
        } else {
            pos
        }
    }

    /// Inverse of [`Self::physical_bit`]. Because both remapping and
    /// scrambling are self-inverse, this is the same transformation.
    pub fn logical_bit(&self, row: RowKey, physical_bit: u32) -> u32 {
        // Scramble first (inverse order of application), then un-remap; both
        // steps are involutions so the composition below is the true inverse.
        let pos = if self.is_scrambled(row) {
            physical_bit ^ self.config.scramble_mask
        } else {
            physical_bit
        };
        let word = pos / 64;
        let bit = pos % 64;
        let word = self.remap_word_col(row.rank, row.bank, word);
        word * 64 + bit
    }

    /// The polarity of the cell at a *physical* bitline position: the layout
    /// repeats `T T A A` along the bitlines.
    pub fn kind_at_physical(&self, physical_bit: u32) -> CellKind {
        if physical_bit % 4 < 2 {
            CellKind::True
        } else {
            CellKind::Anti
        }
    }

    /// Convenience: the polarity of the cell storing a *logical* bit of a
    /// row.
    pub fn kind_at_logical(&self, row: RowKey, logical_bit: u32) -> CellKind {
        self.kind_at_physical(self.physical_bit(row, logical_bit))
    }

    /// The physical bitline neighbours of a physical position (left, right),
    /// clipped at the row boundary.
    pub fn physical_neighbours(&self, physical_bit: u32) -> (Option<u32>, Option<u32>) {
        let last = self.geometry.bits_per_row() as u32 - 1;
        let left = physical_bit.checked_sub(1);
        let right = if physical_bit < last {
            Some(physical_bit + 1)
        } else {
            None
        };
        (left, right)
    }
}

/// SplitMix64 — a tiny, high-quality mixing function used to derive all
/// hidden per-row/per-bank decisions from the DIMM seed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn topo(seed: u64) -> Topology {
        Topology::new(DimmGeometry::default(), TopologyConfig::default(), seed)
    }

    #[test]
    fn cell_kind_charge_logic() {
        assert!(CellKind::True.charged(true));
        assert!(!CellKind::True.charged(false));
        assert!(CellKind::Anti.charged(false));
        assert!(!CellKind::Anti.charged(true));
        assert!(!CellKind::True.discharged_value());
        assert!(CellKind::Anti.discharged_value());
    }

    #[test]
    fn ttaa_layout_repeats_every_four_bitlines() {
        let t = topo(1);
        for p in (0..256).step_by(4) {
            assert_eq!(t.kind_at_physical(p), CellKind::True);
            assert_eq!(t.kind_at_physical(p + 1), CellKind::True);
            assert_eq!(t.kind_at_physical(p + 2), CellKind::Anti);
            assert_eq!(t.kind_at_physical(p + 3), CellKind::Anti);
        }
    }

    #[test]
    fn scrambled_fraction_is_roughly_configured() {
        let t = topo(7);
        let geo = t.geometry();
        let mut scrambled = 0usize;
        let mut total = 0usize;
        for rank in 0..geo.ranks {
            for bank in 0..geo.banks {
                for row in 0..geo.rows_per_bank {
                    total += 1;
                    if t.is_scrambled(RowKey::new(rank, bank, row)) {
                        scrambled += 1;
                    }
                }
            }
        }
        let frac = scrambled as f64 / total as f64;
        assert!((0.10..0.40).contains(&frac), "scrambled fraction {frac}");
    }

    #[test]
    fn scrambling_changes_adjacency_as_in_fig_1a() {
        // Find a scrambled row; with mask 0b10 the physical successor of the
        // first cell is logical column 3 ("a cell from the third column").
        let t = topo(3);
        let row = (0..64)
            .map(|r| RowKey::new(0, 0, r))
            .find(|r| t.is_scrambled(*r))
            .expect("some row should be scrambled");
        // Physical position of logical bit 0 in a scrambled row is 0 ^ 2 = 2;
        // the cell at physical position 1 is logical bit 3.
        assert_eq!(t.physical_bit(row, 0), 2);
        assert_eq!(t.logical_bit(row, 1), 3);
    }

    #[test]
    fn unscrambled_rows_are_identity_modulo_remap() {
        let t = Topology::new(
            DimmGeometry::default(),
            TopologyConfig {
                remapped_pairs_per_bank: 0,
                ..TopologyConfig::default()
            },
            9,
        );
        let row = (0..64)
            .map(|r| RowKey::new(0, 1, r))
            .find(|r| !t.is_scrambled(*r))
            .expect("some row should be unscrambled");
        for bit in [0u32, 5, 64, 1000] {
            assert_eq!(t.physical_bit(row, bit), bit);
        }
    }

    #[test]
    fn physical_neighbours_clip_at_row_edges() {
        let t = topo(5);
        assert_eq!(t.physical_neighbours(0), (None, Some(1)));
        let last = t.geometry().bits_per_row() as u32 - 1;
        assert_eq!(t.physical_neighbours(last), (Some(last - 1), None));
        assert_eq!(t.physical_neighbours(10), (Some(9), Some(11)));
    }

    #[test]
    fn topology_is_deterministic_per_seed() {
        let a = topo(77);
        let b = topo(77);
        let c = topo(78);
        let row = RowKey::new(1, 3, 11);
        assert_eq!(a.physical_bit(row, 123), b.physical_bit(row, 123));
        // Different seeds should differ somewhere.
        let differs = (0..64).any(|r| {
            let k = RowKey::new(0, 0, r);
            a.is_scrambled(k) != c.is_scrambled(k)
        });
        assert!(differs, "seeds 77 and 78 produced identical scrambling");
    }

    proptest! {
        #[test]
        fn physical_logical_roundtrip(seed in any::<u64>(), rank in 0u8..2, bank in 0u8..8,
                                      row in 0u32..64, bit in 0u32..65536) {
            let t = topo(seed);
            let key = RowKey::new(rank, bank, row);
            let phys = t.physical_bit(key, bit);
            prop_assert!(phys < t.geometry().bits_per_row() as u32);
            prop_assert_eq!(t.logical_bit(key, phys), bit);
        }

        #[test]
        fn mapping_is_injective(seed in any::<u64>(), row in 0u32..64,
                                a in 0u32..65536, b in 0u32..65536) {
            let t = topo(seed);
            let key = RowKey::new(0, 0, row);
            if a != b {
                prop_assert_ne!(t.physical_bit(key, a), t.physical_bit(key, b));
            }
        }
    }
}
