//! Prepared run plans: the window-evaluation fast path.
//!
//! For a fixed (contents, operating point, disturbance profile), a weak
//! cell's flip decision `effective_retention < trefp` involves no per-window
//! quantity except the VRT state — everything else is invariant across the
//! refresh windows of a run. A [`RunPlan`] is built once per run (see
//! [`crate::Dimm::prepare_run`]) and partitions the weak-cell population
//! into three classes:
//!
//! * **statically failing** — cells that flip in every window. Whole words
//!   of them become pre-built [`WordEvent`]s (`written` captured at plan
//!   time; contents do not change during a run), emitted verbatim each
//!   window;
//! * **statically safe** — cells that can never flip this run. They are
//!   dropped from the plan entirely and cost nothing per window;
//! * **VRT-contingent** — variable-retention-time cells whose flip decision
//!   differs between the degraded and the healthy state. Only these need
//!   per-window work: one deterministic Bernoulli draw
//!   ([`crate::weak::vrt_degraded`]) and a mask-OR.
//!
//! The per-window cost therefore collapses from "retention physics for
//! every weak cell" to "copy the static events + a hash per VRT cell" —
//! and the VRT-contingent subset is tiny (most VRT cells are statically
//! safe or statically failing in *both* states at any given operating
//! point). Results are bit-identical to the naive loop
//! ([`crate::Dimm::advance_window_profiled`], kept as the reference oracle)
//! because the plan evaluates the exact same floating-point expressions at
//! build time.
//!
//! The VRT-contingent cells are stored structure-of-arrays style
//! ([`RunPlan::bit_masks`] / [`RunPlan::bit_indices`] et al.) with per-word
//! ranges, mirroring the flattened cell cache inside [`crate::Dimm`].

use crate::events::WordEvent;
use crate::geometry::Location;
use crate::weak::vrt_degraded;

/// One weak word with at least one VRT-contingent cell: its static base
/// flip mask plus the range of contingent bits in the plan's flat arrays.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VrtWord {
    /// Pre-built static events to emit before this word (events and VRT
    /// words interleave in population order; prefix counts preserve it).
    pub(crate) statics_before: u32,
    /// The word these cells live in.
    pub(crate) loc: Location,
    /// Contents of the word, captured at plan-build time.
    pub(crate) written: u64,
    /// Flip mask of the word's statically-failing cells.
    pub(crate) base_mask: u64,
    /// Start of this word's contingent bits in the flat arrays.
    pub(crate) bits_start: u32,
    /// One past the end of this word's contingent bits.
    pub(crate) bits_end: u32,
}

/// A prepared evaluation plan for one DIMM and one run
/// (contents × operating point × disturbance profile).
///
/// Build with [`crate::Dimm::prepare_run`], evaluate windows with
/// [`crate::Dimm::advance_window_planned`]. The plan is tied to the
/// contents generation it was built against; writing to the DIMM
/// invalidates it (enforced by an assertion at evaluation time).
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Contents generation the plan was built against.
    pub(crate) generation: u64,
    /// Per-window probability of the degraded VRT state.
    pub(crate) vrt_degraded_prob: f64,
    /// Pre-built events for words whose flip mask is window-invariant,
    /// in population (word) order.
    pub(crate) static_events: Vec<WordEvent>,
    /// Words with VRT-contingent cells, in population order.
    pub(crate) vrt_words: Vec<VrtWord>,
    /// Flat per-contingent-cell bit masks (`1 << bit`).
    pub(crate) bit_masks: Vec<u64>,
    /// Flat per-contingent-cell VRT indices (the Bernoulli draw's key).
    pub(crate) bit_indices: Vec<u32>,
    /// Flat per-contingent-cell flip polarity: whether the cell flips in
    /// the *degraded* state (the common case; `false` covers a
    /// `vrt_degraded_mult > 1` configuration where degradation lengthens
    /// retention).
    pub(crate) bit_flip_when_degraded: Vec<bool>,
}

impl RunPlan {
    /// Number of pre-built (window-invariant) word events.
    pub fn static_words(&self) -> usize {
        self.static_events.len()
    }

    /// Number of words carrying at least one VRT-contingent cell.
    pub fn vrt_words(&self) -> usize {
        self.vrt_words.len()
    }

    /// Number of VRT-contingent cells — the only cells doing per-window
    /// work.
    pub fn vrt_cells(&self) -> usize {
        self.bit_masks.len()
    }

    /// The contents generation this plan was built against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Evaluates one refresh window into `out` (cleared first; callers
    /// reuse the buffer across windows). `seed` is the owning DIMM's device
    /// seed and `nonce` identifies the (run, window) pair, exactly as in
    /// [`crate::Dimm::advance_window`].
    pub(crate) fn advance_window(&self, seed: u64, nonce: u64, out: &mut Vec<WordEvent>) {
        out.clear();
        let mut emitted = 0usize;
        for word in &self.vrt_words {
            let upto = emitted + word.statics_before as usize;
            out.extend_from_slice(&self.static_events[emitted..upto]);
            emitted = upto;
            let mut mask = word.base_mask;
            for i in word.bits_start as usize..word.bits_end as usize {
                let degraded =
                    vrt_degraded(seed, nonce, self.bit_indices[i], self.vrt_degraded_prob);
                if degraded == self.bit_flip_when_degraded[i] {
                    mask |= self.bit_masks[i];
                }
            }
            if mask != 0 {
                out.push(WordEvent {
                    loc: word.loc,
                    written: word.written,
                    flip_mask: mask,
                });
            }
        }
        out.extend_from_slice(&self.static_events[emitted..]);
    }
}
