//! Prepared run plans: the window-evaluation fast path.
//!
//! For a fixed (contents, operating point, disturbance profile), a weak
//! cell's flip decision `effective_retention < trefp` involves no per-window
//! quantity except the VRT state — everything else is invariant across the
//! refresh windows of a run. A [`RunPlan`] is built once per run (see
//! [`crate::Dimm::prepare_run`]) and partitions the weak-cell population
//! into three classes:
//!
//! * **statically failing** — cells that flip in every window. Whole words
//!   of them become pre-built [`WordEvent`]s (`written` captured at plan
//!   time; contents do not change during a run), emitted verbatim each
//!   window;
//! * **statically safe** — cells that can never flip this run. They are
//!   dropped from the plan entirely and cost nothing per window;
//! * **VRT-contingent** — variable-retention-time cells whose flip decision
//!   differs between the degraded and the healthy state. Only these need
//!   per-window work: one deterministic Bernoulli draw
//!   ([`crate::weak::vrt_degraded`]) and a mask-OR.
//!
//! The per-window cost therefore collapses from "retention physics for
//! every weak cell" to "copy the static events + a hash per VRT cell" —
//! and the VRT-contingent subset is tiny (most VRT cells are statically
//! safe or statically failing in *both* states at any given operating
//! point). Results are bit-identical to the naive loop
//! ([`crate::Dimm::advance_window_profiled`], kept as the reference oracle)
//! because the plan evaluates the exact same floating-point expressions at
//! build time.
//!
//! The VRT-contingent cells are stored structure-of-arrays style
//! ([`RunPlan::bit_masks`] / [`RunPlan::bit_indices`] et al.) with per-word
//! ranges, mirroring the flattened cell cache inside [`crate::Dimm`].

use crate::events::WordEvent;
use crate::geometry::Location;
use crate::weak::vrt_degraded;

/// Errors from building or evaluating a [`RunPlan`].
///
/// Every variant is a *programming* error in the calling layer (a plan used
/// after the contents it was built against changed, or a weak-cell
/// population too large for the plan's index width) — never a property of
/// the candidate being evaluated. Callers surfacing this into a fitness
/// fault must classify it as permanent/non-retryable so a supervisor does
/// not retry and quarantine an innocent chromosome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The DIMM contents changed since the plan was built; the plan bakes
    /// in per-cell charge state and written words, so it must be rebuilt
    /// after any write.
    Stale {
        /// Contents generation the plan was built against.
        built: u64,
        /// Current contents generation of the DIMM.
        current: u64,
    },
    /// A flat-array index in the plan under construction does not fit the
    /// plan's `u32` index width (a weak-cell population beyond 2^32 cells).
    IndexOverflow {
        /// Which counter overflowed (`"bits_start"`, `"bits_end"`,
        /// `"statics_before"`).
        what: &'static str,
        /// The value that did not fit.
        value: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Stale { built, current } => write!(
                f,
                "stale RunPlan: built against contents generation {built}, \
                 contents are now at generation {current}"
            ),
            PlanError::IndexOverflow { what, value } => write!(
                f,
                "run plan index overflow: {what} = {value} does not fit u32 \
                 (weak-cell population too large for the plan layout)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Maximum number of evaluation lanes one [`RunPlan::advance_window_vrt_lanes`]
/// call can serve: one bit of a `u64` lane mask per candidate-run.
pub const MAX_LANES: usize = 64;

/// One weak word with at least one VRT-contingent cell: its static base
/// flip mask plus the range of contingent bits in the plan's flat arrays.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VrtWord {
    /// Pre-built static events to emit before this word (events and VRT
    /// words interleave in population order; prefix counts preserve it).
    pub(crate) statics_before: u32,
    /// The word these cells live in.
    pub(crate) loc: Location,
    /// Contents of the word, captured at plan-build time.
    pub(crate) written: u64,
    /// Flip mask of the word's statically-failing cells.
    pub(crate) base_mask: u64,
    /// Start of this word's contingent bits in the flat arrays.
    pub(crate) bits_start: u32,
    /// One past the end of this word's contingent bits.
    pub(crate) bits_end: u32,
}

/// A prepared evaluation plan for one DIMM and one run
/// (contents × operating point × disturbance profile).
///
/// Build with [`crate::Dimm::prepare_run`], evaluate windows with
/// [`crate::Dimm::advance_window_planned`]. The plan is tied to the
/// contents generation it was built against; writing to the DIMM
/// invalidates it (enforced by an assertion at evaluation time).
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Contents generation the plan was built against.
    pub(crate) generation: u64,
    /// Per-window probability of the degraded VRT state.
    pub(crate) vrt_degraded_prob: f64,
    /// Pre-built events for words whose flip mask is window-invariant,
    /// in population (word) order.
    pub(crate) static_events: Vec<WordEvent>,
    /// Words with VRT-contingent cells, in population order.
    pub(crate) vrt_words: Vec<VrtWord>,
    /// Flat per-contingent-cell bit masks (`1 << bit`).
    pub(crate) bit_masks: Vec<u64>,
    /// Flat per-contingent-cell VRT indices (the Bernoulli draw's key).
    pub(crate) bit_indices: Vec<u32>,
    /// Flat per-contingent-cell flip polarity: whether the cell flips in
    /// the *degraded* state (the common case; `false` covers a
    /// `vrt_degraded_mult > 1` configuration where degradation lengthens
    /// retention).
    pub(crate) bit_flip_when_degraded: Vec<bool>,
}

impl RunPlan {
    /// Number of pre-built (window-invariant) word events.
    pub fn static_words(&self) -> usize {
        self.static_events.len()
    }

    /// Number of words carrying at least one VRT-contingent cell.
    pub fn vrt_words(&self) -> usize {
        self.vrt_words.len()
    }

    /// Number of VRT-contingent cells — the only cells doing per-window
    /// work.
    pub fn vrt_cells(&self) -> usize {
        self.bit_masks.len()
    }

    /// The contents generation this plan was built against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Evaluates one refresh window into `out` (cleared first; callers
    /// reuse the buffer across windows). `seed` is the owning DIMM's device
    /// seed and `nonce` identifies the (run, window) pair, exactly as in
    /// [`crate::Dimm::advance_window`].
    pub(crate) fn advance_window(&self, seed: u64, nonce: u64, out: &mut Vec<WordEvent>) {
        out.clear();
        let mut emitted = 0usize;
        for word in &self.vrt_words {
            let upto = emitted + word.statics_before as usize;
            out.extend_from_slice(&self.static_events[emitted..upto]);
            emitted = upto;
            let mut mask = word.base_mask;
            for i in word.bits_start as usize..word.bits_end as usize {
                let degraded =
                    vrt_degraded(seed, nonce, self.bit_indices[i], self.vrt_degraded_prob);
                if degraded == self.bit_flip_when_degraded[i] {
                    mask |= self.bit_masks[i];
                }
            }
            if mask != 0 {
                out.push(WordEvent {
                    loc: word.loc,
                    written: word.written,
                    flip_mask: mask,
                });
            }
        }
        out.extend_from_slice(&self.static_events[emitted..]);
    }

    /// The pre-built (window-invariant) word events, in population order.
    ///
    /// Batched callers classify these once per plan instead of once per
    /// `(run, window)` — they are byte-identical every window by
    /// construction.
    pub fn static_events(&self) -> &[WordEvent] {
        &self.static_events
    }

    /// Evaluates one refresh window for up to [`MAX_LANES`] evaluation
    /// lanes at once, emitting **only the VRT-word events** of lane `l`
    /// into `out[l]` (cleared first). Static events are invariant across
    /// lanes and windows; batched callers account for them through a
    /// precomputed summary of [`RunPlan::static_events`] instead of
    /// re-materializing them per lane.
    ///
    /// `nonces[l]` is lane `l`'s window nonce; a lane is evaluated only
    /// when bit `l` of `live` is set (dead lanes — runs already stopped on
    /// an uncorrectable error — keep an empty buffer). The cell loop is
    /// outer and the lane loop inner: each VRT-contingent cell's Bernoulli
    /// draws for all live lanes are packed into one `u64` lane mask, then
    /// scattered into per-lane flip masks, so one pass over the flat SoA
    /// serves the whole batch.
    ///
    /// Per lane, the emitted events are bit-identical to the VRT-word
    /// subsequence of [`RunPlan::advance_window`] with the same nonce: the
    /// same `vrt_degraded` draws in the same per-word order.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_LANES`] lanes are requested or the buffer
    /// count does not match the nonce count.
    pub fn advance_window_vrt_lanes(
        &self,
        seed: u64,
        nonces: &[u64],
        live: u64,
        out: &mut [Vec<WordEvent>],
    ) {
        assert!(nonces.len() <= MAX_LANES, "at most {MAX_LANES} lanes");
        assert_eq!(nonces.len(), out.len(), "one event buffer per lane");
        for buf in out.iter_mut() {
            buf.clear();
        }
        let live = if nonces.len() == MAX_LANES {
            live
        } else {
            live & ((1u64 << nonces.len()) - 1)
        };
        if live == 0 {
            return;
        }
        let mut lane_masks = [0u64; MAX_LANES];
        for word in &self.vrt_words {
            let mut lanes = live;
            while lanes != 0 {
                let lane = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                lane_masks[lane] = word.base_mask;
            }
            for i in word.bits_start as usize..word.bits_end as usize {
                let index = self.bit_indices[i];
                let flip_when_degraded = self.bit_flip_when_degraded[i];
                // One u64 of Bernoulli outcomes across the batch: bit `l`
                // set iff lane `l`'s draw flips this cell.
                let mut flipping = 0u64;
                let mut lanes = live;
                while lanes != 0 {
                    let lane = lanes.trailing_zeros() as usize;
                    lanes &= lanes - 1;
                    if vrt_degraded(seed, nonces[lane], index, self.vrt_degraded_prob)
                        == flip_when_degraded
                    {
                        flipping |= 1u64 << lane;
                    }
                }
                let mask = self.bit_masks[i];
                while flipping != 0 {
                    let lane = flipping.trailing_zeros() as usize;
                    flipping &= flipping - 1;
                    lane_masks[lane] |= mask;
                }
            }
            let mut lanes = live;
            while lanes != 0 {
                let lane = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                if lane_masks[lane] != 0 {
                    out[lane].push(WordEvent {
                        loc: word.loc,
                        written: word.written,
                        flip_mask: lane_masks[lane],
                    });
                }
            }
        }
    }
}
