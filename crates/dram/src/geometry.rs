//! DIMM geometry and cell addressing.

use serde::{Deserialize, Serialize};

/// The organization of one DIMM (paper §II, Fig. 1a): ranks of banks of
/// two-dimensional row/column arrays. Row size follows the paper's 8 KB
/// rows ("each 8-KByte data chunk is mapped to exactly one DRAM row").
///
/// The default is a scaled-down device (fewer rows than an 8 GB module) so a
/// seven-month experimental campaign fits in seconds of simulation; all
/// structural relationships (chunk→bank striping, row adjacency, 8 KB rows)
/// are preserved.
///
/// # Examples
///
/// ```
/// use dstress_dram::DimmGeometry;
///
/// let geo = DimmGeometry::default();
/// assert_eq!(geo.row_bytes, 8192);
/// assert_eq!(geo.words_per_row(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimmGeometry {
    /// Number of ranks (sides) on the DIMM. DDR3 server DIMMs have 2.
    pub ranks: u8,
    /// Number of banks per rank. DDR3 has 8.
    pub banks: u8,
    /// Number of rows per bank.
    pub rows_per_bank: u32,
    /// Bytes per row (the paper's modules use 8 KB rows).
    pub row_bytes: u32,
}

impl Default for DimmGeometry {
    fn default() -> Self {
        DimmGeometry {
            ranks: 2,
            banks: 8,
            rows_per_bank: 64,
            row_bytes: 8192,
        }
    }
}

impl DimmGeometry {
    /// 64-bit words per row.
    pub fn words_per_row(&self) -> usize {
        self.row_bytes as usize / 8
    }

    /// Bits per row.
    pub fn bits_per_row(&self) -> usize {
        self.row_bytes as usize * 8
    }

    /// Total capacity of the DIMM in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.ranks as u64 * self.banks as u64 * self.rows_per_bank as u64 * self.row_bytes as u64
    }

    /// Total number of 64-bit words on the DIMM.
    pub fn capacity_words(&self) -> u64 {
        self.capacity_bytes() / 8
    }

    /// Validates that every dimension is non-zero and the row size is a
    /// multiple of 8 bytes.
    pub fn validate(&self) -> Result<(), GeometryError> {
        if self.ranks == 0 || self.banks == 0 || self.rows_per_bank == 0 || self.row_bytes == 0 {
            return Err(GeometryError::ZeroDimension);
        }
        if !self.row_bytes.is_multiple_of(8) {
            return Err(GeometryError::UnalignedRow);
        }
        Ok(())
    }

    /// Whether a location lies inside this geometry.
    pub fn contains(&self, loc: Location) -> bool {
        loc.rank < self.ranks
            && loc.bank < self.banks
            && loc.row < self.rows_per_bank
            && (loc.col as usize) < self.words_per_row()
    }
}

/// Error validating a [`DimmGeometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// Some dimension was zero.
    ZeroDimension,
    /// The row size was not a multiple of 8 bytes.
    UnalignedRow,
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::ZeroDimension => write!(f, "geometry dimensions must be non-zero"),
            GeometryError::UnalignedRow => write!(f, "row size must be a multiple of 8 bytes"),
        }
    }
}

impl std::error::Error for GeometryError {}

/// The physical-layout coordinates of one 64-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Location {
    /// Rank (side of the DIMM).
    pub rank: u8,
    /// Bank within the rank.
    pub bank: u8,
    /// Row within the bank.
    pub row: u32,
    /// 64-bit word column within the row.
    pub col: u32,
}

impl Location {
    /// Creates a location from raw coordinates.
    pub fn new(rank: u8, bank: u8, row: u32, col: u32) -> Self {
        Location {
            rank,
            bank,
            row,
            col,
        }
    }

    /// The (rank, bank, row) triple identifying the row this word lives in.
    pub fn row_key(&self) -> RowKey {
        RowKey {
            rank: self.rank,
            bank: self.bank,
            row: self.row,
        }
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank{}/bank{}/row{}/col{}",
            self.rank, self.bank, self.row, self.col
        )
    }
}

/// Identifies one row on a DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowKey {
    /// Rank (side of the DIMM).
    pub rank: u8,
    /// Bank within the rank.
    pub bank: u8,
    /// Row within the bank.
    pub row: u32,
}

impl RowKey {
    /// Creates a row key from raw coordinates.
    pub fn new(rank: u8, bank: u8, row: u32) -> Self {
        RowKey { rank, bank, row }
    }
}

impl std::fmt::Display for RowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank{}/bank{}/row{}", self.rank, self.bank, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_valid() {
        let geo = DimmGeometry::default();
        assert!(geo.validate().is_ok());
        assert_eq!(geo.words_per_row(), 1024);
        assert_eq!(geo.bits_per_row(), 65536);
        assert_eq!(geo.capacity_bytes(), 2 * 8 * 64 * 8192);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let geo = DimmGeometry {
            banks: 0,
            ..Default::default()
        };
        assert_eq!(geo.validate().unwrap_err(), GeometryError::ZeroDimension);
        let geo = DimmGeometry {
            row_bytes: 12,
            ..Default::default()
        };
        assert_eq!(geo.validate().unwrap_err(), GeometryError::UnalignedRow);
    }

    #[test]
    fn contains_checks_every_dimension() {
        let geo = DimmGeometry::default();
        assert!(geo.contains(Location::new(0, 0, 0, 0)));
        assert!(geo.contains(Location::new(1, 7, 63, 1023)));
        assert!(!geo.contains(Location::new(2, 0, 0, 0)));
        assert!(!geo.contains(Location::new(0, 8, 0, 0)));
        assert!(!geo.contains(Location::new(0, 0, 64, 0)));
        assert!(!geo.contains(Location::new(0, 0, 0, 1024)));
    }

    #[test]
    fn location_row_key_strips_column() {
        let loc = Location::new(1, 3, 17, 99);
        assert_eq!(loc.row_key(), RowKey::new(1, 3, 17));
    }

    #[test]
    fn display_formats_are_informative() {
        assert_eq!(
            Location::new(0, 1, 2, 3).to_string(),
            "rank0/bank1/row2/col3"
        );
        assert_eq!(RowKey::new(1, 2, 3).to_string(), "rank1/bank2/row3");
    }
}
