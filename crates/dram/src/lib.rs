//! Physics-based DRAM device model for the DStress reproduction.
//!
//! The paper evaluates viruses on four real 8 GB DDR3 DIMMs whose internal
//! design is unknown to the framework. This crate substitutes a simulated
//! DIMM whose *hidden* internal design produces, as emergent behaviour, the
//! phenomena the paper measures:
//!
//! * data-dependent retention: a cell leaks only while *charged*, and whether
//!   a stored logic value charges the capacitor depends on the hidden
//!   true-/anti-cell layout ([`topology`]);
//! * cell-to-cell interference: charged physical neighbours on the same
//!   bitline pair and in adjacent rows accelerate leakage ([`retention`]);
//! * row-disturbance: activations of nearby rows in the same bank remove
//!   victim charge with distance decay and saturation ([`disturb`]);
//! * temperature / voltage dependence: Arrhenius-style retention scaling and
//!   supply-voltage charge scaling ([`retention`]);
//! * variable retention time: a fraction of weak cells stochastically change
//!   retention state between refresh windows, producing run-to-run noise
//!   ([`weak`]);
//! * DIMM-to-DIMM variation: per-DIMM seeds draw different weak-cell
//!   densities and topologies ([`weak`]).
//!
//! The framework above this crate observes only what real hardware exposes:
//! written data, row activations, and the per-word bit flips found when a
//! refresh window elapses ([`Dimm::advance_window`]).
//!
//! # Examples
//!
//! ```
//! use dstress_dram::{ActivationCounts, Dimm, DimmConfig, Location, OperatingEnv};
//!
//! let mut dimm = Dimm::new(DimmConfig::default(), 42);
//! // Fill the first row of bank 0 with the paper's worst-case sub-pattern.
//! let words = dimm.geometry().words_per_row();
//! for col in 0..words {
//!     dimm.write_word(Location::new(0, 0, 0, col as u32), 0xCCCC_CCCC_CCCC_CCCC);
//! }
//! let env = OperatingEnv::relaxed(60.0);
//! let events = dimm.advance_window(&env, &ActivationCounts::new(), 0);
//! // Each event reports which stored bits of a word leaked this window.
//! for e in &events {
//!     assert!(e.flip_mask != 0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod contents;
pub mod dimm;
pub mod disturb;
pub mod env;
pub mod events;
pub mod faults;
pub mod geometry;
pub mod plan;
pub mod retention;
pub mod topology;
pub mod weak;

pub use address::AddressMap;
pub use dimm::{Dimm, DimmConfig};
pub use disturb::{ActivationCounts, DisturbanceModel};
pub use env::OperatingEnv;
pub use events::WordEvent;
pub use faults::{FaultSet, LogicalFault};
pub use geometry::{DimmGeometry, Location};
pub use plan::{PlanError, RunPlan, MAX_LANES};
pub use retention::PhysicsParams;
pub use topology::{CellKind, Topology};
pub use weak::{WeakCell, WeakCellPopulation};
