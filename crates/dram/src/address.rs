//! The address-to-physical-layout mapping function (paper §II, Fig. 2).
//!
//! The paper documents, for the 8 GB DDR3 DIMMs of its testbed, that each
//! 8 KB chunk of the physical address space maps to exactly one DRAM row and
//! that *consecutive* chunks stripe across banks: chunk 1 → Row1.Bank1,
//! chunk 2 → Row1.Bank2, …, chunk 9 → Row2.Bank1. Hence chunks `c`, `c+8`
//! and `c+16` occupy three *adjacent rows of the same bank* — the property
//! every neighbour-row experiment (24 KB patterns, access viruses) builds on.
//!
//! [`AddressMap`] implements exactly that layout for arbitrary geometry:
//!
//! ```text
//! addr = ((rank * rows + row) * banks + bank) * row_bytes + col * 8
//! ```

use crate::geometry::{DimmGeometry, Location};
use serde::{Deserialize, Serialize};

/// Maps 64-bit-aligned DIMM-local physical addresses to physical-layout
/// coordinates and back.
///
/// # Examples
///
/// ```
/// use dstress_dram::{AddressMap, DimmGeometry};
///
/// let map = AddressMap::new(DimmGeometry::default());
/// // Chunk 0 and chunk 8 are adjacent rows of the same bank (Fig. 1a).
/// let a = map.map(0).unwrap();
/// let b = map.map(8 * 8192).unwrap();
/// assert_eq!(a.bank, b.bank);
/// assert_eq!(a.row + 1, b.row);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    geometry: DimmGeometry,
}

/// Error mapping an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressError {
    /// The address is beyond the DIMM capacity.
    OutOfRange {
        /// The offending address.
        addr: u64,
        /// The DIMM capacity in bytes.
        capacity: u64,
    },
    /// The address is not 8-byte aligned.
    Unaligned {
        /// The offending address.
        addr: u64,
    },
    /// The location does not exist in the geometry.
    BadLocation,
}

impl std::fmt::Display for AddressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddressError::OutOfRange { addr, capacity } => {
                write!(f, "address {addr:#x} exceeds DIMM capacity {capacity:#x}")
            }
            AddressError::Unaligned { addr } => {
                write!(f, "address {addr:#x} is not 64-bit aligned")
            }
            AddressError::BadLocation => write!(f, "location outside DIMM geometry"),
        }
    }
}

impl std::error::Error for AddressError {}

impl AddressMap {
    /// Creates the mapping function for a geometry.
    pub fn new(geometry: DimmGeometry) -> Self {
        AddressMap { geometry }
    }

    /// The geometry this map was built for.
    pub fn geometry(&self) -> DimmGeometry {
        self.geometry
    }

    /// Maps a 64-bit-aligned DIMM-local address to its physical location.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError::Unaligned`] for addresses that are not 8-byte
    /// aligned and [`AddressError::OutOfRange`] for addresses beyond the
    /// DIMM capacity.
    pub fn map(&self, addr: u64) -> Result<Location, AddressError> {
        if !addr.is_multiple_of(8) {
            return Err(AddressError::Unaligned { addr });
        }
        let capacity = self.geometry.capacity_bytes();
        if addr >= capacity {
            return Err(AddressError::OutOfRange { addr, capacity });
        }
        let row_bytes = self.geometry.row_bytes as u64;
        let banks = self.geometry.banks as u64;
        let rows = self.geometry.rows_per_bank as u64;
        let col = (addr % row_bytes) / 8;
        let chunk = addr / row_bytes;
        let bank = chunk % banks;
        let row = (chunk / banks) % rows;
        let rank = chunk / (banks * rows);
        Ok(Location::new(
            rank as u8, bank as u8, row as u32, col as u32,
        ))
    }

    /// Inverse of [`Self::map`]: physical location back to the DIMM-local
    /// address.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError::BadLocation`] when the location lies outside
    /// the geometry.
    pub fn unmap(&self, loc: Location) -> Result<u64, AddressError> {
        if !self.geometry.contains(loc) {
            return Err(AddressError::BadLocation);
        }
        let row_bytes = self.geometry.row_bytes as u64;
        let banks = self.geometry.banks as u64;
        let rows = self.geometry.rows_per_bank as u64;
        let chunk = (loc.rank as u64 * rows + loc.row as u64) * banks + loc.bank as u64;
        Ok(chunk * row_bytes + loc.col as u64 * 8)
    }

    /// The address of the first byte of the 8 KB chunk holding `addr`.
    pub fn chunk_base(&self, addr: u64) -> u64 {
        addr - addr % self.geometry.row_bytes as u64
    }

    /// Iterates the 64-bit-aligned addresses of a whole row, in column
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`AddressError::BadLocation`] when the row lies outside the
    /// geometry.
    pub fn row_addrs(
        &self,
        rank: u8,
        bank: u8,
        row: u32,
    ) -> Result<impl Iterator<Item = u64> + '_, AddressError> {
        let base = self.unmap(Location::new(rank, bank, row, 0))?;
        Ok((0..self.geometry.words_per_row() as u64).map(move |w| base + w * 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map() -> AddressMap {
        AddressMap::new(DimmGeometry::default())
    }

    #[test]
    fn chunk_zero_is_bank0_row0() {
        let loc = map().map(0).unwrap();
        assert_eq!(loc, Location::new(0, 0, 0, 0));
    }

    #[test]
    fn consecutive_chunks_stripe_across_banks() {
        // Paper Fig. 1a: chunk c -> Bank (c mod 8), same row index.
        let m = map();
        for c in 0..8u64 {
            let loc = m.map(c * 8192).unwrap();
            assert_eq!(loc.bank, c as u8);
            assert_eq!(loc.row, 0);
            assert_eq!(loc.rank, 0);
        }
    }

    #[test]
    fn chunks_1_9_17_are_adjacent_rows_of_bank0() {
        // Paper: "the first 8-KByte chunk of data, the 9-th data chunk and
        // the 17-th data chunk are mapped to the first three adjacent rows
        // of the first bank" (1-indexed chunks).
        let m = map();
        for (i, chunk) in [0u64, 8, 16].iter().enumerate() {
            let loc = m.map(chunk * 8192).unwrap();
            assert_eq!(loc.bank, 0);
            assert_eq!(loc.row, i as u32);
        }
    }

    #[test]
    fn columns_fill_within_a_row() {
        let m = map();
        for w in 0..1024u64 {
            let loc = m.map(w * 8).unwrap();
            assert_eq!(loc.row_key(), Location::new(0, 0, 0, 0).row_key());
            assert_eq!(loc.col, w as u32);
        }
    }

    #[test]
    fn second_rank_follows_first() {
        let m = map();
        let per_rank = 8u64 * 64 * 8192;
        let loc = m.map(per_rank).unwrap();
        assert_eq!(loc.rank, 1);
        assert_eq!((loc.bank, loc.row, loc.col), (0, 0, 0));
    }

    #[test]
    fn unaligned_and_out_of_range_rejected() {
        let m = map();
        assert!(matches!(m.map(7), Err(AddressError::Unaligned { .. })));
        let cap = DimmGeometry::default().capacity_bytes();
        assert!(matches!(m.map(cap), Err(AddressError::OutOfRange { .. })));
    }

    #[test]
    fn unmap_rejects_bad_location() {
        assert_eq!(
            map().unmap(Location::new(5, 0, 0, 0)).unwrap_err(),
            AddressError::BadLocation
        );
    }

    #[test]
    fn chunk_base_truncates_to_row() {
        let m = map();
        assert_eq!(m.chunk_base(8192 + 24), 8192);
        assert_eq!(m.chunk_base(8191), 0);
    }

    #[test]
    fn row_addrs_covers_the_row_in_order() {
        let m = map();
        let addrs: Vec<u64> = m.row_addrs(0, 3, 2).unwrap().collect();
        assert_eq!(addrs.len(), 1024);
        for (i, a) in addrs.iter().enumerate() {
            let loc = m.map(*a).unwrap();
            assert_eq!(loc, Location::new(0, 3, 2, i as u32));
        }
    }

    proptest! {
        #[test]
        fn map_unmap_roundtrip(word in 0u64..(2 * 8 * 64 * 1024)) {
            let m = map();
            let addr = word * 8;
            let loc = m.map(addr).unwrap();
            prop_assert_eq!(m.unmap(loc).unwrap(), addr);
        }

        #[test]
        fn mapping_is_injective_within_a_chunk_pair(a in 0u64..16384, b in 0u64..16384) {
            let m = map();
            let la = m.map(a * 8).unwrap();
            let lb = m.map(b * 8).unwrap();
            if a != b {
                prop_assert_ne!(la, lb);
            } else {
                prop_assert_eq!(la, lb);
            }
        }

        #[test]
        fn adjacent_chunks_same_bank_are_adjacent_rows(chunk in 0u64..(8 * 63)) {
            let m = map();
            let a = m.map(chunk * 8192).unwrap();
            let b = m.map((chunk + 8) * 8192).unwrap();
            prop_assert_eq!(a.bank, b.bank);
            prop_assert_eq!(a.rank, b.rank);
            prop_assert_eq!(a.row + 1, b.row);
        }
    }
}
