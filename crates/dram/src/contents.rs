//! Sparse storage of DIMM contents.
//!
//! Only rows that were actually written are materialized; everything else
//! reads as the configured default fill (the content the OS/firmware left
//! behind). A generation counter lets the device model cache data-dependent
//! interference terms and invalidate them when contents change.

use crate::geometry::{DimmGeometry, Location, RowKey};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sparse row-granular storage of every 64-bit word on a DIMM.
///
/// # Examples
///
/// ```
/// use dstress_dram::contents::RowStore;
/// use dstress_dram::{DimmGeometry, Location};
///
/// let mut store = RowStore::new(DimmGeometry::default(), 0);
/// let loc = Location::new(0, 0, 0, 9);
/// assert_eq!(store.read_word(loc), 0);
/// store.write_word(loc, 0xFF);
/// assert_eq!(store.read_word(loc), 0xFF);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowStore {
    geometry: DimmGeometry,
    default_word: u64,
    rows: HashMap<RowKey, Vec<u64>>,
    generation: u64,
}

impl RowStore {
    /// Creates a store where every word initially reads `default_word`.
    pub fn new(geometry: DimmGeometry, default_word: u64) -> Self {
        RowStore {
            geometry,
            default_word,
            rows: HashMap::new(),
            generation: 0,
        }
    }

    /// The geometry this store covers.
    pub fn geometry(&self) -> DimmGeometry {
        self.geometry
    }

    /// Monotonic counter bumped on every mutation that changes stored bits;
    /// used to invalidate derived caches. No-op writes (storing the value a
    /// word already holds) leave it untouched, so they never force a cache
    /// rebuild.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of materialized (written) rows.
    pub fn materialized_rows(&self) -> usize {
        self.rows.len()
    }

    /// Reads one word.
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the geometry.
    pub fn read_word(&self, loc: Location) -> u64 {
        assert!(
            self.geometry.contains(loc),
            "location {loc} outside geometry"
        );
        match self.rows.get(&loc.row_key()) {
            Some(row) => row[loc.col as usize],
            None => self.default_word,
        }
    }

    /// Writes one word, materializing the row on first touch.
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the geometry.
    pub fn write_word(&mut self, loc: Location, value: u64) {
        assert!(
            self.geometry.contains(loc),
            "location {loc} outside geometry"
        );
        let words = self.geometry.words_per_row();
        let default = self.default_word;
        let row = self
            .rows
            .entry(loc.row_key())
            .or_insert_with(|| vec![default; words]);
        if row[loc.col as usize] != value {
            row[loc.col as usize] = value;
            self.generation += 1;
        }
    }

    /// Writes a contiguous run of words starting at `start`, staying within
    /// one row: the row is looked up once instead of once per word (the fast
    /// path behind [`crate::Dimm::write_words`] and session fills).
    ///
    /// # Panics
    ///
    /// Panics if the span starts outside the geometry or runs past the end
    /// of the row.
    pub fn write_words(&mut self, start: Location, values: &[u64]) {
        assert!(
            self.geometry.contains(start),
            "location {start} outside geometry"
        );
        let col = start.col as usize;
        assert!(
            col + values.len() <= self.geometry.words_per_row(),
            "span of {} words from column {col} runs past the row end",
            values.len()
        );
        if values.is_empty() {
            return;
        }
        let words = self.geometry.words_per_row();
        let default = self.default_word;
        let row = self
            .rows
            .entry(start.row_key())
            .or_insert_with(|| vec![default; words]);
        let slice = &mut row[col..col + values.len()];
        if slice != values {
            slice.copy_from_slice(values);
            self.generation += 1;
        }
    }

    /// Reads a contiguous run of words starting at `start`, staying within
    /// one row: the row is looked up once instead of once per word (the
    /// fast path behind [`crate::Dimm::read_words`] and session bulk
    /// reads).
    ///
    /// # Panics
    ///
    /// Panics if the span starts outside the geometry or runs past the end
    /// of the row.
    pub fn read_words(&self, start: Location, out: &mut [u64]) {
        assert!(
            self.geometry.contains(start),
            "location {start} outside geometry"
        );
        let col = start.col as usize;
        assert!(
            col + out.len() <= self.geometry.words_per_row(),
            "span of {} words from column {col} runs past the row end",
            out.len()
        );
        match self.rows.get(&start.row_key()) {
            Some(row) => out.copy_from_slice(&row[col..col + out.len()]),
            None => out.fill(self.default_word),
        }
    }

    /// Reads the logical bit `bit_in_row` (word column × 64 + bit) of a row.
    ///
    /// # Panics
    ///
    /// Panics if the row or bit is outside the geometry.
    pub fn read_bit(&self, row: RowKey, bit_in_row: u32) -> bool {
        assert!(
            (bit_in_row as usize) < self.geometry.bits_per_row(),
            "bit {bit_in_row} outside row"
        );
        let loc = Location::new(row.rank, row.bank, row.row, bit_in_row / 64);
        (self.read_word(loc) >> (bit_in_row % 64)) & 1 == 1
    }

    /// Overwrites a whole row from a word slice.
    ///
    /// # Panics
    ///
    /// Panics if `words` does not match the row length or the row is outside
    /// the geometry.
    pub fn write_row(&mut self, row: RowKey, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.geometry.words_per_row(),
            "row length mismatch"
        );
        assert!(
            row.rank < self.geometry.ranks
                && row.bank < self.geometry.banks
                && row.row < self.geometry.rows_per_bank,
            "row {row} outside geometry"
        );
        match self.rows.entry(row) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if e.get().as_slice() != words {
                    e.get_mut().copy_from_slice(words);
                    self.generation += 1;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let default = self.default_word;
                e.insert(words.to_vec());
                if words.iter().any(|&w| w != default) {
                    self.generation += 1;
                }
            }
        }
    }

    /// Forgets all written rows, restoring the default fill.
    pub fn clear(&mut self) {
        if !self.rows.is_empty() {
            self.rows.clear();
            self.generation += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn store() -> RowStore {
        RowStore::new(DimmGeometry::default(), 0xAAAA_AAAA_AAAA_AAAA)
    }

    #[test]
    fn unwritten_words_read_default() {
        let s = store();
        assert_eq!(
            s.read_word(Location::new(1, 7, 63, 1023)),
            0xAAAA_AAAA_AAAA_AAAA
        );
        assert_eq!(s.materialized_rows(), 0);
    }

    #[test]
    fn writes_materialize_one_row() {
        let mut s = store();
        s.write_word(Location::new(0, 0, 5, 10), 42);
        assert_eq!(s.materialized_rows(), 1);
        assert_eq!(s.read_word(Location::new(0, 0, 5, 10)), 42);
        // Other words of the same row read default.
        assert_eq!(
            s.read_word(Location::new(0, 0, 5, 11)),
            0xAAAA_AAAA_AAAA_AAAA
        );
    }

    #[test]
    fn generation_bumps_on_mutation() {
        let mut s = store();
        let g0 = s.generation();
        s.write_word(Location::new(0, 0, 0, 0), 1);
        assert!(s.generation() > g0);
        let g1 = s.generation();
        s.clear();
        assert!(s.generation() > g1);
    }

    #[test]
    fn noop_writes_do_not_bump_generation() {
        let mut s = store();
        let loc = Location::new(0, 0, 5, 10);
        s.write_word(loc, 42);
        let g = s.generation();
        // Rewriting the same value — word, row and span granular — must not
        // invalidate derived caches.
        s.write_word(loc, 42);
        assert_eq!(s.generation(), g, "no-op write_word bumped generation");
        // Writing the default fill to an untouched word is also a no-op.
        s.write_word(Location::new(0, 0, 6, 0), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(s.generation(), g, "default-valued write bumped generation");
        let row: Vec<u64> = (0..1024)
            .map(|c| if c == 10 { 42 } else { 0xAAAA_AAAA_AAAA_AAAA })
            .collect();
        s.write_row(RowKey::new(0, 0, 5), &row);
        assert_eq!(s.generation(), g, "no-op write_row bumped generation");
        s.write_words(Location::new(0, 0, 5, 9), &[0xAAAA_AAAA_AAAA_AAAA, 42]);
        assert_eq!(s.generation(), g, "no-op write_words bumped generation");
        // A real change still bumps.
        s.write_word(loc, 43);
        assert!(s.generation() > g);
    }

    #[test]
    fn clear_of_empty_store_is_a_noop() {
        let mut s = store();
        let g = s.generation();
        s.clear();
        assert_eq!(s.generation(), g);
        s.write_word(Location::new(0, 0, 0, 0), 1);
        s.clear();
        assert!(s.generation() > g);
    }

    #[test]
    fn write_words_spans_columns() {
        let mut s = store();
        s.write_words(Location::new(0, 2, 3, 100), &[1, 2, 3]);
        assert_eq!(s.read_word(Location::new(0, 2, 3, 100)), 1);
        assert_eq!(s.read_word(Location::new(0, 2, 3, 101)), 2);
        assert_eq!(s.read_word(Location::new(0, 2, 3, 102)), 3);
        assert_eq!(
            s.read_word(Location::new(0, 2, 3, 103)),
            0xAAAA_AAAA_AAAA_AAAA
        );
    }

    #[test]
    #[should_panic(expected = "runs past the row end")]
    fn write_words_rejects_row_overrun() {
        let mut s = store();
        s.write_words(Location::new(0, 0, 0, 1023), &[1, 2]);
    }

    #[test]
    fn read_bit_addresses_lsb_first() {
        let mut s = store();
        s.write_word(Location::new(0, 0, 0, 2), 0b101);
        let row = RowKey::new(0, 0, 0);
        assert!(s.read_bit(row, 2 * 64));
        assert!(!s.read_bit(row, 2 * 64 + 1));
        assert!(s.read_bit(row, 2 * 64 + 2));
    }

    #[test]
    fn write_row_replaces_contents() {
        let mut s = store();
        let words = vec![7u64; 1024];
        s.write_row(RowKey::new(0, 1, 2), &words);
        assert_eq!(s.read_word(Location::new(0, 1, 2, 500)), 7);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn write_row_validates_length() {
        let mut s = store();
        s.write_row(RowKey::new(0, 0, 0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "outside geometry")]
    fn read_outside_geometry_panics() {
        store().read_word(Location::new(3, 0, 0, 0));
    }

    #[test]
    fn clear_restores_default() {
        let mut s = store();
        s.write_word(Location::new(0, 0, 0, 0), 5);
        s.clear();
        assert_eq!(
            s.read_word(Location::new(0, 0, 0, 0)),
            0xAAAA_AAAA_AAAA_AAAA
        );
        assert_eq!(s.materialized_rows(), 0);
    }

    proptest! {
        #[test]
        fn read_back_what_was_written(
            bank in 0u8..8, row in 0u32..64, col in 0u32..1024, value in any::<u64>(),
        ) {
            let mut s = store();
            let loc = Location::new(0, bank, row, col);
            s.write_word(loc, value);
            prop_assert_eq!(s.read_word(loc), value);
        }

        #[test]
        fn word_and_bit_views_agree(col in 0u32..1024, value in any::<u64>(), bit in 0u32..64) {
            let mut s = store();
            s.write_word(Location::new(0, 0, 0, col), value);
            let got = s.read_bit(RowKey::new(0, 0, 0), col * 64 + bit);
            prop_assert_eq!(got, (value >> bit) & 1 == 1);
        }
    }
}
