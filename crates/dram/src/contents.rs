//! Sparse storage of DIMM contents.
//!
//! Only rows that were actually written are materialized; everything else
//! reads as the configured default fill (the content the OS/firmware left
//! behind). A generation counter lets the device model cache data-dependent
//! interference terms and invalidate them when contents change.

use crate::geometry::{DimmGeometry, Location, RowKey};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sparse row-granular storage of every 64-bit word on a DIMM.
///
/// # Examples
///
/// ```
/// use dstress_dram::contents::RowStore;
/// use dstress_dram::{DimmGeometry, Location};
///
/// let mut store = RowStore::new(DimmGeometry::default(), 0);
/// let loc = Location::new(0, 0, 0, 9);
/// assert_eq!(store.read_word(loc), 0);
/// store.write_word(loc, 0xFF);
/// assert_eq!(store.read_word(loc), 0xFF);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowStore {
    geometry: DimmGeometry,
    default_word: u64,
    rows: HashMap<RowKey, Vec<u64>>,
    generation: u64,
}

impl RowStore {
    /// Creates a store where every word initially reads `default_word`.
    pub fn new(geometry: DimmGeometry, default_word: u64) -> Self {
        RowStore {
            geometry,
            default_word,
            rows: HashMap::new(),
            generation: 0,
        }
    }

    /// The geometry this store covers.
    pub fn geometry(&self) -> DimmGeometry {
        self.geometry
    }

    /// Monotonic counter bumped on every mutation; used to invalidate
    /// derived caches.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of materialized (written) rows.
    pub fn materialized_rows(&self) -> usize {
        self.rows.len()
    }

    /// Reads one word.
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the geometry.
    pub fn read_word(&self, loc: Location) -> u64 {
        assert!(
            self.geometry.contains(loc),
            "location {loc} outside geometry"
        );
        match self.rows.get(&loc.row_key()) {
            Some(row) => row[loc.col as usize],
            None => self.default_word,
        }
    }

    /// Writes one word, materializing the row on first touch.
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the geometry.
    pub fn write_word(&mut self, loc: Location, value: u64) {
        assert!(
            self.geometry.contains(loc),
            "location {loc} outside geometry"
        );
        let words = self.geometry.words_per_row();
        let default = self.default_word;
        let row = self
            .rows
            .entry(loc.row_key())
            .or_insert_with(|| vec![default; words]);
        row[loc.col as usize] = value;
        self.generation += 1;
    }

    /// Reads the logical bit `bit_in_row` (word column × 64 + bit) of a row.
    ///
    /// # Panics
    ///
    /// Panics if the row or bit is outside the geometry.
    pub fn read_bit(&self, row: RowKey, bit_in_row: u32) -> bool {
        assert!(
            (bit_in_row as usize) < self.geometry.bits_per_row(),
            "bit {bit_in_row} outside row"
        );
        let loc = Location::new(row.rank, row.bank, row.row, bit_in_row / 64);
        (self.read_word(loc) >> (bit_in_row % 64)) & 1 == 1
    }

    /// Overwrites a whole row from a word slice.
    ///
    /// # Panics
    ///
    /// Panics if `words` does not match the row length or the row is outside
    /// the geometry.
    pub fn write_row(&mut self, row: RowKey, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.geometry.words_per_row(),
            "row length mismatch"
        );
        assert!(
            row.rank < self.geometry.ranks
                && row.bank < self.geometry.banks
                && row.row < self.geometry.rows_per_bank,
            "row {row} outside geometry"
        );
        self.rows.insert(row, words.to_vec());
        self.generation += 1;
    }

    /// Forgets all written rows, restoring the default fill.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.generation += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn store() -> RowStore {
        RowStore::new(DimmGeometry::default(), 0xAAAA_AAAA_AAAA_AAAA)
    }

    #[test]
    fn unwritten_words_read_default() {
        let s = store();
        assert_eq!(
            s.read_word(Location::new(1, 7, 63, 1023)),
            0xAAAA_AAAA_AAAA_AAAA
        );
        assert_eq!(s.materialized_rows(), 0);
    }

    #[test]
    fn writes_materialize_one_row() {
        let mut s = store();
        s.write_word(Location::new(0, 0, 5, 10), 42);
        assert_eq!(s.materialized_rows(), 1);
        assert_eq!(s.read_word(Location::new(0, 0, 5, 10)), 42);
        // Other words of the same row read default.
        assert_eq!(
            s.read_word(Location::new(0, 0, 5, 11)),
            0xAAAA_AAAA_AAAA_AAAA
        );
    }

    #[test]
    fn generation_bumps_on_mutation() {
        let mut s = store();
        let g0 = s.generation();
        s.write_word(Location::new(0, 0, 0, 0), 1);
        assert!(s.generation() > g0);
        let g1 = s.generation();
        s.clear();
        assert!(s.generation() > g1);
    }

    #[test]
    fn read_bit_addresses_lsb_first() {
        let mut s = store();
        s.write_word(Location::new(0, 0, 0, 2), 0b101);
        let row = RowKey::new(0, 0, 0);
        assert!(s.read_bit(row, 2 * 64));
        assert!(!s.read_bit(row, 2 * 64 + 1));
        assert!(s.read_bit(row, 2 * 64 + 2));
    }

    #[test]
    fn write_row_replaces_contents() {
        let mut s = store();
        let words = vec![7u64; 1024];
        s.write_row(RowKey::new(0, 1, 2), &words);
        assert_eq!(s.read_word(Location::new(0, 1, 2, 500)), 7);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn write_row_validates_length() {
        let mut s = store();
        s.write_row(RowKey::new(0, 0, 0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "outside geometry")]
    fn read_outside_geometry_panics() {
        store().read_word(Location::new(3, 0, 0, 0));
    }

    #[test]
    fn clear_restores_default() {
        let mut s = store();
        s.write_word(Location::new(0, 0, 0, 0), 5);
        s.clear();
        assert_eq!(
            s.read_word(Location::new(0, 0, 0, 0)),
            0xAAAA_AAAA_AAAA_AAAA
        );
        assert_eq!(s.materialized_rows(), 0);
    }

    proptest! {
        #[test]
        fn read_back_what_was_written(
            bank in 0u8..8, row in 0u32..64, col in 0u32..1024, value in any::<u64>(),
        ) {
            let mut s = store();
            let loc = Location::new(0, bank, row, col);
            s.write_word(loc, value);
            prop_assert_eq!(s.read_word(loc), value);
        }

        #[test]
        fn word_and_bit_views_agree(col in 0u32..1024, value in any::<u64>(), bit in 0u32..64) {
            let mut s = store();
            s.write_word(Location::new(0, 0, 0, col), value);
            let got = s.read_bit(RowKey::new(0, 0, 0), col * 64 + bit);
            prop_assert_eq!(got, (value >> bit) & 1 == 1);
        }
    }
}
