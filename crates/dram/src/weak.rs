//! The weak-cell population of a DIMM.
//!
//! Real DRAM retention errors come from a sparse population of marginal
//! cells in the tail of the retention distribution (paper §II; Liu et al.).
//! Simulating every cell of even a scaled DIMM is wasteful — cells with
//! seconds of margin can never fail — so the device model samples, per rank,
//! a seeded population of *weak* cells with log-normally distributed base
//! retention, and evaluates only those.
//!
//! Two sub-populations exist:
//!
//! * **singles** — isolated weak cells; when they fail, the word suffers a
//!   single-bit error (a CE after ECC);
//! * **clustered pairs** — two weak bits sharing a 64-bit word with
//!   correlated, *tighter and longer* retention (a physically adjacent
//!   defect). Pairs fail only at higher temperature, and when they do, the
//!   word has two flipped bits — an uncorrectable error. This is what makes
//!   UEs appear only at ≈62 °C in the paper (§V-A.1) while CEs appear tens
//!   of degrees earlier.

use crate::geometry::{DimmGeometry, Location};
use crate::topology::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the weak-cell population sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeakCellConfig {
    /// Number of isolated weak cells per rank.
    pub singles_per_rank: usize,
    /// Median base retention (seconds) of isolated weak cells at reference
    /// conditions.
    pub single_median_s: f64,
    /// Log-normal sigma of isolated weak-cell retention.
    pub single_sigma: f64,
    /// Fraction of isolated weak cells exhibiting variable retention time.
    pub vrt_fraction: f64,
    /// Number of clustered (UE-prone) weak-bit pairs per rank.
    pub pairs_per_rank: usize,
    /// Median base retention (seconds) of clustered pairs — higher than
    /// singles so pairs only fail at elevated temperature.
    pub pair_median_s: f64,
    /// Log-normal sigma of pair retention (tight: a sharp UE onset).
    pub pair_sigma: f64,
    /// Relative retention jitter between the two bits of a pair.
    pub pair_jitter: f64,
    /// Number of clustered *triple* defects per rank (three weak bits in
    /// one word). When all three leak, the word defeats SECDED — the
    /// silent-data-corruption class of §III-C ("errors where more than 2
    /// bit are corrupted may be not detected"). Defaults to 0; the SDC
    /// accounting experiment opts in.
    pub triples_per_rank: usize,
    /// Median base retention (seconds) of triple clusters.
    pub triple_median_s: f64,
    /// Log-normal sigma of triple-cluster retention.
    pub triple_sigma: f64,
}

impl Default for WeakCellConfig {
    fn default() -> Self {
        WeakCellConfig {
            singles_per_rank: 4000,
            single_median_s: 30.0,
            single_sigma: 1.0,
            vrt_fraction: 0.15,
            pairs_per_rank: 80,
            pair_median_s: 13.0,
            pair_sigma: 0.055,
            pair_jitter: 0.03,
            triples_per_rank: 0,
            triple_median_s: 11.0,
            triple_sigma: 0.08,
        }
    }
}

/// One weak bit within a word.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeakCell {
    /// Bit index within the 64-bit word (0 = LSB).
    pub bit: u8,
    /// Base retention in seconds at reference temperature and nominal VDD.
    pub base_retention_s: f64,
    /// Whether this cell exhibits variable retention time.
    pub is_vrt: bool,
    /// Stable index used to derive per-window VRT state deterministically.
    pub vrt_index: u32,
}

/// All weak bits sharing one 64-bit word.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeakWord {
    /// The word these cells live in.
    pub loc: Location,
    /// The weak bits of the word (1 for singles, 2 for clustered pairs).
    pub cells: Vec<WeakCell>,
}

/// The sampled weak-cell population of one DIMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeakCellPopulation {
    words: Vec<WeakWord>,
    total_cells: usize,
}

impl WeakCellPopulation {
    /// Samples a population for the given geometry. Deterministic in
    /// `seed` — the same seed always reproduces the same DIMM.
    pub fn sample(geometry: DimmGeometry, config: &WeakCellConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ 0x0BAD_CE11_5EED));
        let mut by_word: HashMap<Location, Vec<WeakCell>> = HashMap::new();
        let mut occupied: HashMap<Location, u64> = HashMap::new();
        let mut vrt_index = 0u32;

        // Singles demand a fresh word (so a word carries at most one
        // isolated weak bit — accidental multi-bit words would blur the UE
        // temperature onset); a pair's second bit is forced into its
        // sibling's word.
        let place = |rng: &mut StdRng,
                     by_word: &mut HashMap<Location, Vec<WeakCell>>,
                     occupied: &mut HashMap<Location, u64>,
                     rank: u8,
                     cell: WeakCell,
                     forced_loc: Option<Location>|
         -> Option<Location> {
            for _attempt in 0..64 {
                let loc = forced_loc.unwrap_or_else(|| {
                    Location::new(
                        rank,
                        rng.gen_range(0..geometry.banks),
                        rng.gen_range(0..geometry.rows_per_bank),
                        rng.gen_range(0..geometry.words_per_row() as u32),
                    )
                });
                let vacant_word = !occupied.contains_key(&loc);
                let mask = occupied.entry(loc).or_insert(0);
                let bit_free = *mask & (1u64 << cell.bit) == 0;
                let ok = if forced_loc.is_some() {
                    bit_free
                } else {
                    vacant_word
                };
                if ok {
                    *mask |= 1u64 << cell.bit;
                    by_word.entry(loc).or_default().push(cell);
                    return Some(loc);
                }
                if forced_loc.is_some() {
                    return None;
                }
            }
            None
        };

        for rank in 0..geometry.ranks {
            // Isolated weak cells.
            for _ in 0..config.singles_per_rank {
                let z = standard_normal(&mut rng);
                let base = config.single_median_s * (config.single_sigma * z).exp();
                let is_vrt = rng.gen::<f64>() < config.vrt_fraction;
                let cell = WeakCell {
                    bit: rng.gen_range(0..64),
                    base_retention_s: base,
                    is_vrt,
                    vrt_index,
                };
                vrt_index += 1;
                place(&mut rng, &mut by_word, &mut occupied, rank, cell, None);
            }
            // Clustered SDC-prone triples: three bits of one word with
            // correlated retention (opt-in; see `triples_per_rank`).
            for _ in 0..config.triples_per_rank {
                let z = standard_normal(&mut rng);
                let base = config.triple_median_s * (config.triple_sigma * z).exp();
                let first_bit = rng.gen_range(0..62u8);
                let mut anchor = None;
                for k in 0..3u8 {
                    let jitter = 1.0 + config.pair_jitter * (rng.gen::<f64>() - 0.5);
                    let cell = WeakCell {
                        bit: first_bit + k,
                        base_retention_s: base * jitter,
                        is_vrt: false,
                        vrt_index,
                    };
                    vrt_index += 1;
                    match anchor {
                        None => {
                            anchor = place(&mut rng, &mut by_word, &mut occupied, rank, cell, None);
                        }
                        Some(loc) => {
                            place(&mut rng, &mut by_word, &mut occupied, rank, cell, Some(loc));
                        }
                    }
                }
            }
            // Clustered UE-prone pairs: two bits of the same word with
            // correlated retention.
            for _ in 0..config.pairs_per_rank {
                let z = standard_normal(&mut rng);
                let base = config.pair_median_s * (config.pair_sigma * z).exp();
                let bit_a = rng.gen_range(0..64u8);
                let bit_b = (bit_a + rng.gen_range(1..64u8)) % 64;
                let jitter = 1.0 + config.pair_jitter * (rng.gen::<f64>() - 0.5);
                let cell_a = WeakCell {
                    bit: bit_a,
                    base_retention_s: base,
                    is_vrt: false,
                    vrt_index,
                };
                vrt_index += 1;
                let cell_b = WeakCell {
                    bit: bit_b,
                    base_retention_s: base * jitter,
                    is_vrt: false,
                    vrt_index,
                };
                vrt_index += 1;
                if let Some(loc) = place(&mut rng, &mut by_word, &mut occupied, rank, cell_a, None)
                {
                    place(
                        &mut rng,
                        &mut by_word,
                        &mut occupied,
                        rank,
                        cell_b,
                        Some(loc),
                    );
                }
            }
        }

        let mut words: Vec<WeakWord> = by_word
            .into_iter()
            .map(|(loc, cells)| WeakWord { loc, cells })
            .collect();
        words.sort_by_key(|w| w.loc);
        let total_cells = words.iter().map(|w| w.cells.len()).sum();
        WeakCellPopulation { words, total_cells }
    }

    /// The weak words, sorted by location.
    pub fn words(&self) -> &[WeakWord] {
        &self.words
    }

    /// Total number of weak bits on the DIMM.
    pub fn total_cells(&self) -> usize {
        self.total_cells
    }

    /// Number of words carrying two or more weak bits (UE-prone words).
    pub fn multi_bit_words(&self) -> usize {
        self.words.iter().filter(|w| w.cells.len() >= 2).count()
    }
}

/// Draws a standard-normal variate via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Deterministic per-window VRT state: whether VRT cell `vrt_index` sits in
/// its degraded state during the window identified by `nonce`.
pub fn vrt_degraded(dimm_seed: u64, nonce: u64, vrt_index: u32, degraded_prob: f64) -> bool {
    let h = splitmix64(dimm_seed ^ nonce.rotate_left(17) ^ ((vrt_index as u64) << 40));
    (h as f64 / u64::MAX as f64) < degraded_prob
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(seed: u64) -> WeakCellPopulation {
        WeakCellPopulation::sample(DimmGeometry::default(), &WeakCellConfig::default(), seed)
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(population(1), population(1));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(population(1), population(2));
    }

    #[test]
    fn population_size_is_close_to_configured() {
        let config = WeakCellConfig::default();
        let pop = population(3);
        let expected = 2 * (config.singles_per_rank + 2 * config.pairs_per_rank);
        // A few placements can fail on collision; tolerate 1 %.
        assert!(pop.total_cells() as f64 > 0.99 * expected as f64);
        assert!(pop.total_cells() <= expected);
    }

    #[test]
    fn pairs_create_multi_bit_words() {
        let pop = population(4);
        let pairs = pop.multi_bit_words();
        // 50 pairs per rank x 2 ranks, minus rare collisions with singles
        // that can merge words (making them multi-bit too).
        assert!(pairs >= 90, "only {pairs} multi-bit words");
    }

    #[test]
    fn all_locations_are_within_geometry() {
        let geo = DimmGeometry::default();
        let pop = population(5);
        for w in pop.words() {
            assert!(geo.contains(w.loc), "{} outside geometry", w.loc);
            for c in &w.cells {
                assert!(c.bit < 64);
                assert!(c.base_retention_s > 0.0);
            }
        }
    }

    #[test]
    fn no_duplicate_bits_within_a_word() {
        let pop = population(6);
        for w in pop.words() {
            let mut mask = 0u64;
            for c in &w.cells {
                assert_eq!(
                    mask & (1 << c.bit),
                    0,
                    "duplicate bit {} in {}",
                    c.bit,
                    w.loc
                );
                mask |= 1 << c.bit;
            }
        }
    }

    #[test]
    fn pair_retention_is_longer_and_tighter_than_singles() {
        let pop = population(7);
        let mut singles = Vec::new();
        let mut pairs = Vec::new();
        for w in pop.words() {
            if w.cells.len() == 1 {
                singles.push(w.cells[0].base_retention_s);
            } else {
                pairs.extend(w.cells.iter().map(|c| c.base_retention_s));
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("retention values are finite"));
            v[v.len() / 2]
        };
        let single_median = med(&mut singles);
        let pair_min = pairs.iter().copied().fold(f64::INFINITY, f64::min);
        // Pairs are drawn with sigma 0.15 around 14 s: their minimum stays
        // far above the weakest singles (lognormal sigma 1.0 around 30 s).
        let single_min = singles.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            single_min < pair_min,
            "weakest single {single_min} vs weakest pair {pair_min}"
        );
        assert!((10.0..=80.0).contains(&single_median));
    }

    #[test]
    fn vrt_fraction_is_roughly_configured() {
        let pop = population(8);
        let vrt = pop
            .words()
            .iter()
            .flat_map(|w| &w.cells)
            .filter(|c| c.is_vrt)
            .count();
        let frac = vrt as f64 / pop.total_cells() as f64;
        assert!((0.08..0.22).contains(&frac), "vrt fraction {frac}");
    }

    #[test]
    fn vrt_state_is_deterministic_and_varies_by_nonce() {
        let a = vrt_degraded(1, 100, 7, 0.3);
        let b = vrt_degraded(1, 100, 7, 0.3);
        assert_eq!(a, b);
        let flips = (0..1000).filter(|&n| vrt_degraded(1, n, 7, 0.3)).count();
        assert!(
            (200..400).contains(&flips),
            "degraded in {flips}/1000 windows"
        );
    }

    #[test]
    fn vrt_probability_extremes() {
        assert!(!vrt_degraded(1, 5, 3, 0.0));
        assert!(vrt_degraded(1, 5, 3, 1.1));
    }
}
