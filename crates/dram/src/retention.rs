//! Retention physics: how temperature, supply voltage, stored data and
//! cell-to-cell interference scale a weak cell's retention time.
//!
//! A cell manifests a retention error within a refresh window when its
//! *effective* retention time falls below the refresh period:
//!
//! ```text
//! effective = base_retention
//!           × temp_factor(T)            // Arrhenius-style, halves per ~10 °C
//!           × vdd_factor(V)             // less charge at lower supply
//!           × vrt_state                 // 1.0 or a degraded multiplier
//!           × discharged_mult           // only while discharged (charge gain)
//!           ÷ (1 + intra + inter)       // data-dependent interference
//!           ÷ (1 + disturbance)         // neighbour-row activations
//! ```
//!
//! All coefficients live in [`PhysicsParams`]; the defaults are calibrated so
//! the paper's qualitative results hold under the relaxed operating point
//! (TREFP 2.283 s, VDD 1.428 V): CEs from ≈50 °C, UEs only from ≈62 °C, and
//! the margins of Fig. 14 in plausible positions.

use crate::env::OperatingEnv;
use serde::{Deserialize, Serialize};

/// Tunable coefficients of the retention model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicsParams {
    /// Reference temperature (°C) at which base retention is specified.
    pub ref_temp_c: f64,
    /// Temperature increase (°C) that halves retention (Arrhenius slope;
    /// DRAM literature reports ≈10 °C, cf. Hamamoto et al.).
    pub retention_halving_c: f64,
    /// Nominal supply voltage (V) at which base retention is specified.
    pub nominal_vdd_v: f64,
    /// Exponent of the supply-voltage scaling `(V / V_nom)^k`: lower VDD
    /// stores less charge, shortening retention.
    pub vdd_exponent: f64,
    /// Retention multiplier for a *discharged* cell. Discharged cells can
    /// only fail through slow charge gain, so this is ≫ 1; it bounds the
    /// worst-/best-case pattern ratio (paper: ≈8×).
    pub discharged_retention_mult: f64,
    /// Leakage contribution of each charged physical bitline neighbour
    /// (intra-row interference).
    pub intra_row_coupling: f64,
    /// Leakage contribution of each *opposite-state* cell at the same
    /// physical column in an adjacent row of the same bank: a charged
    /// storage node facing a discharged neighbour sees the largest
    /// node-to-node field and leaks fastest (inter-row interference — what
    /// the 24 KB patterns exploit by discharging the rows around a charged
    /// victim; there is no coupling across banks, which is why 512 KB
    /// patterns gain nothing, Fig. 10).
    pub inter_row_coupling: f64,
    /// Retention multiplier applied while a VRT cell sits in its degraded
    /// state (paper §V-A.1 cites Restle et al. for VRT).
    pub vrt_degraded_mult: f64,
    /// Probability per refresh window that a VRT cell is in the degraded
    /// state.
    pub vrt_degraded_prob: f64,
    /// Fraction of the row-disturbance factor felt by clustered (UE-prone)
    /// defect pairs. Disturbance susceptibility varies orders of magnitude
    /// across cells (Kim et al.); modelling the clustered defects as
    /// comparatively hammer-resistant keeps the UE onset at ≈62 °C for
    /// access viruses too, as the paper observes (§V-A.4: "the worst-case
    /// access patterns manifested UEs only at 62 °C").
    pub pair_disturbance_mult: f64,
}

impl Default for PhysicsParams {
    fn default() -> Self {
        PhysicsParams {
            ref_temp_c: 45.0,
            retention_halving_c: 10.0,
            nominal_vdd_v: 1.5,
            vdd_exponent: 6.0,
            discharged_retention_mult: 40.0,
            intra_row_coupling: 0.10,
            inter_row_coupling: 0.075,
            vrt_degraded_mult: 0.45,
            vrt_degraded_prob: 0.30,
            pair_disturbance_mult: 0.15,
        }
    }
}

impl PhysicsParams {
    /// Temperature scaling factor: retention halves every
    /// [`Self::retention_halving_c`] degrees above the reference.
    pub fn temp_factor(&self, temp_c: f64) -> f64 {
        2f64.powf(-(temp_c - self.ref_temp_c) / self.retention_halving_c)
    }

    /// Supply-voltage scaling factor `(V / V_nom)^k`.
    pub fn vdd_factor(&self, vdd_v: f64) -> f64 {
        (vdd_v / self.nominal_vdd_v).powf(self.vdd_exponent)
    }

    /// Combined environmental scaling for an operating point.
    pub fn env_factor(&self, env: &OperatingEnv) -> f64 {
        self.temp_factor(env.temp_c) * self.vdd_factor(env.vdd_v)
    }

    /// Effective retention of a cell in seconds.
    ///
    /// * `base_s` — base retention at reference conditions;
    /// * `charged` — whether the stored value charges this cell;
    /// * `charged_intra` — number of charged physical bitline neighbours;
    /// * `charged_inter` — number of *opposite-state* (discharged)
    ///   same-column cells in adjacent rows of the same bank;
    /// * `disturbance` — accumulated row-disturbance factor (≥ 0);
    /// * `vrt_degraded` — whether the cell currently sits in its degraded
    ///   VRT state.
    #[allow(clippy::too_many_arguments)]
    pub fn effective_retention_s(
        &self,
        base_s: f64,
        env: &OperatingEnv,
        charged: bool,
        charged_intra: u32,
        charged_inter: u32,
        disturbance: f64,
        vrt_degraded: bool,
    ) -> f64 {
        let mut retention = base_s * self.env_factor(env);
        if vrt_degraded {
            retention *= self.vrt_degraded_mult;
        }
        if charged {
            let interference = 1.0
                + self.intra_row_coupling * charged_intra as f64
                + self.inter_row_coupling * charged_inter as f64;
            retention /= interference * (1.0 + disturbance);
        } else {
            // A discharged cell is immune to leakage *and* to disturbance
            // (there is no stored charge to drain); it can only fail by slow
            // charge gain.
            retention *= self.discharged_retention_mult;
        }
        retention
    }

    /// Whether a cell with the given effective retention fails within one
    /// refresh window.
    pub fn fails(&self, effective_retention_s: f64, env: &OperatingEnv) -> bool {
        effective_retention_s < env.trefp_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params() -> PhysicsParams {
        PhysicsParams::default()
    }

    #[test]
    fn temp_factor_halves_per_step() {
        let p = params();
        assert!((p.temp_factor(45.0) - 1.0).abs() < 1e-12);
        assert!((p.temp_factor(55.0) - 0.5).abs() < 1e-12);
        assert!((p.temp_factor(65.0) - 0.25).abs() < 1e-12);
        assert!((p.temp_factor(35.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn vdd_factor_is_one_at_nominal_and_shrinks_below() {
        let p = params();
        assert!((p.vdd_factor(1.5) - 1.0).abs() < 1e-12);
        let low = p.vdd_factor(1.428);
        assert!(low < 1.0 && low > 0.5, "vdd factor {low}");
    }

    #[test]
    fn charged_cells_leak_discharged_cells_barely() {
        let p = params();
        let env = OperatingEnv::relaxed(55.0);
        let charged = p.effective_retention_s(10.0, &env, true, 0, 0, 0.0, false);
        let discharged = p.effective_retention_s(10.0, &env, false, 0, 0, 0.0, false);
        assert!(discharged / charged >= p.discharged_retention_mult * 0.99);
    }

    #[test]
    fn interference_reduces_retention_monotonically() {
        let p = params();
        let env = OperatingEnv::relaxed(60.0);
        let r0 = p.effective_retention_s(10.0, &env, true, 0, 0, 0.0, false);
        let r1 = p.effective_retention_s(10.0, &env, true, 1, 0, 0.0, false);
        let r2 = p.effective_retention_s(10.0, &env, true, 2, 1, 0.0, false);
        assert!(r0 > r1 && r1 > r2);
    }

    #[test]
    fn disturbance_only_affects_charged_cells() {
        let p = params();
        let env = OperatingEnv::relaxed(60.0);
        let quiet = p.effective_retention_s(10.0, &env, true, 0, 0, 0.0, false);
        let hammered = p.effective_retention_s(10.0, &env, true, 0, 0, 1.0, false);
        assert!((quiet / hammered - 2.0).abs() < 1e-9);
        let d_quiet = p.effective_retention_s(10.0, &env, false, 0, 0, 0.0, false);
        let d_hammer = p.effective_retention_s(10.0, &env, false, 0, 0, 1.0, false);
        assert_eq!(d_quiet, d_hammer);
    }

    #[test]
    fn vrt_degraded_state_shortens_retention() {
        let p = params();
        let env = OperatingEnv::relaxed(60.0);
        let good = p.effective_retention_s(10.0, &env, true, 0, 0, 0.0, false);
        let bad = p.effective_retention_s(10.0, &env, true, 0, 0, 0.0, true);
        assert!((bad / good - p.vrt_degraded_mult).abs() < 1e-9);
    }

    #[test]
    fn failure_is_threshold_on_trefp() {
        let p = params();
        let env = OperatingEnv::relaxed(60.0);
        assert!(p.fails(env.trefp_s * 0.99, &env));
        assert!(!p.fails(env.trefp_s * 1.01, &env));
    }

    #[test]
    fn relaxed_point_is_much_more_stressful_than_nominal() {
        // The combination of 35x TREFP and lowered VDD must dominate: a cell
        // that barely survives nominal 64 ms fails hard at 2.283 s.
        let p = params();
        let nominal = OperatingEnv::nominal(55.0);
        let relaxed = OperatingEnv::relaxed(55.0);
        let base = 1.0; // a weak cell: 1 s base retention
        let eff_nom = p.effective_retention_s(base, &nominal, true, 0, 0, 0.0, false);
        let eff_rel = p.effective_retention_s(base, &relaxed, true, 0, 0, 0.0, false);
        assert!(!p.fails(eff_nom, &nominal));
        assert!(p.fails(eff_rel, &relaxed));
    }

    proptest! {
        #[test]
        fn retention_is_positive_and_monotone_in_temperature(
            base in 0.01f64..100.0, t1 in 40.0f64..80.0, t2 in 40.0f64..80.0,
        ) {
            let p = params();
            let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
            let env_lo = OperatingEnv::relaxed(lo);
            let env_hi = OperatingEnv::relaxed(hi);
            let r_lo = p.effective_retention_s(base, &env_lo, true, 1, 1, 0.5, false);
            let r_hi = p.effective_retention_s(base, &env_hi, true, 1, 1, 0.5, false);
            prop_assert!(r_lo > 0.0 && r_hi > 0.0);
            prop_assert!(r_hi <= r_lo + 1e-12);
        }
    }
}
