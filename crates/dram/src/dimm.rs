//! The simulated DIMM: contents, hidden topology, weak cells and the
//! per-refresh-window fault evaluation.

use crate::address::AddressMap;
use crate::contents::RowStore;
use crate::disturb::{ActivationCounts, DisturbanceModel};
use crate::env::OperatingEnv;
use crate::events::WordEvent;
use crate::faults::FaultSet;
use crate::geometry::{DimmGeometry, Location, RowKey};
use crate::retention::PhysicsParams;
use crate::topology::{Topology, TopologyConfig};
use crate::weak::{vrt_degraded, WeakCellConfig, WeakCellPopulation};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Full configuration of a simulated DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DimmConfig {
    /// Array organization.
    pub geometry: DimmGeometry,
    /// Hidden-layout parameters (scrambling, remapping).
    pub topology: TopologyConfig,
    /// Retention-physics coefficients.
    pub physics: PhysicsParams,
    /// Weak-cell population parameters.
    pub weak: WeakCellConfig,
    /// Row-disturbance coefficients.
    pub disturbance: DisturbanceModel,
    /// The word value unwritten memory reads as.
    pub default_fill: u64,
}

/// Cached per-weak-cell state that depends only on stored data (not on the
/// operating point or on activations): whether the cell is charged and the
/// data-dependent interference multiplier.
#[derive(Debug, Clone, Copy)]
struct CellState {
    charged: bool,
    interference: f64,
}

/// A simulated DIMM.
///
/// The public surface mirrors what a platform can do with real memory —
/// write words, read words, activate rows (implicitly, via the platform's
/// access accounting) and observe per-window fault events. The hidden
/// internals (topology, weak cells) are reachable read-only for calibration
/// and tests, mirroring a vendor's fab-level knowledge; the DStress
/// framework layers never touch them.
#[derive(Debug, Clone)]
pub struct Dimm {
    config: DimmConfig,
    seed: u64,
    topology: Topology,
    population: WeakCellPopulation,
    contents: RowStore,
    map: AddressMap,
    cache: Vec<Vec<CellState>>,
    cache_generation: Option<u64>,
    faults: FaultSet,
}

impl Dimm {
    /// Builds a DIMM from a configuration and a device seed (the paper's
    /// DIMM-to-DIMM variation: each physical module is a different seed).
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails validation.
    pub fn new(config: DimmConfig, seed: u64) -> Self {
        config.geometry.validate().expect("invalid DIMM geometry");
        let topology = Topology::new(config.geometry, config.topology, seed);
        let population = WeakCellPopulation::sample(config.geometry, &config.weak, seed);
        let contents = RowStore::new(config.geometry, config.default_fill);
        let map = AddressMap::new(config.geometry);
        let cache = population
            .words()
            .iter()
            .map(|w| Vec::with_capacity(w.cells.len()))
            .collect();
        Dimm {
            config,
            seed,
            topology,
            population,
            contents,
            map,
            cache,
            cache_generation: None,
            faults: FaultSet::new(),
        }
    }

    /// The DIMM's geometry.
    pub fn geometry(&self) -> DimmGeometry {
        self.config.geometry
    }

    /// The configuration the DIMM was built with.
    pub fn config(&self) -> &DimmConfig {
        &self.config
    }

    /// The device seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The address-mapping function of this DIMM (paper Fig. 2).
    pub fn address_map(&self) -> AddressMap {
        self.map
    }

    /// Read-only view of the hidden weak-cell population. **Calibration and
    /// test use only** — the DStress framework never inspects this,
    /// mirroring the paper's no-internal-knowledge premise.
    pub fn population(&self) -> &WeakCellPopulation {
        &self.population
    }

    /// Read-only view of the hidden topology. **Calibration and test use
    /// only.**
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Injects a logical (hard) fault into the array — see
    /// [`crate::faults`] for the fault classes. Used by the MARCH-test
    /// experiments; the GA campaigns run on fault-free devices, as the
    /// paper's DIMMs passed their vendor tests.
    pub fn inject_fault(&mut self, fault: crate::faults::LogicalFault) {
        self.faults.inject(fault);
    }

    /// The injected logical faults.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Writes one 64-bit word (honouring injected transition and coupling
    /// faults).
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the geometry.
    pub fn write_word(&mut self, loc: Location, value: u64) {
        if self.faults.is_empty() {
            self.contents.write_word(loc, value);
            return;
        }
        let old = self.contents.read_word(loc);
        let stored = self.faults.apply_on_write(loc, old, value);
        self.contents.write_word(loc, stored);
        for (victim, bit, forced) in self.faults.coupling_side_effects(loc, old, stored) {
            let current = self.contents.read_word(victim);
            let new = if forced {
                current | (1 << bit)
            } else {
                current & !(1 << bit)
            };
            self.contents.write_word(victim, new);
        }
    }

    /// Reads one 64-bit word (logical contents; transient retention errors
    /// are corrected by the platform's scrubbing, so reads return what was
    /// written — except where an injected stuck-at fault corrupts the
    /// read).
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the geometry.
    pub fn read_word(&self, loc: Location) -> u64 {
        let value = self.contents.read_word(loc);
        if self.faults.is_empty() {
            value
        } else {
            self.faults.apply_on_read(loc, value)
        }
    }

    /// Overwrites a whole row at once (fast path for fill phases).
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the row size.
    pub fn write_row(&mut self, row: RowKey, words: &[u64]) {
        self.contents.write_row(row, words);
    }

    /// Restores all memory to the default fill.
    pub fn clear_contents(&mut self) {
        self.contents.clear();
    }

    /// Number of rows the workload has materialized.
    pub fn materialized_rows(&self) -> usize {
        self.contents.materialized_rows()
    }

    /// Advances one refresh window under the given operating point and
    /// activation profile, returning every word whose stored bits leaked.
    ///
    /// `nonce` identifies the (run, window) pair and seeds the VRT state;
    /// repeat runs with different nonces to observe run-to-run variation
    /// (the paper averages each virus over 10 runs, §V-A.1).
    ///
    /// The platform is expected to scrub-correct CE words after each window
    /// (patrol scrubbing), so contents are not mutated here; persistent weak
    /// cells re-fail every window, which is how EDAC accumulates counts on
    /// the real server.
    pub fn advance_window(
        &mut self,
        env: &OperatingEnv,
        acts: &ActivationCounts,
        nonce: u64,
    ) -> Vec<WordEvent> {
        let disturbance = self.disturbance_profile(acts);
        self.advance_window_profiled(env, &disturbance, nonce)
    }

    /// Precomputes the per-weak-word disturbance factors for an activation
    /// profile (aligned with the population's word order). The profile is
    /// invariant across the refresh windows of a run, so callers evaluating
    /// many windows compute it once and use
    /// [`Self::advance_window_profiled`].
    pub fn disturbance_profile(&self, acts: &ActivationCounts) -> Vec<f64> {
        let by_row = self.disturbance_by_row(acts);
        self.population
            .words()
            .iter()
            .map(|w| {
                if by_row.is_empty() {
                    0.0
                } else {
                    by_row.get(&w.loc.row_key()).copied().unwrap_or(0.0)
                }
            })
            .collect()
    }

    /// [`Self::advance_window`] with a precomputed disturbance profile
    /// (see [`Self::disturbance_profile`]).
    ///
    /// # Panics
    ///
    /// Panics if the profile length does not match the weak-word count.
    pub fn advance_window_profiled(
        &mut self,
        env: &OperatingEnv,
        disturbance: &[f64],
        nonce: u64,
    ) -> Vec<WordEvent> {
        assert_eq!(
            disturbance.len(),
            self.population.words().len(),
            "disturbance profile length mismatch"
        );
        self.refresh_cache_if_stale();
        let physics = &self.config.physics;
        let env_factor = physics.env_factor(env);
        let mut events = Vec::new();
        for ((word, states), &row_disturb) in self
            .population
            .words()
            .iter()
            .zip(&self.cache)
            .zip(disturbance)
        {
            // Clustered defect pairs are comparatively hammer-resistant
            // (see PhysicsParams::pair_disturbance_mult).
            let word_disturb = if word.cells.len() >= 2 {
                row_disturb * physics.pair_disturbance_mult
            } else {
                row_disturb
            };
            let mut flip_mask = 0u64;
            for (cell, state) in word.cells.iter().zip(states) {
                let mut retention = cell.base_retention_s * env_factor;
                if cell.is_vrt
                    && vrt_degraded(self.seed, nonce, cell.vrt_index, physics.vrt_degraded_prob)
                {
                    retention *= physics.vrt_degraded_mult;
                }
                if state.charged {
                    retention /= state.interference * (1.0 + word_disturb);
                } else {
                    retention *= physics.discharged_retention_mult;
                }
                if retention < env.trefp_s {
                    flip_mask |= 1u64 << cell.bit;
                }
            }
            if flip_mask != 0 {
                let written = self.contents.read_word(word.loc);
                events.push(WordEvent {
                    loc: word.loc,
                    written,
                    flip_mask,
                });
            }
        }
        events
    }

    /// Recomputes the data-dependent per-cell state when contents changed.
    fn refresh_cache_if_stale(&mut self) {
        if self.cache_generation == Some(self.contents.generation()) {
            return;
        }
        let physics = self.config.physics;
        let geometry = self.config.geometry;
        let mut cache: Vec<Vec<CellState>> = Vec::with_capacity(self.population.words().len());
        for word in self.population.words() {
            let row = word.loc.row_key();
            let mut states = Vec::with_capacity(word.cells.len());
            for cell in &word.cells {
                let logical = word.loc.col * 64 + cell.bit as u32;
                let value = self.contents.read_bit(row, logical);
                let phys = self.topology.physical_bit(row, logical);
                let kind = self.topology.kind_at_physical(phys);
                let charged = kind.charged(value);
                let interference = if charged {
                    let mut intra = 0u32;
                    let (left, right) = self.topology.physical_neighbours(phys);
                    for np in [left, right].into_iter().flatten() {
                        if self.physical_cell_charged(row, np) {
                            intra += 1;
                        }
                    }
                    // Inter-row interference: a charged victim node facing a
                    // *discharged* node in the adjacent row of the same bank
                    // sees the largest field and leaks fastest. (A uniform
                    // worst-word fill charges everything and gets none of
                    // this — which is exactly why the per-row 24 KB patterns
                    // can beat it, Fig. 9.)
                    let mut inter = 0u32;
                    for adj in [row.row.checked_sub(1), row.row.checked_add(1)]
                        .into_iter()
                        .flatten()
                        .filter(|&r| r < geometry.rows_per_bank)
                    {
                        let adj_row = RowKey::new(row.rank, row.bank, adj);
                        if !self.physical_cell_charged(adj_row, phys) {
                            inter += 1;
                        }
                    }
                    1.0 + physics.intra_row_coupling * intra as f64
                        + physics.inter_row_coupling * inter as f64
                } else {
                    1.0
                };
                states.push(CellState {
                    charged,
                    interference,
                });
            }
            cache.push(states);
        }
        self.cache = cache;
        self.cache_generation = Some(self.contents.generation());
    }

    /// Whether the cell at a *physical* bitline position of a row is
    /// charged, given current contents.
    fn physical_cell_charged(&self, row: RowKey, phys: u32) -> bool {
        let logical = self.topology.logical_bit(row, phys);
        let value = self.contents.read_bit(row, logical);
        self.topology.kind_at_physical(phys).charged(value)
    }

    /// Precomputes the disturbance factor for every row hosting weak cells.
    ///
    /// Activations are bucketed per (rank, bank) first so each victim row
    /// only scans the aggressors that can actually disturb it — the full
    /// cross-product is quadratic in row count and dominates window
    /// evaluation otherwise.
    fn disturbance_by_row(&self, acts: &ActivationCounts) -> HashMap<RowKey, f64> {
        let mut map = HashMap::new();
        if acts.total() == 0 {
            return map;
        }
        let mut by_bank: HashMap<(u8, u8), Vec<(u32, u64)>> = HashMap::new();
        for (row, count) in acts.iter() {
            by_bank
                .entry((row.rank, row.bank))
                .or_default()
                .push((row.row, count));
        }
        let model = &self.config.disturbance;
        for word in self.population.words() {
            let row = word.loc.row_key();
            map.entry(row).or_insert_with(|| {
                let Some(bank_acts) = by_bank.get(&(row.rank, row.bank)) else {
                    return 0.0;
                };
                let mut hammer = 0.0;
                for &(aggressor, count) in bank_acts {
                    if aggressor == row.row {
                        continue;
                    }
                    let distance = (aggressor as f64 - row.row as f64).abs();
                    hammer += count as f64 * (-distance / model.decay_rows).exp();
                }
                model.factor_from_hammer(hammer)
            });
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worst-case word under the TTAA layout: LSB-first bit string
    /// `1100 1100 …` = hex 0x3333….
    const WORST: u64 = 0x3333_3333_3333_3333;
    /// The opposite phase discharges every unscrambled cell.
    const BEST: u64 = 0xCCCC_CCCC_CCCC_CCCC;

    fn dimm(seed: u64) -> Dimm {
        Dimm::new(DimmConfig::default(), seed)
    }

    fn fill_all(d: &mut Dimm, word: u64) {
        let geo = d.geometry();
        let row_words = vec![word; geo.words_per_row()];
        for rank in 0..geo.ranks {
            for bank in 0..geo.banks {
                for row in 0..geo.rows_per_bank {
                    d.write_row(RowKey::new(rank, bank, row), &row_words);
                }
            }
        }
    }

    fn count_flips(events: &[WordEvent]) -> u64 {
        events.iter().map(|e| e.flipped_bits() as u64).sum()
    }

    #[test]
    fn no_errors_at_nominal_parameters() {
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let env = OperatingEnv::nominal(55.0);
        let events = d.advance_window(&env, &ActivationCounts::new(), 0);
        assert!(
            events.is_empty(),
            "{} events at nominal parameters",
            events.len()
        );
    }

    #[test]
    fn relaxed_parameters_manifest_errors() {
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let env = OperatingEnv::relaxed(60.0);
        let events = d.advance_window(&env, &ActivationCounts::new(), 0);
        assert!(!events.is_empty(), "relaxed 60C should manifest errors");
    }

    #[test]
    fn worst_pattern_beats_uniform_patterns() {
        // The 1100 pattern charges ~every cell; all-0s / all-1s /
        // checkerboard charge ~half (paper §V-A.1).
        let env = OperatingEnv::relaxed(60.0);
        let mut counts = HashMap::new();
        for (name, word) in [
            ("worst", WORST),
            ("all0", 0u64),
            ("all1", u64::MAX),
            ("cb", 0x5555_5555_5555_5555),
        ] {
            let mut d = dimm(11);
            fill_all(&mut d, word);
            let events = d.advance_window(&env, &ActivationCounts::new(), 0);
            counts.insert(name, count_flips(&events));
        }
        let worst = counts["worst"];
        for name in ["all0", "all1", "cb"] {
            assert!(
                worst as f64 >= 1.45 * counts[name] as f64,
                "worst={} vs {}={}",
                worst,
                name,
                counts[name]
            );
        }
    }

    #[test]
    fn best_pattern_is_roughly_8x_below_worst() {
        let env = OperatingEnv::relaxed(60.0);
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let worst = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
        let mut d = dimm(11);
        fill_all(&mut d, BEST);
        let best = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
        let ratio = worst as f64 / best.max(1) as f64;
        assert!(
            (3.0..30.0).contains(&ratio),
            "worst/best ratio {ratio} (worst={worst} best={best})"
        );
    }

    #[test]
    fn hammering_neighbour_rows_increases_errors() {
        let env = OperatingEnv::relaxed(60.0);
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let quiet = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
        let mut acts = ActivationCounts::new();
        let geo = d.geometry();
        for rank in 0..geo.ranks {
            for bank in 0..geo.banks {
                for row in 0..geo.rows_per_bank {
                    acts.add(RowKey::new(rank, bank, row), 3000);
                }
            }
        }
        let hammered = count_flips(&d.advance_window(&env, &acts, 0));
        assert!(
            hammered as f64 > 1.2 * quiet as f64,
            "hammered={hammered} quiet={quiet}"
        );
    }

    #[test]
    fn temperature_increases_error_count_monotonically() {
        let mut previous = 0u64;
        for temp in [50.0, 55.0, 60.0, 65.0, 70.0] {
            let mut d = dimm(13);
            fill_all(&mut d, WORST);
            let env = OperatingEnv::relaxed(temp);
            let flips = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
            assert!(
                flips >= previous,
                "errors dropped from {previous} to {flips} at {temp}C"
            );
            previous = flips;
        }
        assert!(previous > 0);
    }

    #[test]
    fn multi_bit_words_appear_only_at_high_temperature() {
        let worst_multi = |temp: f64| {
            let mut d = dimm(17);
            fill_all(&mut d, WORST);
            let env = OperatingEnv::relaxed(temp);
            d.advance_window(&env, &ActivationCounts::new(), 0)
                .iter()
                .filter(|e| e.flipped_bits() >= 2)
                .count()
        };
        assert_eq!(worst_multi(55.0), 0, "UE-prone pairs must not fail at 55C");
        assert!(worst_multi(66.0) > 0, "UE-prone pairs must fail by 66C");
    }

    #[test]
    fn run_to_run_variation_from_vrt() {
        let env = OperatingEnv::relaxed(60.0);
        let mut d = dimm(19);
        fill_all(&mut d, WORST);
        let counts: Vec<u64> = (0..10)
            .map(|run| count_flips(&d.advance_window(&env, &ActivationCounts::new(), run)))
            .collect();
        let distinct: std::collections::HashSet<_> = counts.iter().collect();
        assert!(
            distinct.len() > 1,
            "VRT should cause run-to-run variation: {counts:?}"
        );
    }

    #[test]
    fn different_seeds_have_different_error_counts() {
        let env = OperatingEnv::relaxed(60.0);
        let count_for = |seed| {
            let mut d = dimm(seed);
            fill_all(&mut d, WORST);
            count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0))
        };
        assert_ne!(count_for(1), count_for(2));
    }

    #[test]
    fn events_report_written_data() {
        let env = OperatingEnv::relaxed(65.0);
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        for e in d.advance_window(&env, &ActivationCounts::new(), 0) {
            assert_eq!(e.written, WORST);
            assert_ne!(e.flip_mask, 0);
            assert_ne!(e.corrupted(), e.written);
        }
    }

    #[test]
    fn cache_invalidation_on_write() {
        let env = OperatingEnv::relaxed(60.0);
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let with_worst = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
        fill_all(&mut d, BEST);
        let with_best = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
        assert!(with_worst > with_best, "cache must follow contents changes");
    }
}
