//! The simulated DIMM: contents, hidden topology, weak cells and the
//! per-refresh-window fault evaluation.

use crate::address::AddressMap;
use crate::contents::RowStore;
use crate::disturb::{ActivationCounts, DisturbanceModel};
use crate::env::OperatingEnv;
use crate::events::WordEvent;
use crate::faults::FaultSet;
use crate::geometry::{DimmGeometry, Location, RowKey};
use crate::plan::{PlanError, RunPlan, VrtWord};
use crate::retention::PhysicsParams;
use crate::topology::{Topology, TopologyConfig};
use crate::weak::{vrt_degraded, WeakCellConfig, WeakCellPopulation};
use serde::{Deserialize, Serialize};

/// Full configuration of a simulated DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DimmConfig {
    /// Array organization.
    pub geometry: DimmGeometry,
    /// Hidden-layout parameters (scrambling, remapping).
    pub topology: TopologyConfig,
    /// Retention-physics coefficients.
    pub physics: PhysicsParams,
    /// Weak-cell population parameters.
    pub weak: WeakCellConfig,
    /// Row-disturbance coefficients.
    pub disturbance: DisturbanceModel,
    /// The word value unwritten memory reads as.
    pub default_fill: u64,
}

/// Cached per-weak-cell state that depends only on stored data (not on the
/// operating point or on activations): whether the cell is charged and the
/// data-dependent interference multiplier.
///
/// Stored structure-of-arrays style: one flat array per attribute, with
/// `offsets[w]..offsets[w + 1]` covering the cells of weak word `w`. The
/// flat layout keeps the window-evaluation and plan-construction loops on
/// two dense arrays instead of chasing one heap allocation per weak word.
#[derive(Debug, Clone, Default)]
struct CellCache {
    /// Per-word start offsets into the flat arrays (`words + 1` entries).
    offsets: Vec<u32>,
    /// Whether each cell currently holds charge.
    charged: Vec<bool>,
    /// Data-dependent interference multiplier of each cell (1.0 when
    /// discharged).
    interference: Vec<f64>,
}

/// A simulated DIMM.
///
/// The public surface mirrors what a platform can do with real memory —
/// write words, read words, activate rows (implicitly, via the platform's
/// access accounting) and observe per-window fault events. The hidden
/// internals (topology, weak cells) are reachable read-only for calibration
/// and tests, mirroring a vendor's fab-level knowledge; the DStress
/// framework layers never touch them.
#[derive(Debug, Clone)]
pub struct Dimm {
    config: DimmConfig,
    seed: u64,
    topology: Topology,
    population: WeakCellPopulation,
    contents: RowStore,
    map: AddressMap,
    cache: CellCache,
    cache_generation: Option<u64>,
    faults: FaultSet,
}

impl Dimm {
    /// Builds a DIMM from a configuration and a device seed (the paper's
    /// DIMM-to-DIMM variation: each physical module is a different seed).
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails validation.
    pub fn new(config: DimmConfig, seed: u64) -> Self {
        config.geometry.validate().expect("invalid DIMM geometry");
        let topology = Topology::new(config.geometry, config.topology, seed);
        let population = WeakCellPopulation::sample(config.geometry, &config.weak, seed);
        let contents = RowStore::new(config.geometry, config.default_fill);
        let map = AddressMap::new(config.geometry);
        Dimm {
            config,
            seed,
            topology,
            population,
            contents,
            map,
            cache: CellCache::default(),
            cache_generation: None,
            faults: FaultSet::new(),
        }
    }

    /// The DIMM's geometry.
    pub fn geometry(&self) -> DimmGeometry {
        self.config.geometry
    }

    /// The configuration the DIMM was built with.
    pub fn config(&self) -> &DimmConfig {
        &self.config
    }

    /// The device seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The address-mapping function of this DIMM (paper Fig. 2).
    pub fn address_map(&self) -> AddressMap {
        self.map
    }

    /// Read-only view of the hidden weak-cell population. **Calibration and
    /// test use only** — the DStress framework never inspects this,
    /// mirroring the paper's no-internal-knowledge premise.
    pub fn population(&self) -> &WeakCellPopulation {
        &self.population
    }

    /// Read-only view of the hidden topology. **Calibration and test use
    /// only.**
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Injects a logical (hard) fault into the array — see
    /// [`crate::faults`] for the fault classes. Used by the MARCH-test
    /// experiments; the GA campaigns run on fault-free devices, as the
    /// paper's DIMMs passed their vendor tests.
    pub fn inject_fault(&mut self, fault: crate::faults::LogicalFault) {
        self.faults.inject(fault);
    }

    /// The injected logical faults.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Writes one 64-bit word (honouring injected transition and coupling
    /// faults).
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the geometry.
    pub fn write_word(&mut self, loc: Location, value: u64) {
        if self.faults.is_empty() {
            self.contents.write_word(loc, value);
            return;
        }
        let old = self.contents.read_word(loc);
        let stored = self.faults.apply_on_write(loc, old, value);
        self.contents.write_word(loc, stored);
        for (victim, bit, forced) in self.faults.coupling_side_effects(loc, old, stored) {
            let current = self.contents.read_word(victim);
            let new = if forced {
                current | (1 << bit)
            } else {
                current & !(1 << bit)
            };
            self.contents.write_word(victim, new);
        }
    }

    /// Reads one 64-bit word (logical contents; transient retention errors
    /// are corrected by the platform's scrubbing, so reads return what was
    /// written — except where an injected stuck-at fault corrupts the
    /// read).
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the geometry.
    pub fn read_word(&self, loc: Location) -> u64 {
        let value = self.contents.read_word(loc);
        if self.faults.is_empty() {
            value
        } else {
            self.faults.apply_on_read(loc, value)
        }
    }

    /// Overwrites a whole row at once (fast path for fill phases).
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the row size.
    pub fn write_row(&mut self, row: RowKey, words: &[u64]) {
        self.contents.write_row(row, words);
    }

    /// Writes a contiguous run of words within one row: one row lookup
    /// instead of one per word. Falls back to per-word writes when logical
    /// faults are injected (fault side-effects are word-granular).
    ///
    /// # Panics
    ///
    /// Panics if the span starts outside the geometry or runs past the end
    /// of the row.
    pub fn write_words(&mut self, start: Location, values: &[u64]) {
        if self.faults.is_empty() {
            self.contents.write_words(start, values);
        } else {
            for (i, &value) in values.iter().enumerate() {
                let loc = Location::new(start.rank, start.bank, start.row, start.col + i as u32);
                self.write_word(loc, value);
            }
        }
    }

    /// Reads a contiguous run of words within one row: one row lookup
    /// instead of one per word. Falls back to per-word reads when logical
    /// faults are injected (stuck-at corruption is word-granular).
    ///
    /// # Panics
    ///
    /// Panics if the span starts outside the geometry or runs past the end
    /// of the row.
    pub fn read_words(&self, start: Location, out: &mut [u64]) {
        if self.faults.is_empty() {
            self.contents.read_words(start, out);
        } else {
            for (i, slot) in out.iter_mut().enumerate() {
                let loc = Location::new(start.rank, start.bank, start.row, start.col + i as u32);
                *slot = self.read_word(loc);
            }
        }
    }

    /// The contents generation counter — bumped whenever stored bits
    /// change. A [`RunPlan`] is valid only for the generation it was built
    /// against.
    pub fn contents_generation(&self) -> u64 {
        self.contents.generation()
    }

    /// Restores all memory to the default fill.
    pub fn clear_contents(&mut self) {
        self.contents.clear();
    }

    /// Number of rows the workload has materialized.
    pub fn materialized_rows(&self) -> usize {
        self.contents.materialized_rows()
    }

    /// Advances one refresh window under the given operating point and
    /// activation profile, returning every word whose stored bits leaked.
    ///
    /// `nonce` identifies the (run, window) pair and seeds the VRT state;
    /// repeat runs with different nonces to observe run-to-run variation
    /// (the paper averages each virus over 10 runs, §V-A.1).
    ///
    /// The platform is expected to scrub-correct CE words after each window
    /// (patrol scrubbing), so contents are not mutated here; persistent weak
    /// cells re-fail every window, which is how EDAC accumulates counts on
    /// the real server.
    pub fn advance_window(
        &mut self,
        env: &OperatingEnv,
        acts: &ActivationCounts,
        nonce: u64,
    ) -> Vec<WordEvent> {
        let disturbance = self.disturbance_profile(acts);
        self.advance_window_profiled(env, &disturbance, nonce)
    }

    /// Precomputes the per-weak-word disturbance factors for an activation
    /// profile (aligned with the population's word order). The profile is
    /// invariant across the refresh windows of a run, so callers evaluating
    /// many windows compute it once and use
    /// [`Self::advance_window_profiled`] or [`Self::prepare_run`].
    ///
    /// Activations are bucketed per (rank, bank) and sorted by row index so
    /// each victim row scans only the aggressors that can disturb it and the
    /// hammer sum always accumulates in the same order (floating-point
    /// addition is order-sensitive; a deterministic order keeps repeat
    /// evaluations bit-identical). The population is sorted by location, so
    /// words sharing a row are consecutive and the per-row factor is
    /// memoized across them.
    pub fn disturbance_profile(&self, acts: &ActivationCounts) -> Vec<f64> {
        let words = self.population.words();
        if acts.total() == 0 {
            return vec![0.0; words.len()];
        }
        let geo = self.config.geometry;
        let banks = geo.banks as usize;
        let mut by_bank: Vec<Vec<(u32, u64)>> = vec![Vec::new(); geo.ranks as usize * banks];
        for (row, count) in acts.iter() {
            // Aggressors outside the geometry share a bank with no victim.
            if row.rank < geo.ranks && row.bank < geo.banks {
                by_bank[row.rank as usize * banks + row.bank as usize].push((row.row, count));
            }
        }
        for bank_acts in &mut by_bank {
            bank_acts.sort_unstable();
        }
        let model = &self.config.disturbance;
        let mut profile = Vec::with_capacity(words.len());
        let mut memo: Option<(RowKey, f64)> = None;
        for word in words {
            let row = word.loc.row_key();
            let factor = match memo {
                Some((r, f)) if r == row => f,
                _ => {
                    let bank_acts = &by_bank[row.rank as usize * banks + row.bank as usize];
                    let mut hammer = 0.0;
                    for &(aggressor, count) in bank_acts {
                        if aggressor == row.row {
                            continue;
                        }
                        let distance = (aggressor as f64 - row.row as f64).abs();
                        hammer += count as f64 * (-distance / model.decay_rows).exp();
                    }
                    let f = model.factor_from_hammer(hammer);
                    memo = Some((row, f));
                    f
                }
            };
            profile.push(factor);
        }
        profile
    }

    /// [`Self::advance_window`] with a precomputed disturbance profile
    /// (see [`Self::disturbance_profile`]).
    ///
    /// This is the **reference** per-cell loop: it re-evaluates the full
    /// retention expression for every weak cell each window. Multi-window
    /// runs should build a [`RunPlan`] with [`Self::prepare_run`] and call
    /// [`Self::advance_window_planned`] instead, which produces bit-identical
    /// events at a fraction of the cost; this loop stays as the oracle the
    /// differential tests compare against.
    ///
    /// # Panics
    ///
    /// Panics if the profile length does not match the weak-word count.
    pub fn advance_window_profiled(
        &mut self,
        env: &OperatingEnv,
        disturbance: &[f64],
        nonce: u64,
    ) -> Vec<WordEvent> {
        assert_eq!(
            disturbance.len(),
            self.population.words().len(),
            "disturbance profile length mismatch"
        );
        self.refresh_cache_if_stale();
        let physics = &self.config.physics;
        let env_factor = physics.env_factor(env);
        let mut events = Vec::new();
        for (w, (word, &row_disturb)) in self.population.words().iter().zip(disturbance).enumerate()
        {
            // Clustered defect pairs are comparatively hammer-resistant
            // (see PhysicsParams::pair_disturbance_mult).
            let word_disturb = if word.cells.len() >= 2 {
                row_disturb * physics.pair_disturbance_mult
            } else {
                row_disturb
            };
            let base = self.cache.offsets[w] as usize;
            let mut flip_mask = 0u64;
            for (i, cell) in word.cells.iter().enumerate() {
                let mut retention = cell.base_retention_s * env_factor;
                if cell.is_vrt
                    && vrt_degraded(self.seed, nonce, cell.vrt_index, physics.vrt_degraded_prob)
                {
                    retention *= physics.vrt_degraded_mult;
                }
                if self.cache.charged[base + i] {
                    retention /= self.cache.interference[base + i] * (1.0 + word_disturb);
                } else {
                    retention *= physics.discharged_retention_mult;
                }
                if retention < env.trefp_s {
                    flip_mask |= 1u64 << cell.bit;
                }
            }
            if flip_mask != 0 {
                let written = self.contents.read_word(word.loc);
                events.push(WordEvent {
                    loc: word.loc,
                    written,
                    flip_mask,
                });
            }
        }
        events
    }

    /// Builds a [`RunPlan`] for one run: a fixed operating point and
    /// disturbance profile over the current contents.
    ///
    /// For every weak cell the flip decision `retention < trefp` is
    /// evaluated **here**, once, for both VRT states — using exactly the
    /// floating-point expression sequence of
    /// [`Self::advance_window_profiled`], so the resulting plan reproduces
    /// the reference loop's events bit for bit. Cells whose decision does
    /// not depend on the VRT draw collapse into per-word static flip masks
    /// (or vanish entirely); only the cells whose decision differs between
    /// the two VRT states remain for per-window work.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::IndexOverflow`] if the weak-cell population is
    /// too large for the plan's `u32` index layout (beyond 2^32
    /// VRT-contingent cells or interleaved static events — unreachable for
    /// any physical DIMM, but checked rather than silently truncated into
    /// a wrong-but-plausible plan).
    ///
    /// # Panics
    ///
    /// Panics if the profile length does not match the weak-word count.
    pub fn prepare_run(
        &mut self,
        env: &OperatingEnv,
        disturbance: &[f64],
    ) -> Result<RunPlan, PlanError> {
        assert_eq!(
            disturbance.len(),
            self.population.words().len(),
            "disturbance profile length mismatch"
        );
        self.refresh_cache_if_stale();
        let physics = &self.config.physics;
        let env_factor = physics.env_factor(env);
        let mut static_events = Vec::new();
        let mut vrt_words = Vec::new();
        let mut bit_masks = Vec::new();
        let mut bit_indices = Vec::new();
        let mut bit_flip_when_degraded = Vec::new();
        let mut statics_since_vrt = 0u32;
        for (w, (word, &row_disturb)) in self.population.words().iter().zip(disturbance).enumerate()
        {
            let word_disturb = if word.cells.len() >= 2 {
                row_disturb * physics.pair_disturbance_mult
            } else {
                row_disturb
            };
            let base = self.cache.offsets[w] as usize;
            let bits_start = bit_masks.len();
            let mut base_mask = 0u64;
            for (i, cell) in word.cells.iter().enumerate() {
                let charged = self.cache.charged[base + i];
                let interference = self.cache.interference[base + i];
                let flips = |mut retention: f64| {
                    if charged {
                        retention /= interference * (1.0 + word_disturb);
                    } else {
                        retention *= physics.discharged_retention_mult;
                    }
                    retention < env.trefp_s
                };
                let flip_normal = flips(cell.base_retention_s * env_factor);
                if cell.is_vrt {
                    let flip_degraded =
                        flips(cell.base_retention_s * env_factor * physics.vrt_degraded_mult);
                    if flip_degraded == flip_normal {
                        if flip_normal {
                            base_mask |= 1u64 << cell.bit;
                        }
                    } else {
                        bit_masks.push(1u64 << cell.bit);
                        bit_indices.push(cell.vrt_index);
                        bit_flip_when_degraded.push(flip_degraded);
                    }
                } else if flip_normal {
                    base_mask |= 1u64 << cell.bit;
                }
            }
            let bits_end = bit_masks.len();
            if bits_end > bits_start {
                vrt_words.push(VrtWord {
                    statics_before: statics_since_vrt,
                    loc: word.loc,
                    written: self.contents.read_word(word.loc),
                    base_mask,
                    bits_start: plan_index("bits_start", bits_start)?,
                    bits_end: plan_index("bits_end", bits_end)?,
                });
                statics_since_vrt = 0;
            } else if base_mask != 0 {
                static_events.push(WordEvent {
                    loc: word.loc,
                    written: self.contents.read_word(word.loc),
                    flip_mask: base_mask,
                });
                statics_since_vrt = plan_index("statics_before", statics_since_vrt as usize + 1)?;
            }
        }
        Ok(RunPlan {
            generation: self.contents.generation(),
            vrt_degraded_prob: physics.vrt_degraded_prob,
            static_events,
            vrt_words,
            bit_masks,
            bit_indices,
            bit_flip_when_degraded,
        })
    }

    /// Evaluates one refresh window through a prepared plan, appending this
    /// window's events to `out` (cleared first so the buffer can be reused
    /// across windows). Bit-identical to
    /// [`Self::advance_window_profiled`] with the same env/profile/nonce.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Stale`] if contents changed since the plan was
    /// built — the plan bakes in per-cell charge state and written words,
    /// so it must be rebuilt after any write. This is a typed error (not a
    /// panic) so an evaluation supervisor can classify it as a permanent
    /// programming fault instead of a retryable candidate panic.
    pub fn advance_window_planned(
        &self,
        plan: &RunPlan,
        nonce: u64,
        out: &mut Vec<WordEvent>,
    ) -> Result<(), PlanError> {
        self.ensure_plan_fresh(plan)?;
        plan.advance_window(self.seed, nonce, out);
        Ok(())
    }

    /// Evaluates one refresh window of a prepared plan for up to
    /// [`crate::plan::MAX_LANES`] evaluation lanes at once, emitting only
    /// each lane's VRT-word events (see
    /// [`RunPlan::advance_window_vrt_lanes`]). Lane `l` runs with window
    /// nonce `nonces[l]` and only while bit `l` of `live` is set.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Stale`] if contents changed since the plan was
    /// built.
    pub fn advance_window_planned_lanes(
        &self,
        plan: &RunPlan,
        nonces: &[u64],
        live: u64,
        out: &mut [Vec<WordEvent>],
    ) -> Result<(), PlanError> {
        self.ensure_plan_fresh(plan)?;
        plan.advance_window_vrt_lanes(self.seed, nonces, live, out);
        Ok(())
    }

    /// Checks that a plan was built against the current contents.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Stale`] if contents changed since the plan was
    /// built. Callers that evaluate many windows or lanes can check once
    /// up front: contents cannot change during window evaluation.
    pub fn ensure_plan_fresh(&self, plan: &RunPlan) -> Result<(), PlanError> {
        let current = self.contents.generation();
        if plan.generation() != current {
            return Err(PlanError::Stale {
                built: plan.generation(),
                current,
            });
        }
        Ok(())
    }

    /// Recomputes the data-dependent per-cell state when contents changed.
    fn refresh_cache_if_stale(&mut self) {
        if self.cache_generation == Some(self.contents.generation()) {
            return;
        }
        let physics = self.config.physics;
        let geometry = self.config.geometry;
        let total = self.population.total_cells();
        let mut cache = CellCache {
            offsets: Vec::with_capacity(self.population.words().len() + 1),
            charged: Vec::with_capacity(total),
            interference: Vec::with_capacity(total),
        };
        for word in self.population.words() {
            let row = word.loc.row_key();
            cache.offsets.push(cache.charged.len() as u32);
            for cell in &word.cells {
                let logical = word.loc.col * 64 + cell.bit as u32;
                let value = self.contents.read_bit(row, logical);
                let phys = self.topology.physical_bit(row, logical);
                let kind = self.topology.kind_at_physical(phys);
                let charged = kind.charged(value);
                let interference = if charged {
                    let mut intra = 0u32;
                    let (left, right) = self.topology.physical_neighbours(phys);
                    for np in [left, right].into_iter().flatten() {
                        if self.physical_cell_charged(row, np) {
                            intra += 1;
                        }
                    }
                    // Inter-row interference: a charged victim node facing a
                    // *discharged* node in the adjacent row of the same bank
                    // sees the largest field and leaks fastest. (A uniform
                    // worst-word fill charges everything and gets none of
                    // this — which is exactly why the per-row 24 KB patterns
                    // can beat it, Fig. 9.)
                    let mut inter = 0u32;
                    for adj in [row.row.checked_sub(1), row.row.checked_add(1)]
                        .into_iter()
                        .flatten()
                        .filter(|&r| r < geometry.rows_per_bank)
                    {
                        let adj_row = RowKey::new(row.rank, row.bank, adj);
                        if !self.physical_cell_charged(adj_row, phys) {
                            inter += 1;
                        }
                    }
                    1.0 + physics.intra_row_coupling * intra as f64
                        + physics.inter_row_coupling * inter as f64
                } else {
                    1.0
                };
                cache.charged.push(charged);
                cache.interference.push(interference);
            }
        }
        cache.offsets.push(cache.charged.len() as u32);
        self.cache = cache;
        self.cache_generation = Some(self.contents.generation());
    }

    /// Whether the cell at a *physical* bitline position of a row is
    /// charged, given current contents.
    fn physical_cell_charged(&self, row: RowKey, phys: u32) -> bool {
        let logical = self.topology.logical_bit(row, phys);
        let value = self.contents.read_bit(row, logical);
        self.topology.kind_at_physical(phys).charged(value)
    }
}

/// Narrows a plan-build counter to the plan's `u32` index width, failing
/// loudly instead of silently truncating into a wrong-but-plausible plan.
fn plan_index(what: &'static str, value: usize) -> Result<u32, PlanError> {
    value
        .try_into()
        .map_err(|_| PlanError::IndexOverflow { what, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// The worst-case word under the TTAA layout: LSB-first bit string
    /// `1100 1100 …` = hex 0x3333….
    const WORST: u64 = 0x3333_3333_3333_3333;
    /// The opposite phase discharges every unscrambled cell.
    const BEST: u64 = 0xCCCC_CCCC_CCCC_CCCC;

    fn dimm(seed: u64) -> Dimm {
        Dimm::new(DimmConfig::default(), seed)
    }

    fn fill_all(d: &mut Dimm, word: u64) {
        let geo = d.geometry();
        let row_words = vec![word; geo.words_per_row()];
        for rank in 0..geo.ranks {
            for bank in 0..geo.banks {
                for row in 0..geo.rows_per_bank {
                    d.write_row(RowKey::new(rank, bank, row), &row_words);
                }
            }
        }
    }

    fn count_flips(events: &[WordEvent]) -> u64 {
        events.iter().map(|e| e.flipped_bits() as u64).sum()
    }

    #[test]
    fn no_errors_at_nominal_parameters() {
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let env = OperatingEnv::nominal(55.0);
        let events = d.advance_window(&env, &ActivationCounts::new(), 0);
        assert!(
            events.is_empty(),
            "{} events at nominal parameters",
            events.len()
        );
    }

    #[test]
    fn relaxed_parameters_manifest_errors() {
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let env = OperatingEnv::relaxed(60.0);
        let events = d.advance_window(&env, &ActivationCounts::new(), 0);
        assert!(!events.is_empty(), "relaxed 60C should manifest errors");
    }

    #[test]
    fn worst_pattern_beats_uniform_patterns() {
        // The 1100 pattern charges ~every cell; all-0s / all-1s /
        // checkerboard charge ~half (paper §V-A.1).
        let env = OperatingEnv::relaxed(60.0);
        let mut counts = HashMap::new();
        for (name, word) in [
            ("worst", WORST),
            ("all0", 0u64),
            ("all1", u64::MAX),
            ("cb", 0x5555_5555_5555_5555),
        ] {
            let mut d = dimm(11);
            fill_all(&mut d, word);
            let events = d.advance_window(&env, &ActivationCounts::new(), 0);
            counts.insert(name, count_flips(&events));
        }
        let worst = counts["worst"];
        for name in ["all0", "all1", "cb"] {
            assert!(
                worst as f64 >= 1.45 * counts[name] as f64,
                "worst={} vs {}={}",
                worst,
                name,
                counts[name]
            );
        }
    }

    #[test]
    fn best_pattern_is_roughly_8x_below_worst() {
        let env = OperatingEnv::relaxed(60.0);
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let worst = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
        let mut d = dimm(11);
        fill_all(&mut d, BEST);
        let best = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
        let ratio = worst as f64 / best.max(1) as f64;
        assert!(
            (3.0..30.0).contains(&ratio),
            "worst/best ratio {ratio} (worst={worst} best={best})"
        );
    }

    #[test]
    fn hammering_neighbour_rows_increases_errors() {
        let env = OperatingEnv::relaxed(60.0);
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let quiet = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
        let mut acts = ActivationCounts::new();
        let geo = d.geometry();
        for rank in 0..geo.ranks {
            for bank in 0..geo.banks {
                for row in 0..geo.rows_per_bank {
                    acts.add(RowKey::new(rank, bank, row), 3000);
                }
            }
        }
        let hammered = count_flips(&d.advance_window(&env, &acts, 0));
        assert!(
            hammered as f64 > 1.2 * quiet as f64,
            "hammered={hammered} quiet={quiet}"
        );
    }

    #[test]
    fn temperature_increases_error_count_monotonically() {
        let mut previous = 0u64;
        for temp in [50.0, 55.0, 60.0, 65.0, 70.0] {
            let mut d = dimm(13);
            fill_all(&mut d, WORST);
            let env = OperatingEnv::relaxed(temp);
            let flips = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
            assert!(
                flips >= previous,
                "errors dropped from {previous} to {flips} at {temp}C"
            );
            previous = flips;
        }
        assert!(previous > 0);
    }

    #[test]
    fn multi_bit_words_appear_only_at_high_temperature() {
        let worst_multi = |temp: f64| {
            let mut d = dimm(17);
            fill_all(&mut d, WORST);
            let env = OperatingEnv::relaxed(temp);
            d.advance_window(&env, &ActivationCounts::new(), 0)
                .iter()
                .filter(|e| e.flipped_bits() >= 2)
                .count()
        };
        assert_eq!(worst_multi(55.0), 0, "UE-prone pairs must not fail at 55C");
        assert!(worst_multi(66.0) > 0, "UE-prone pairs must fail by 66C");
    }

    #[test]
    fn run_to_run_variation_from_vrt() {
        let env = OperatingEnv::relaxed(60.0);
        let mut d = dimm(19);
        fill_all(&mut d, WORST);
        let counts: Vec<u64> = (0..10)
            .map(|run| count_flips(&d.advance_window(&env, &ActivationCounts::new(), run)))
            .collect();
        let distinct: std::collections::HashSet<_> = counts.iter().collect();
        assert!(
            distinct.len() > 1,
            "VRT should cause run-to-run variation: {counts:?}"
        );
    }

    #[test]
    fn different_seeds_have_different_error_counts() {
        let env = OperatingEnv::relaxed(60.0);
        let count_for = |seed| {
            let mut d = dimm(seed);
            fill_all(&mut d, WORST);
            count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0))
        };
        assert_ne!(count_for(1), count_for(2));
    }

    #[test]
    fn events_report_written_data() {
        let env = OperatingEnv::relaxed(65.0);
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        for e in d.advance_window(&env, &ActivationCounts::new(), 0) {
            assert_eq!(e.written, WORST);
            assert_ne!(e.flip_mask, 0);
            assert_ne!(e.corrupted(), e.written);
        }
    }

    #[test]
    fn planned_window_matches_reference_loop() {
        let env = OperatingEnv::relaxed(62.0);
        let mut d = dimm(23);
        fill_all(&mut d, WORST);
        let mut acts = ActivationCounts::new();
        acts.add(RowKey::new(0, 0, 9), 4000);
        acts.add(RowKey::new(0, 0, 11), 4000);
        acts.add(RowKey::new(1, 3, 20), 50_000);
        let profile = d.disturbance_profile(&acts);
        let plan = d.prepare_run(&env, &profile).unwrap();
        assert!(plan.static_words() + plan.vrt_words() > 0);
        let mut planned = Vec::new();
        for nonce in 0..50u64 {
            d.advance_window_planned(&plan, nonce, &mut planned)
                .unwrap();
            let reference = d.advance_window_profiled(&env, &profile, nonce);
            assert_eq!(planned, reference, "nonce {nonce}");
        }
    }

    #[test]
    fn lane_kernel_matches_per_lane_vrt_events() {
        let env = OperatingEnv::relaxed(62.0);
        let mut d = dimm(23);
        fill_all(&mut d, WORST);
        let mut acts = ActivationCounts::new();
        acts.add(RowKey::new(0, 0, 9), 4000);
        acts.add(RowKey::new(1, 3, 20), 50_000);
        let profile = d.disturbance_profile(&acts);
        let plan = d.prepare_run(&env, &profile).unwrap();
        assert!(plan.vrt_words() > 0, "need VRT-contingent words");
        // 7 lanes with irregular nonces and a hole in the live mask.
        let nonces: Vec<u64> = (0..7u64).map(|l| l.wrapping_mul(0x9E37_79B9) ^ 5).collect();
        let live = 0b110_1011u64;
        let mut lanes: Vec<Vec<WordEvent>> = vec![Vec::new(); nonces.len()];
        d.advance_window_planned_lanes(&plan, &nonces, live, &mut lanes)
            .unwrap();
        let mut full = Vec::new();
        for (l, &nonce) in nonces.iter().enumerate() {
            if live & (1 << l) == 0 {
                assert!(lanes[l].is_empty(), "dead lane {l} must stay empty");
                continue;
            }
            d.advance_window_planned(&plan, nonce, &mut full).unwrap();
            // The lane kernel omits static events; the VRT-word events are
            // exactly the full event stream minus the static ones.
            let statics = plan.static_events();
            let vrt_only: Vec<WordEvent> = full
                .iter()
                .filter(|e| !statics.contains(e))
                .copied()
                .collect();
            assert_eq!(lanes[l], vrt_only, "lane {l}");
        }
    }

    #[test]
    fn plan_shrinks_population_to_vrt_contingent_cells() {
        let env = OperatingEnv::relaxed(60.0);
        let mut d = dimm(29);
        fill_all(&mut d, WORST);
        let profile = d.disturbance_profile(&ActivationCounts::new());
        let plan = d.prepare_run(&env, &profile).unwrap();
        // The per-window workload must be a small fraction of the full
        // population — that's the entire point of the plan.
        assert!(
            plan.vrt_cells() * 10 < d.population().total_cells(),
            "{} VRT-contingent cells out of {}",
            plan.vrt_cells(),
            d.population().total_cells()
        );
    }

    #[test]
    fn stale_plan_is_a_typed_error_not_a_panic() {
        let env = OperatingEnv::relaxed(60.0);
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let profile = d.disturbance_profile(&ActivationCounts::new());
        let plan = d.prepare_run(&env, &profile).unwrap();
        let built = plan.generation();
        d.write_word(Location::new(0, 0, 0, 0), BEST);
        let current = d.contents_generation();
        assert_ne!(built, current);
        let mut out = Vec::new();
        let err = d.advance_window_planned(&plan, 0, &mut out).unwrap_err();
        assert_eq!(err, PlanError::Stale { built, current });
        assert!(err.to_string().contains("stale RunPlan"), "{err}");
        // The lane path enforces the same freshness contract.
        let mut lanes = vec![Vec::new()];
        let err = d
            .advance_window_planned_lanes(&plan, &[0], 1, &mut lanes)
            .unwrap_err();
        assert_eq!(err, PlanError::Stale { built, current });
    }

    #[test]
    fn plan_index_narrows_exactly_to_u32() {
        assert_eq!(plan_index("bits_end", 0), Ok(0));
        assert_eq!(plan_index("bits_end", u32::MAX as usize), Ok(u32::MAX));
        let err = plan_index("bits_end", u32::MAX as usize + 1).unwrap_err();
        assert_eq!(
            err,
            PlanError::IndexOverflow {
                what: "bits_end",
                value: u32::MAX as usize + 1,
            }
        );
        let text = err.to_string();
        assert!(
            text.contains("bits_end") && text.contains("4294967296"),
            "{text}"
        );
    }

    #[test]
    fn write_words_matches_per_word_writes() {
        let mut a = dimm(31);
        let mut b = dimm(31);
        let start = Location::new(0, 2, 7, 100);
        let values = [1u64, 2, 3, WORST, BEST];
        a.write_words(start, &values);
        for (i, &v) in values.iter().enumerate() {
            b.write_word(
                Location::new(start.rank, start.bank, start.row, start.col + i as u32),
                v,
            );
        }
        for i in 0..values.len() as u32 + 1 {
            let loc = Location::new(start.rank, start.bank, start.row, start.col + i);
            assert_eq!(a.read_word(loc), b.read_word(loc));
        }
    }

    #[test]
    fn read_words_matches_per_word_reads() {
        let mut d = dimm(31);
        let start = Location::new(0, 2, 7, 100);
        let values = [1u64, 2, 3, WORST, BEST];
        d.write_words(start, &values);
        // Spans over written and default (unmaterialized) columns.
        for (from, n) in [(98u32, 10usize), (100, 5), (0, 3)] {
            let begin = Location::new(0, 2, 7, from);
            let mut bulk = vec![0u64; n];
            d.read_words(begin, &mut bulk);
            for (i, &got) in bulk.iter().enumerate() {
                let loc = Location::new(0, 2, 7, from + i as u32);
                assert_eq!(got, d.read_word(loc), "column {}", from + i as u32);
            }
        }
    }

    #[test]
    fn cache_invalidation_on_write() {
        let env = OperatingEnv::relaxed(60.0);
        let mut d = dimm(11);
        fill_all(&mut d, WORST);
        let with_worst = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
        fill_all(&mut d, BEST);
        let with_best = count_flips(&d.advance_window(&env, &ActivationCounts::new(), 0));
        assert!(with_worst > with_best, "cache must follow contents changes");
    }
}
