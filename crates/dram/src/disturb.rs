//! Row-disturbance model (cell-to-cell interference from activations).
//!
//! Frequently activating rows drains charge from cells in nearby rows of the
//! same bank — the effect behind "rowhammer" (paper §II, citing Kim et al.).
//! The paper's access-pattern viruses exploit it *without* `clflush`, i.e. at
//! cache-limited activation rates (§V-A.4), so the model must respond to
//! moderate rates and then *saturate*: once the near rows are hammered past
//! the knee, many different access subsets reach a similar disturbance level
//! — which is exactly why the paper's access-pattern searches never converge
//! (SMF ≈ 0.5).

use crate::geometry::RowKey;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-row activation counts accumulated over one refresh window.
///
/// # Examples
///
/// ```
/// use dstress_dram::ActivationCounts;
/// use dstress_dram::geometry::RowKey;
///
/// let mut acts = ActivationCounts::new();
/// acts.add(RowKey::new(0, 0, 5), 1000);
/// acts.add(RowKey::new(0, 0, 5), 24);
/// assert_eq!(acts.get(RowKey::new(0, 0, 5)), 1024);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationCounts {
    counts: HashMap<RowKey, u64>,
}

impl ActivationCounts {
    /// Creates an empty tally.
    pub fn new() -> Self {
        ActivationCounts::default()
    }

    /// Adds `n` activations of a row.
    pub fn add(&mut self, row: RowKey, n: u64) {
        if n > 0 {
            *self.counts.entry(row).or_insert(0) += n;
        }
    }

    /// Activations recorded for a row.
    pub fn get(&self, row: RowKey) -> u64 {
        self.counts.get(&row).copied().unwrap_or(0)
    }

    /// Iterates all `(row, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RowKey, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of distinct rows activated.
    pub fn distinct_rows(&self) -> usize {
        self.counts.len()
    }

    /// Total activations across all rows.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Multiplies every count by `factor` (used when replaying a recorded
    /// access trace at a target rate).
    pub fn scale(&mut self, factor: u64) {
        for v in self.counts.values_mut() {
            *v = v.saturating_mul(factor);
        }
    }

    /// Multiplies every count by a real factor, rounding to the nearest
    /// integer (used when replaying a trace pass at a fractional rate).
    pub fn scale_rounded(&mut self, factor: f64) {
        for v in self.counts.values_mut() {
            *v = (*v as f64 * factor).round().max(0.0) as u64;
        }
        self.counts.retain(|_, v| *v > 0);
    }

    /// Removes all counts (the auto-refresh recharges victims, so each
    /// window starts a fresh tally).
    pub fn clear(&mut self) {
        self.counts.clear();
    }
}

impl FromIterator<(RowKey, u64)> for ActivationCounts {
    fn from_iter<I: IntoIterator<Item = (RowKey, u64)>>(iter: I) -> Self {
        let mut acts = ActivationCounts::new();
        for (row, n) in iter {
            acts.add(row, n);
        }
        acts
    }
}

/// Coefficients of the disturbance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisturbanceModel {
    /// Exponential decay length of aggressor influence, in rows.
    pub decay_rows: f64,
    /// Hammer units at the half-effect point of the sigmoid response.
    pub knee_hammer: f64,
    /// Maximum disturbance factor (added leakage multiplier at full
    /// saturation).
    pub max_factor: f64,
    /// Hill exponent of the sigmoid response. Disturbance has a
    /// threshold-like onset (ordinary streaming at a few hundred
    /// activations per window is harmless — real rowhammer needs tens of
    /// thousands) and then *saturates*, which is what denies the
    /// access-pattern searches a unique optimum (Fig. 11).
    pub hill_exponent: f64,
}

impl Default for DisturbanceModel {
    fn default() -> Self {
        DisturbanceModel {
            decay_rows: 1.5,
            knee_hammer: 2500.0,
            max_factor: 0.5,
            hill_exponent: 3.0,
        }
    }
}

impl DisturbanceModel {
    /// Accumulated "hammer units" at a victim row: activation counts of
    /// other rows in the *same rank and bank*, weighted by exponential
    /// distance decay. Activations of the victim row itself recharge it and
    /// contribute nothing.
    pub fn hammer_units(&self, victim: RowKey, acts: &ActivationCounts) -> f64 {
        let mut hammer = 0.0;
        for (row, count) in acts.iter() {
            if row.rank != victim.rank || row.bank != victim.bank || row.row == victim.row {
                continue;
            }
            let distance = (row.row as f64 - victim.row as f64).abs();
            hammer += count as f64 * (-distance / self.decay_rows).exp();
        }
        hammer
    }

    /// The disturbance factor for a victim row given this window's
    /// activations: a Hill sigmoid
    /// `max_factor · hⁿ / (hⁿ + kneeⁿ)` — negligible at streaming rates,
    /// steep around the knee, saturating beyond it.
    pub fn factor(&self, victim: RowKey, acts: &ActivationCounts) -> f64 {
        self.factor_from_hammer(self.hammer_units(victim, acts))
    }

    /// The sigmoid response applied to precomputed hammer units.
    pub fn factor_from_hammer(&self, hammer: f64) -> f64 {
        if hammer <= 0.0 {
            return 0.0;
        }
        let hn = hammer.powf(self.hill_exponent);
        let kn = self.knee_hammer.powf(self.hill_exponent);
        self.max_factor * hn / (hn + kn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> DisturbanceModel {
        DisturbanceModel::default()
    }

    #[test]
    fn activation_counts_accumulate() {
        let mut acts = ActivationCounts::new();
        let row = RowKey::new(0, 1, 2);
        acts.add(row, 10);
        acts.add(row, 5);
        acts.add(RowKey::new(0, 1, 3), 1);
        assert_eq!(acts.get(row), 15);
        assert_eq!(acts.distinct_rows(), 2);
        assert_eq!(acts.total(), 16);
    }

    #[test]
    fn zero_adds_are_ignored() {
        let mut acts = ActivationCounts::new();
        acts.add(RowKey::new(0, 0, 0), 0);
        assert_eq!(acts.distinct_rows(), 0);
    }

    #[test]
    fn scale_multiplies_counts() {
        let mut acts: ActivationCounts = [(RowKey::new(0, 0, 1), 3u64)].into_iter().collect();
        acts.scale(100);
        assert_eq!(acts.get(RowKey::new(0, 0, 1)), 300);
    }

    #[test]
    fn clear_empties() {
        let mut acts: ActivationCounts = [(RowKey::new(0, 0, 1), 3u64)].into_iter().collect();
        acts.clear();
        assert_eq!(acts.total(), 0);
    }

    #[test]
    fn nearer_aggressors_disturb_more() {
        let m = model();
        let victim = RowKey::new(0, 0, 10);
        let near: ActivationCounts = [(RowKey::new(0, 0, 11), 1000u64)].into_iter().collect();
        let far: ActivationCounts = [(RowKey::new(0, 0, 20), 1000u64)].into_iter().collect();
        assert!(m.factor(victim, &near) > m.factor(victim, &far));
    }

    #[test]
    fn own_row_activations_do_not_disturb() {
        let m = model();
        let victim = RowKey::new(0, 0, 10);
        let own: ActivationCounts = [(victim, 1_000_000u64)].into_iter().collect();
        assert_eq!(m.factor(victim, &own), 0.0);
    }

    #[test]
    fn other_bank_and_rank_do_not_disturb() {
        let m = model();
        let victim = RowKey::new(0, 0, 10);
        let other_bank: ActivationCounts = [(RowKey::new(0, 1, 11), 1_000_000u64)]
            .into_iter()
            .collect();
        let other_rank: ActivationCounts = [(RowKey::new(1, 0, 11), 1_000_000u64)]
            .into_iter()
            .collect();
        assert_eq!(m.factor(victim, &other_bank), 0.0);
        assert_eq!(m.factor(victim, &other_rank), 0.0);
    }

    #[test]
    fn factor_saturates_at_max() {
        let m = model();
        let victim = RowKey::new(0, 0, 10);
        let heavy: ActivationCounts = [(RowKey::new(0, 0, 11), 100_000_000u64)]
            .into_iter()
            .collect();
        let f = m.factor(victim, &heavy);
        assert!(f > 0.99 * m.max_factor && f <= m.max_factor);
    }

    #[test]
    fn streaming_rates_are_nearly_harmless() {
        // A few hundred activations per window (ordinary sequential
        // sweeps) must contribute almost nothing: the threshold-like
        // rowhammer onset.
        let m = model();
        let victim = RowKey::new(0, 0, 10);
        let streaming: ActivationCounts = [
            (RowKey::new(0, 0, 9), 200u64),
            (RowKey::new(0, 0, 11), 200u64),
        ]
        .into_iter()
        .collect();
        let f = m.factor(victim, &streaming);
        assert!(f < 0.05 * m.max_factor, "streaming factor {f}");
    }

    #[test]
    fn hammering_rates_land_near_saturation() {
        let m = model();
        let victim = RowKey::new(0, 0, 10);
        let hammer: ActivationCounts = [
            (RowKey::new(0, 0, 9), 5000u64),
            (RowKey::new(0, 0, 11), 5000u64),
        ]
        .into_iter()
        .collect();
        let f = m.factor(victim, &hammer);
        assert!(f > 0.6 * m.max_factor, "hammer factor {f}");
    }

    #[test]
    fn saturation_makes_subsets_indistinguishable() {
        // Two different heavy aggressor subsets reach nearly the same factor:
        // the mechanism behind the access-search non-convergence (Fig. 11).
        let m = model();
        let victim = RowKey::new(0, 0, 10);
        let a: ActivationCounts = [
            (RowKey::new(0, 0, 9), 20_000u64),
            (RowKey::new(0, 0, 11), 20_000u64),
        ]
        .into_iter()
        .collect();
        let b: ActivationCounts = [
            (RowKey::new(0, 0, 8), 40_000u64),
            (RowKey::new(0, 0, 12), 40_000u64),
            (RowKey::new(0, 0, 11), 15_000u64),
        ]
        .into_iter()
        .collect();
        let (fa, fb) = (m.factor(victim, &a), m.factor(victim, &b));
        assert!((fa - fb).abs() < 0.05 * m.max_factor, "fa={fa} fb={fb}");
    }

    proptest! {
        #[test]
        fn factor_is_bounded_and_monotone(count in 0u64..10_000_000) {
            let m = model();
            let victim = RowKey::new(0, 0, 5);
            let acts: ActivationCounts = [(RowKey::new(0, 0, 6), count)].into_iter().collect();
            let f = m.factor(victim, &acts);
            prop_assert!((0.0..=m.max_factor).contains(&f));
            let more: ActivationCounts =
                [(RowKey::new(0, 0, 6), count + 1000)].into_iter().collect();
            prop_assert!(m.factor(victim, &more) >= f);
        }
    }
}
