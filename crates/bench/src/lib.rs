//! Shared utilities for the figure-regeneration binaries and benches.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §5 for the index). The experiment scale is selected through
//! the `DSTRESS_SCALE` environment variable (`paper` by default, `quick`
//! for smoke runs); results print to stdout and, when `DSTRESS_JSON_DIR`
//! is set, are also written as JSON for archival.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dstress::ExperimentScale;
use serde::Serialize;
use std::path::PathBuf;

/// Resolves the experiment scale from the environment.
pub fn scale() -> ExperimentScale {
    ExperimentScale::from_env()
}

/// A fixed seed shared by the figure binaries so reruns reproduce exactly.
pub const CAMPAIGN_SEED: u64 = 0x00D5_7E55;

/// Prints a report and optionally archives it as JSON under
/// `DSTRESS_JSON_DIR`.
pub fn emit<R: Serialize>(figure: &str, rendered: &str, report: &R) {
    println!("==== {figure} (scale: {}) ====", scale().name);
    println!("{rendered}");
    if let Ok(dir) = std::env::var("DSTRESS_JSON_DIR") {
        let path = PathBuf::from(dir).join(format!("{figure}.json"));
        match serde_json::to_string_pretty(report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialize {figure}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_paper() {
        // The test environment does not set DSTRESS_SCALE.
        if std::env::var("DSTRESS_SCALE").is_err() {
            assert_eq!(scale().name, "paper");
        }
    }

    #[test]
    fn emit_prints_without_json_dir() {
        emit("smoke", "hello", &42u32);
    }
}
