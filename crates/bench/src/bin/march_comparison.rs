//! Regenerates the MARCH-test comparison (extension, paper §II/§VII).

fn main() {
    let report = dstress::experiments::march_comparison::run(
        dstress_bench::scale(),
        dstress_bench::CAMPAIGN_SEED,
    )
    .expect("march comparison");
    dstress_bench::emit("march_comparison", &report.render(), &report);
}
