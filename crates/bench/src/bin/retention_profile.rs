//! Regenerates the retention-profiling use case (extension, paper §I/§VI).

use dstress::usecases_retention::profile_retention;
use dstress::{DStress, BEST_WORD, WORST_WORD};

fn main() {
    let dstress = DStress::new(dstress_bench::scale(), dstress_bench::CAMPAIGN_SEED);
    println!(
        "==== retention profile (scale: {}) ====",
        dstress.scale.name
    );
    for (label, fill) in [("worst-case fill", WORST_WORD), ("benign fill", BEST_WORD)] {
        let profile = profile_retention(&dstress, fill, 60.0, 8).expect("profiling");
        println!(
            "\n{label} ({:#018x}): {} weak rows of {} total",
            fill,
            profile.weak_rows.len(),
            profile.total_rows
        );
        for (trefp, rows) in profile.bins() {
            println!("  rows needing refresh <= {trefp:.3} s: {rows}");
        }
        println!(
            "  fraction of rows safe at 4x nominal refresh: {:.3}",
            profile.strong_fraction_at(4.0 * 0.064)
        );
    }
    println!(
        "\n(profiling under a benign pattern overestimates margins - the paper's §I critique)"
    );
}
