//! Regenerates Fig. 8 (a–e): the 64-bit data-pattern searches and the
//! micro-benchmark comparison.

fn main() {
    let report =
        dstress::experiments::fig08::run(dstress_bench::scale(), dstress_bench::CAMPAIGN_SEED)
            .expect("fig08 experiment");
    dstress_bench::emit("fig08", &report.render(), &report);
    println!("headline: {}", report.headline());
}
