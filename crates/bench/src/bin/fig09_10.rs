//! Regenerates Figs. 9 & 10: the 24 KB-class and 512 KB-class data-pattern
//! searches.

fn main() {
    let report = dstress::experiments::fig09_fig10::run(
        dstress_bench::scale(),
        dstress_bench::CAMPAIGN_SEED,
    )
    .expect("fig09/fig10 experiment");
    dstress_bench::emit("fig09_fig10", &report.render(), &report);
}
