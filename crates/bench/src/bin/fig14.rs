//! Regenerates Fig. 14: marginal TREFP discovery and power savings.

fn main() {
    let report =
        dstress::experiments::fig14::run(dstress_bench::scale(), dstress_bench::CAMPAIGN_SEED)
            .expect("fig14 experiment");
    dstress_bench::emit("fig14", &report.render(), &report);
}
