//! Regenerates the SDC-accounting extension experiment (paper §III-C).

fn main() {
    let report =
        dstress::experiments::sdc::run(dstress_bench::scale(), dstress_bench::CAMPAIGN_SEED)
            .expect("sdc accounting");
    dstress_bench::emit("sdc_accounting", &report.render(), &report);
}
