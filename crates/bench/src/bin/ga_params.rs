//! Regenerates the §V GA-parameter calibration table (popcount fitness).

fn main() {
    let seeds = if dstress_bench::scale().name == "quick" {
        3
    } else {
        10
    };
    let report = dstress::experiments::ga_params::run(seeds);
    dstress_bench::emit("ga_params", &report.render(), &report);
}
