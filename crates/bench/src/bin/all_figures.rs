//! Runs the complete evaluation campaign: every table and figure in order,
//! passing discovered artifacts between dependent experiments (the Fig. 9
//! winner feeds the Fig. 11 comparison; the Fig. 8/11 winners feed the
//! Fig. 13 tail estimates).

use dstress::experiments;

fn main() {
    let scale = dstress_bench::scale();
    let seed = dstress_bench::CAMPAIGN_SEED;

    let ga = experiments::ga_params::run(if scale.name == "quick" { 3 } else { 10 });
    dstress_bench::emit("ga_params", &ga.render(), &ga);

    let f1 = experiments::fig01b::run(scale, seed).expect("fig01b");
    dstress_bench::emit("fig01b", &f1.render(), &f1);

    let f8 = experiments::fig08::run(scale, seed).expect("fig08");
    dstress_bench::emit("fig08", &f8.render(), &f8);

    let f910 = experiments::fig09_fig10::run(scale, seed).expect("fig09/10");
    dstress_bench::emit("fig09_fig10", &f910.render(), &f910);

    let f1112 = experiments::fig11_fig12::run(scale, seed, Some(f910.triple_ce)).expect("fig11/12");
    dstress_bench::emit("fig11_fig12", &f1112.render(), &f1112);

    let f13 =
        experiments::efficiency::run(scale, seed, Some(f8.ga_worst_ce), Some(f1112.row_access_ce))
            .expect("fig13");
    dstress_bench::emit("fig13", &f13.render(), &f13);

    let f14 = experiments::fig14::run(scale, seed).expect("fig14");
    dstress_bench::emit("fig14", &f14.render(), &f14);

    let march = experiments::march_comparison::run(scale, seed).expect("march");
    dstress_bench::emit("march_comparison", &march.render(), &march);

    let rh = experiments::rowhammer::run(scale, seed).expect("rowhammer");
    dstress_bench::emit("rowhammer", &rh.render(), &rh);

    println!("\ncampaign complete.");
}
