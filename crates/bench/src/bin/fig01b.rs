//! Regenerates Fig. 1b: workload-dependent single-bit error distribution.

fn main() {
    let report =
        dstress::experiments::fig01b::run(dstress_bench::scale(), dstress_bench::CAMPAIGN_SEED)
            .expect("fig01b experiment");
    dstress_bench::emit("fig01b", &report.render(), &report);
}
