//! Regenerates the design-choice ablation study (DESIGN.md §6).

fn main() {
    let seeds = if dstress_bench::scale().name == "quick" {
        3
    } else {
        8
    };
    let report =
        dstress::experiments::ablation::run(dstress_bench::scale(), seeds).expect("ablation study");
    dstress_bench::emit("ablation_study", &report.render(), &report);
}
