//! Regenerates Fig. 13: the GA-efficiency estimate from randomized viruses.

fn main() {
    let report = dstress::experiments::efficiency::run(
        dstress_bench::scale(),
        dstress_bench::CAMPAIGN_SEED,
        None,
        None,
    )
    .expect("fig13 experiment");
    dstress_bench::emit("fig13", &report.render(), &report);
}
