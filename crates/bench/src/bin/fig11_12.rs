//! Regenerates Figs. 11 & 12: the memory-access-pattern searches.

fn main() {
    let report = dstress::experiments::fig11_fig12::run(
        dstress_bench::scale(),
        dstress_bench::CAMPAIGN_SEED,
        None,
    )
    .expect("fig11/fig12 experiment");
    dstress_bench::emit("fig11_fig12", &report.render(), &report);
}
