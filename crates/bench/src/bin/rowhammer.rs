//! Regenerates the rowhammer-regime exploration (extension, paper §VI).

fn main() {
    let report =
        dstress::experiments::rowhammer::run(dstress_bench::scale(), dstress_bench::CAMPAIGN_SEED)
            .expect("rowhammer exploration");
    dstress_bench::emit("rowhammer", &report.render(), &report);
}
