//! Regenerates Fig. 2: the address → physical-layout mapping function,
//! demonstrated on the first chunks of the DIMM (paper §II).

use dstress_dram::{AddressMap, DimmGeometry};

fn main() {
    let geo = DimmGeometry::default();
    let map = AddressMap::new(geo);
    println!("==== fig02: address mapping (8KB-chunk striping) ====");
    println!("{:<12} {:<8} {:<6} {:<6}", "addr", "rank", "bank", "row");
    for chunk in 0..20u64 {
        let addr = chunk * geo.row_bytes as u64;
        let loc = map.map(addr).expect("address in range");
        println!("{addr:<12} {:<8} {:<6} {:<6}", loc.rank, loc.bank, loc.row);
    }
    println!("\nchunks 0, 8, 16 land in adjacent rows of bank 0 (paper Fig. 1a):");
    for chunk in [0u64, 8, 16] {
        let loc = map
            .map(chunk * geo.row_bytes as u64)
            .expect("address in range");
        println!("  chunk {chunk:>2} -> {loc}");
    }
}
