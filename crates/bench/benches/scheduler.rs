//! Persistent work-stealing evaluation pool vs the per-generation scoped
//! executor, and multi-campaign fair-share scheduling throughput.
//!
//! Every row drives a full multi-generation GA campaign over a synthetic
//! fitness whose cost is a pure, deterministic function of the chromosome:
//!
//! * `even` — every candidate costs the same, so the scoped executor's
//!   static round-robin deal is already balanced. The pool must stay
//!   within noise of it (the PR's ±5% bar).
//! * `uneven` — roughly a quarter of random chromosomes cost ~32× more
//!   (the adversarial shape of retry storms, step-budget blowouts and
//!   cold plan caches). The scoped executor blocks the generation barrier
//!   on whichever lane drew the most heavy candidates; the stealing pool
//!   balances them (the PR's ≥1.5× bar at 8 workers).
//!
//! `scheduler/serialN` vs `scheduler/multiplexN` compare running N uneven
//! campaigns back to back (each on its own pool) against the
//! `CampaignScheduler` fair-sharing them over one pool.
//! `scripts/record_scheduler.sh` records medians and ratios to
//! `BENCH_scheduler.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress_ga::{
    BitGenome, CampaignScheduler, EvalPool, Fitness, GaConfig, ParallelFitness, SearchSession,
};
use rand::rngs::StdRng;

/// Deterministic busy work: `rounds` iterations of an FNV-1a fold over the
/// chromosome words. Returns the hash so the optimizer cannot drop it.
fn spin(genome: &BitGenome, rounds: u64) -> u64 {
    let words = genome.to_words();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for _ in 0..rounds {
        for &w in &words {
            h = (h ^ w).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    std::hint::black_box(h)
}

/// Whether a chromosome lands in the expensive cost class (~1/4 of random
/// 64-bit genomes): a pure function of the candidate, exactly like a
/// retry-storm or cold-cache blowout on the real substrate.
fn is_heavy(genome: &BitGenome) -> bool {
    genome.count_ones().is_multiple_of(4)
}

const LIGHT_ROUNDS: u64 = 100;
const HEAVY_FACTOR: u64 = 32;

/// A synthetic fitness with a configurable cost profile.
#[derive(Clone)]
struct SpinFitness {
    uneven: bool,
}

impl Fitness<BitGenome> for SpinFitness {
    fn evaluate(&mut self, genome: &BitGenome) -> f64 {
        let rounds = if self.uneven && is_heavy(genome) {
            LIGHT_ROUNDS * HEAVY_FACTOR
        } else {
            LIGHT_ROUNDS
        };
        let h = spin(genome, rounds);
        // Popcount fitness with a hash-derived tiebreak: a real search
        // gradient, deterministic for any evaluation order.
        genome.count_ones() as f64 + (h % 97) as f64 / 1e3
    }
}

impl ParallelFitness<BitGenome> for SpinFitness {
    fn replicate(&self) -> Self {
        self.clone()
    }
}

fn config() -> GaConfig {
    let mut config = GaConfig::paper_defaults();
    config.population_size = 40;
    config.max_generations = 10;
    config
}

fn session(seed: u64) -> SearchSession<BitGenome> {
    SearchSession::start(config(), seed, |rng: &mut StdRng| {
        BitGenome::random(rng, 64)
    })
}

/// One full campaign on the per-generation scoped executor.
fn campaign_scoped(seed: u64, workers: usize, uneven: bool) -> f64 {
    let mut session = session(seed);
    let mut replicas: Vec<SpinFitness> = (0..workers).map(|_| SpinFitness { uneven }).collect();
    while !session.done() {
        session.step(&mut replicas);
    }
    session.finish().best_fitness
}

/// One full campaign on the persistent work-stealing pool.
fn campaign_pooled(seed: u64, workers: usize, uneven: bool) -> f64 {
    let mut session = session(seed);
    let pool = EvalPool::new(&SpinFitness { uneven }, workers);
    while !session.done() {
        session.step_pooled(&pool);
    }
    pool.shutdown();
    session.finish().best_fitness
}

/// N uneven campaigns run back to back, each on its own fresh pool.
fn campaigns_serial(n: u64, workers: usize) -> f64 {
    (0..n)
        .map(|i| campaign_pooled(1000 + i, workers, true))
        .sum()
}

/// N uneven campaigns fair-share multiplexed over one pool.
fn campaigns_multiplexed(n: u64, workers: usize) -> f64 {
    let mut scheduler =
        CampaignScheduler::new(EvalPool::new(&SpinFitness { uneven: true }, workers));
    for i in 0..n {
        scheduler.add(session(1000 + i), None);
    }
    scheduler.run();
    let (sessions, _replicas) = scheduler.finish();
    sessions.into_iter().map(|s| s.finish().best_fitness).sum()
}

fn bench(c: &mut Criterion) {
    for workers in [1usize, 4, 8] {
        for (shape, uneven) in [("even", false), ("uneven", true)] {
            c.bench_function(&format!("scheduler/scope_{shape}_w{workers}"), |b| {
                b.iter(|| std::hint::black_box(campaign_scoped(7, workers, uneven)))
            });
            c.bench_function(&format!("scheduler/pool_{shape}_w{workers}"), |b| {
                b.iter(|| std::hint::black_box(campaign_pooled(7, workers, uneven)))
            });
        }
    }
    for n in [2u64, 4] {
        c.bench_function(&format!("scheduler/serial{n}_w8"), |b| {
            b.iter(|| std::hint::black_box(campaigns_serial(n, 8)))
        });
        c.bench_function(&format!("scheduler/multiplex{n}_w8"), |b| {
            b.iter(|| std::hint::black_box(campaigns_multiplexed(n, 8)))
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
