//! Criterion bench for the §V GA calibration kernel: one popcount GA run
//! at the paper's optimum parameters.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress_ga::{BitGenome, FnFitness, GaConfig, GaEngine};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_params");
    group.sample_size(10);
    group.bench_function("popcount_ga_paper_params", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut engine = GaEngine::new(GaConfig::paper_defaults(), seed);
            let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
            let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
            std::hint::black_box(result.best_fitness)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
