//! Criterion bench for the Fig. 13 kernel: randomized-virus sampling and
//! the D'Agostino–Pearson normality test.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress::{DStress, EnvKind, ExperimentScale, Metric};
use dstress_stats::{dagostino_pearson, Moments};
use dstress_vpl::BoundValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let dstress = DStress::new(ExperimentScale::quick(), 1);
    let mut evaluator = dstress
        .evaluator(&EnvKind::Word64, 60.0, Metric::CeAverage)
        .expect("evaluator");
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("fig13_random");
    group.sample_size(10);
    group.bench_function("sample_random_pattern", |b| {
        b.iter(|| {
            let word: u64 = rng.gen();
            let outcome = evaluator
                .evaluate_bindings([("PATTERN".to_string(), BoundValue::Scalar(word))].into())
                .expect("evaluation");
            std::hint::black_box(outcome.fitness)
        })
    });
    group.bench_function("dagostino_pearson_5000", |b| {
        let mut noise = StdRng::seed_from_u64(6);
        let m: Moments = (0..5000)
            .map(|_| (0..12).map(|_| noise.gen::<f64>()).sum::<f64>() - 6.0)
            .collect();
        b.iter(|| std::hint::black_box(dagostino_pearson(&m).expect("test runs")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
