//! Ablation benches for the design choices DESIGN.md §6 calls out:
//! selection scheme, fitness-averaging depth, and the cache model's effect
//! on access-virus evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress::{DStress, EnvKind, ExperimentScale, Metric, WORST_WORD};
use dstress_ga::{
    AveragedFitness, BitGenome, Fitness, FnFitness, GaConfig, GaEngine, SelectionScheme,
};
use dstress_vpl::BoundValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    // Selection schemes on a noisy popcount (how fast each converges).
    for (name, scheme) in [
        ("selection_roulette", SelectionScheme::Roulette),
        (
            "selection_tournament2",
            SelectionScheme::Tournament { k: 2 },
        ),
        (
            "selection_truncation50",
            SelectionScheme::Truncation { keep_percent: 50 },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut config = GaConfig::paper_defaults();
                config.selection = scheme;
                config.max_generations = 60;
                let mut engine = GaEngine::new(config, seed);
                let mut noise = StdRng::seed_from_u64(seed);
                let mut fitness = FnFitness::new(move |g: &BitGenome| {
                    g.count_ones() as f64 + noise.gen_range(0.0..4.0)
                });
                let r = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
                std::hint::black_box(r.best_fitness)
            })
        });
    }

    // Averaging depth under noise (paper: 10 runs per virus).
    for runs in [1u32, 10] {
        group.bench_function(&format!("averaging_depth_{runs}"), |b| {
            let mut seed = 100u64;
            b.iter(|| {
                seed += 1;
                let mut noise = StdRng::seed_from_u64(seed);
                let inner = FnFitness::new(move |g: &BitGenome| {
                    g.count_ones() as f64 + noise.gen_range(0.0..16.0)
                });
                let mut avg = AveragedFitness::new(inner, runs);
                let g = BitGenome::repeat_word(WORST_WORD, 64);
                std::hint::black_box(avg.evaluate(&g))
            })
        });
    }

    // Cache model on the access-virus path: evaluation cost with the
    // full replay pipeline.
    let scale = ExperimentScale::quick();
    let mut dstress = DStress::new(scale, 1);
    let victims = dstress.profile_victims(60.0, WORST_WORD).expect("victims");
    let metric = Metric::CeInRows(victims.clone());
    let mut evaluator = dstress
        .evaluator(
            &EnvKind::RowAccess {
                victims,
                fill: WORST_WORD,
            },
            60.0,
            metric,
        )
        .expect("evaluator");
    group.bench_function("access_eval_with_cache_model", |b| {
        b.iter(|| {
            let outcome = evaluator
                .evaluate_bindings([("SEL".to_string(), BoundValue::Array(vec![1u64; 64]))].into())
                .expect("evaluation");
            std::hint::black_box(outcome.fitness)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
