//! Criterion micro-benchmarks for the substrates: the DRAM fault kernel,
//! the SECDED code, the cache model and the similarity measures.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress_dram::{ActivationCounts, Dimm, DimmConfig, OperatingEnv};
use dstress_ecc::Codeword;
use dstress_ga::{BitGenome, Genome};
use dstress_platform::cache::Cache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    // DRAM refresh-window fault evaluation.
    let mut dimm = Dimm::new(DimmConfig::default(), 1);
    let env = OperatingEnv::relaxed(60.0);
    let acts = ActivationCounts::new();
    let mut nonce = 0u64;
    c.bench_function("dram_advance_window", |b| {
        b.iter(|| {
            nonce += 1;
            std::hint::black_box(dimm.advance_window(&env, &acts, nonce).len())
        })
    });

    // SECDED encode + decode.
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("ecc_encode_decode", |b| {
        b.iter(|| {
            let data: u64 = rng.gen();
            let cw = Codeword::encode(data).with_data_flips(1 << (data % 64));
            std::hint::black_box(cw.decode())
        })
    });

    // Cache model streaming.
    let mut cache = Cache::new(256 * 1024, 8, 64);
    let mut addr = 0u64;
    c.bench_function("cache_streaming_access", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64) % (1 << 22);
            std::hint::black_box(cache.access(addr))
        })
    });

    // Leaderboard similarity over large pattern chromosomes.
    let mut rng = StdRng::seed_from_u64(3);
    let a = BitGenome::random(&mut rng, 49_152);
    let b_g = BitGenome::random(&mut rng, 49_152);
    c.bench_function("bitgenome_similarity_49k", |b| {
        b.iter(|| std::hint::black_box(a.similarity(&b_g)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
