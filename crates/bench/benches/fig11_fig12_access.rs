//! Criterion bench for the Fig. 11/12 kernel: one access-pattern virus
//! evaluation (row bitmap and stride variants).

use criterion::{criterion_group, criterion_main, Criterion};
use dstress::{DStress, EnvKind, ExperimentScale, Metric, WORST_WORD};
use dstress_vpl::BoundValue;

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let mut dstress = DStress::new(scale, 1);
    let victims = dstress.profile_victims(60.0, WORST_WORD).expect("victims");
    let mut group = c.benchmark_group("fig11_fig12");
    group.sample_size(10);

    let metric = Metric::CeInRows(victims.clone());
    let mut row_eval = dstress
        .evaluator(
            &EnvKind::RowAccess {
                victims: victims.clone(),
                fill: WORST_WORD,
            },
            60.0,
            metric.clone(),
        )
        .expect("evaluator");
    group.bench_function("evaluate_row_access_virus", |b| {
        b.iter(|| {
            let outcome = row_eval
                .evaluate_bindings([("SEL".to_string(), BoundValue::Array(vec![1u64; 64]))].into())
                .expect("evaluation");
            std::hint::black_box(outcome.fitness)
        })
    });

    let mut stride_eval = dstress
        .evaluator(
            &EnvKind::StrideAccess {
                victims,
                fill: WORST_WORD,
            },
            60.0,
            metric,
        )
        .expect("evaluator");
    group.bench_function("evaluate_stride_virus", |b| {
        b.iter(|| {
            let coeffs: Vec<u64> = (0..32).map(|i| (i * 7) % 21).collect();
            let outcome = stride_eval
                .evaluate_bindings([("COEFFS".to_string(), BoundValue::Array(coeffs))].into())
                .expect("evaluation");
            std::hint::black_box(outcome.fitness)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
