//! Criterion bench for the Fig. 8 kernel: one 64-bit data-pattern virus
//! evaluation (instantiate, execute, replay, classify).

use criterion::{criterion_group, criterion_main, Criterion};
use dstress::{DStress, EnvKind, ExperimentScale, Metric, WORST_WORD};
use dstress_vpl::BoundValue;

fn bench(c: &mut Criterion) {
    let dstress = DStress::new(ExperimentScale::quick(), 1);
    let mut evaluator = dstress
        .evaluator(&EnvKind::Word64, 60.0, Metric::CeAverage)
        .expect("evaluator");
    let mut group = c.benchmark_group("fig08_word64");
    group.sample_size(10);
    group.bench_function("evaluate_worst_virus", |b| {
        b.iter(|| {
            let outcome = evaluator
                .evaluate_bindings([("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into())
                .expect("evaluation");
            std::hint::black_box(outcome.fitness)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
