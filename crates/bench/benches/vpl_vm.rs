//! VPL execution tiers: the tree-walking interpreter vs the compiled
//! bytecode VM on the same instantiated virus.
//!
//! `virus/…` runs the WORD64 data-pattern virus (two full-memory loops at
//! quick scale, ~65k DRAM operations) against a minimal flat bus, so the
//! measured difference is engine dispatch overhead — the cost the bytecode
//! tier exists to remove. `session/…` runs the same virus through a real
//! recording [`Session`] (address translation + trace append per access),
//! the configuration `core::evaluate` uses. `compile/program` prices the
//! one-time lowering. `scripts/record_vpl_vm.sh` records medians and
//! speedups to `BENCH_vpl_vm.json`; the acceptance bar for `virus` is 5×.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress::templates::{process, WORD64};
use dstress::{EnvKind, ExperimentScale};
use dstress_platform::session::{SessionError, VirtAddr};
use dstress_platform::{MemoryBus, XGene2Server};
use dstress_vpl::ast::Program;
use dstress_vpl::parser::parse_program;
use dstress_vpl::{compile, compile_opt, BoundValue, ExecLimits, Interpreter, PassConfig, Vm};

/// A flat, allocation-free bus: loads and stores are a bounds check and a
/// vector index. Keeps the bus out of the measurement so the two engines'
/// dispatch costs dominate.
struct FlatBus {
    words: Vec<u64>,
    cursor: u64,
}

impl FlatBus {
    fn new(words: usize) -> Self {
        FlatBus {
            words: vec![0; words],
            cursor: 0,
        }
    }

    /// Rewinds allocation for the next pass; contents deliberately persist
    /// (the virus overwrites them, exactly as DIMM memory would).
    fn rewind(&mut self) {
        self.cursor = 0;
    }
}

impl MemoryBus for FlatBus {
    fn alloc(&mut self, bytes: u64) -> Result<VirtAddr, SessionError> {
        if bytes == 0 {
            return Err(SessionError::ZeroAllocation);
        }
        let base = self.cursor;
        let words = bytes.div_ceil(8);
        if (base / 8 + words) as usize > self.words.len() {
            return Err(SessionError::OutOfMemory {
                requested: bytes,
                available: (self.words.len() as u64 * 8).saturating_sub(base),
            });
        }
        self.cursor = base + words * 8;
        Ok(base)
    }

    #[inline]
    fn read_u64(&mut self, addr: VirtAddr) -> Result<u64, SessionError> {
        if !addr.is_multiple_of(8) {
            return Err(SessionError::Unaligned(addr));
        }
        self.words
            .get((addr / 8) as usize)
            .copied()
            .ok_or(SessionError::Unmapped(addr))
    }

    #[inline]
    fn write_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), SessionError> {
        if !addr.is_multiple_of(8) {
            return Err(SessionError::Unaligned(addr));
        }
        match self.words.get_mut((addr / 8) as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(SessionError::Unmapped(addr)),
        }
    }
}

/// The WORD64 virus instantiated at quick scale with a worst-case pattern.
fn word64_virus(scale: &ExperimentScale) -> Program {
    let template = process(WORD64, scale).expect("template processes");
    let mut bindings = EnvKind::Word64.bindings(scale).expect("env bindings");
    bindings.insert("PATTERN".into(), BoundValue::Scalar(0x3333_3333_3333_3333));
    template.instantiate(&bindings).expect("instantiates")
}

/// A pass-sensitive kernel: invariant arithmetic and an induction-variable
/// multiply in the hot loop, a short constant-trip reduction, and a store
/// that dies every outer iteration. None of it matches the fused-loop
/// peephole, so each optimization pass's effect is measurable in
/// isolation (`kernel/vm-<pass>` vs the unoptimized `kernel/vm`).
fn pass_kernel() -> Program {
    let init = vec!["0"; 64];
    let global = format!(
        "volatile unsigned long long v[] = {{ {} }};",
        init.join(", ")
    );
    parse_program(
        &global,
        "int i = 0; int j = 0; unsigned long long a = 7; \
         unsigned long long acc = 0; unsigned long long dead = 0;",
        "for (j = 0; j < 200; j += 1) { \
           for (i = 0; i < 64; i += 1) { v[i] = a * 3 + 9 + i * 24; } \
           for (i = 0; i < 4; i += 1) { acc += v[i] + i * 8; } \
           dead = acc + j; \
         } \
         v[0] = acc;",
    )
    .expect("kernel parses")
}

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let program = word64_virus(&scale);
    let limits = ExecLimits::default();
    let flat_words = scale.dimm_words() as usize + 1024;

    c.bench_function("compile/program", |b| {
        b.iter(|| std::hint::black_box(compile(&program).expect("compiles").len()))
    });

    let compiled = compile(&program).expect("compiles");
    let mut bus = FlatBus::new(flat_words);
    c.bench_function("virus/interp", |b| {
        b.iter(|| {
            bus.rewind();
            let stats = Interpreter::new(limits)
                .run(&program, &mut bus)
                .expect("runs");
            std::hint::black_box(stats.steps)
        })
    });
    c.bench_function("virus/vm", |b| {
        b.iter(|| {
            bus.rewind();
            let stats = Vm::new(limits).run(&compiled, &mut bus).expect("runs");
            std::hint::black_box(stats.steps)
        })
    });

    // The pass-sensitive kernel: the unoptimized VM, each pass alone, and
    // the full pipeline, all against the interpreter reference.
    let kernel = pass_kernel();
    let mut kbus = FlatBus::new(1024);
    c.bench_function("kernel/interp", |b| {
        b.iter(|| {
            kbus.rewind();
            let stats = Interpreter::new(limits)
                .run(&kernel, &mut kbus)
                .expect("runs");
            std::hint::black_box(stats.steps)
        })
    });
    let kernel_configs: [(&str, PassConfig); 6] = [
        ("kernel/vm", PassConfig::none()),
        (
            "kernel/vm-licm",
            PassConfig {
                licm: true,
                ..PassConfig::none()
            },
        ),
        (
            "kernel/vm-strength",
            PassConfig {
                strength: true,
                ..PassConfig::none()
            },
        ),
        (
            "kernel/vm-unroll",
            PassConfig {
                unroll: true,
                ..PassConfig::none()
            },
        ),
        (
            "kernel/vm-dse",
            PassConfig {
                dse: true,
                ..PassConfig::none()
            },
        ),
        ("kernel/vm-full", PassConfig::all()),
    ];
    for (name, config) in kernel_configs {
        let opt = compile_opt(&kernel, &config).expect("compiles");
        c.bench_function(name, |b| {
            b.iter(|| {
                kbus.rewind();
                let stats = Vm::new(limits).run(&opt, &mut kbus).expect("runs");
                std::hint::black_box(stats.steps)
            })
        });
    }

    // Through the real recording session: translation + span-batched trace
    // recording per access on both sides, quick-scale DIMMs so the
    // per-pass memory reset stays small. `session/vm-opt` adds the full
    // pass pipeline on top of the recording path.
    let mut server = XGene2Server::new(scale.server);
    c.bench_function("session/interp", |b| {
        b.iter(|| {
            server.reset_memory();
            let mut session = server.session(2);
            let stats = Interpreter::new(limits)
                .run(&program, &mut session)
                .expect("runs");
            std::hint::black_box((stats.steps, session.finish().len()))
        })
    });
    c.bench_function("session/vm", |b| {
        b.iter(|| {
            server.reset_memory();
            let mut session = server.session(2);
            let stats = Vm::new(limits).run(&compiled, &mut session).expect("runs");
            std::hint::black_box((stats.steps, session.finish().len()))
        })
    });
    let optimized = compile_opt(&program, &PassConfig::all()).expect("compiles");
    c.bench_function("session/vm-opt", |b| {
        b.iter(|| {
            server.reset_memory();
            let mut session = server.session(2);
            let stats = Vm::new(limits).run(&optimized, &mut session).expect("runs");
            std::hint::black_box((stats.steps, session.finish().len()))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
