//! Population-evaluation throughput: one GA generation's worth of distinct
//! chromosomes scored on the DStress substrate, serially vs. spread across
//! parallel evaluation workers (each owning a server replica).
//!
//! The acceptance target for the parallel path is a >= 2x speedup over the
//! serial path on a multi-core host. Both variants evaluate the same 40
//! distinct chromosomes; the printed per-sample times are directly
//! comparable.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress::patterns::BitCodec;
use dstress::{DStress, EnvKind, ExperimentScale, Metric, ParallelBitFitness};
use dstress_ga::{BitGenome, Fitness, ParallelFitness};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluates every chromosome on `workers` replicas, returning the score
/// sum (mirrors one engine evaluation round without the GA bookkeeping).
fn evaluate_population(
    fitness: &ParallelBitFitness,
    population: &[BitGenome],
    workers: usize,
) -> f64 {
    let mut replicas: Vec<ParallelBitFitness> = (0..workers).map(|_| fitness.replicate()).collect();
    crossbeam::scope(|s| {
        let handles: Vec<_> = replicas
            .iter_mut()
            .enumerate()
            .map(|(w, replica)| {
                let share: Vec<&BitGenome> = population.iter().skip(w).step_by(workers).collect();
                s.spawn(move |_| share.into_iter().map(|g| replica.evaluate(g)).sum::<f64>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    })
    .expect("scope")
}

fn bench(c: &mut Criterion) {
    let dstress = DStress::new(ExperimentScale::quick(), 99);
    let fitness = ParallelBitFitness {
        evaluator: dstress
            .evaluator(&EnvKind::Word64, 60.0, Metric::CeAverage)
            .expect("evaluator builds"),
        codec: BitCodec::Word64 {
            param: "PATTERN".into(),
        },
    };
    let mut rng = StdRng::seed_from_u64(4);
    let population: Vec<BitGenome> = (0..40).map(|_| BitGenome::random(&mut rng, 64)).collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("population_eval");
    group.sample_size(10);
    group.bench_function("serial_40", |b| {
        b.iter(|| std::hint::black_box(evaluate_population(&fitness, &population, 1)))
    });
    group.bench_function(&format!("parallel_40_x{cores}"), |b| {
        b.iter(|| std::hint::black_box(evaluate_population(&fitness, &population, cores)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
