//! Criterion bench for the Fig. 2 kernel: the address-mapping function.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress_dram::{AddressMap, DimmGeometry};

fn bench(c: &mut Criterion) {
    let map = AddressMap::new(DimmGeometry::default());
    let capacity = DimmGeometry::default().capacity_bytes();
    c.bench_function("fig02_map_unmap_roundtrip", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 8) % capacity;
            let loc = map.map(addr).expect("in range");
            std::hint::black_box(map.unmap(loc).expect("valid"))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
