//! Population-batched generation evaluation vs the per-candidate pipeline.
//!
//! `generation/batched` scores a full 40-candidate word64 generation (the
//! paper's population size, §IV-B) through `evaluate_generation`:
//! repeat chromosomes deduped, bulk-fill VM, shared profile and plan
//! caches, and the lane-packed VRT window kernel. `generation/per_candidate`
//! is the pipeline it replaced: every candidate instantiated, executed
//! (strict word-at-a-time VM), planned (caches cleared first) and run
//! one evaluation at a time. The batched path must win by the PR's 5×
//! acceptance bar; `scripts/record_generation.sh` records both sides and
//! the ratio to `BENCH_generation.json`.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use dstress::templates;
use dstress::{ExperimentScale, Metric, VirusEvaluator};
use dstress_platform::XGene2Server;
use dstress_vpl::{compile, BoundValue, ExecLimits, Vm};

/// A converged-looking population: 32 distinct data patterns plus 8
/// repeats of the front-runners, as a real GA generation carries.
fn population() -> Vec<HashMap<String, BoundValue>> {
    let mut patterns: Vec<u64> = (0..32u64)
        .map(|i| 0x3333_3333_3333_3333u64.rotate_left((i % 16) as u32) ^ (i << 56))
        .collect();
    patterns.extend(std::iter::repeat_n(patterns[0], 5));
    patterns.extend(std::iter::repeat_n(patterns[1], 3));
    patterns
        .iter()
        .map(|&p| [("PATTERN".to_string(), BoundValue::Scalar(p))].into())
        .collect()
}

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::paper();
    let make_server = || {
        let mut server = XGene2Server::new(scale.server);
        server.relax_second_domain();
        server.set_dimm_temperature(2, 60.0).unwrap();
        server
    };
    let template = templates::process(templates::WORD64, &scale).unwrap();
    let mem_words = scale.dimm_words();
    let env: HashMap<String, BoundValue> = [
        ("MEM_BYTES".to_string(), BoundValue::Scalar(mem_words * 8)),
        ("MEM_WORDS".to_string(), BoundValue::Scalar(mem_words)),
    ]
    .into_iter()
    .collect();
    let chromosomes = population();
    let runs = scale.runs_per_virus;

    let mut evaluator = VirusEvaluator::new(
        make_server(),
        template.clone(),
        env.clone(),
        Metric::CeAverage,
        runs,
        2,
    );
    c.bench_function("generation/batched", |b| {
        b.iter(|| {
            let results = evaluator.evaluate_generation(&chromosomes);
            std::hint::black_box(results.into_iter().filter(|r| r.is_ok()).count())
        })
    });

    // The replaced pipeline, reproduced step by step: no dedup, a strict
    // word-at-a-time VM, cold plan/profile caches for every candidate, and
    // the repeat runs evaluated one at a time.
    let mut server = make_server();
    let limits = ExecLimits::default();
    let mut nonce = 0u64;
    c.bench_function("generation/per_candidate", |b| {
        b.iter(|| {
            let mut scored = 0usize;
            for chromosome in &chromosomes {
                server.clear_eval_caches();
                let mut bindings = env.clone();
                bindings.extend(chromosome.iter().map(|(k, v)| (k.clone(), v.clone())));
                let program = template.instantiate(&bindings).unwrap();
                let compiled = compile(&program).unwrap();
                server.reset_memory();
                let mut session = server.session(2);
                Vm::new(limits)
                    .without_bulk_fill()
                    .run(&compiled, &mut session)
                    .unwrap();
                let run = session.finish();
                nonce += 1;
                let outcomes = server.evaluate_runs_sequential(&run, runs, nonce).unwrap();
                scored += outcomes.len();
            }
            std::hint::black_box(scored)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
