//! Prepared run-plan kernel vs the reference per-cell retention loop.
//!
//! `window/…` compares one refresh window at the DIMM layer over the full
//! default weak-cell population; `run/…` compares a complete multi-window
//! evaluation at the server layer. The prepared path re-examines only the
//! VRT-contingent cells each window (everything else is pre-partitioned
//! into static events at `prepare_run` time), so it must win by a wide
//! margin — the PR's acceptance bar is 5×. `scripts/record_window_kernel.sh`
//! records both sides to `BENCH_window_kernel.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress_dram::geometry::RowKey;
use dstress_dram::{ActivationCounts, Dimm, DimmConfig, Location, OperatingEnv};
use dstress_platform::session::MemoryBus;
use dstress_platform::{ServerConfig, XGene2Server};

fn bench(c: &mut Criterion) {
    // DIMM layer: one refresh window, default population (~8k weak cells),
    // worst-case fill in the hammered bank, heavy activation pressure.
    let mut dimm = Dimm::new(DimmConfig::default(), 1);
    let words = dimm.geometry().words_per_row();
    for col in 0..words {
        dimm.write_word(Location::new(0, 0, 0, col as u32), 0x3333_3333_3333_3333);
    }
    let env = OperatingEnv::relaxed(60.0);
    let mut acts = ActivationCounts::new();
    for row in 0..8 {
        acts.add(RowKey::new(0, 0, row), 40_000);
    }
    let disturbance = dimm.disturbance_profile(&acts);
    let plan = dimm.prepare_run(&env, &disturbance).expect("plan builds");
    let mut nonce = 0u64;
    c.bench_function("window/reference", |b| {
        b.iter(|| {
            nonce += 1;
            std::hint::black_box(
                dimm.advance_window_profiled(&env, &disturbance, nonce)
                    .len(),
            )
        })
    });
    let mut events = Vec::new();
    c.bench_function("window/planned", |b| {
        b.iter(|| {
            nonce += 1;
            dimm.advance_window_planned(&plan, nonce, &mut events)
                .expect("plan is fresh");
            std::hint::black_box(events.len())
        })
    });

    // Server layer: a recorded run evaluated over the default number of
    // refresh windows across all four MCUs.
    let mut server = XGene2Server::new(ServerConfig::default());
    server.relax_second_domain();
    server.set_dimm_temperature(2, 60.0).unwrap();
    server.set_dimm_temperature(3, 60.0).unwrap();
    let mut session = server.session(2);
    let base = session.alloc(64 * 1024).expect("alloc");
    let data = vec![0x3333_3333_3333_3333u64; 8192];
    session.fill(base, &data).expect("fill");
    for _ in 0..2 {
        for w in 0..8192u64 {
            session.read_u64(base + w * 8).expect("read");
        }
    }
    let run = session.finish();
    let prepared = server.prepare_run(&run).expect("plans build");
    c.bench_function("run/reference", |b| {
        b.iter(|| {
            nonce += 1;
            std::hint::black_box(server.evaluate_run_reference(&run, nonce).totals)
        })
    });
    c.bench_function("run/prepared", |b| {
        b.iter(|| {
            nonce += 1;
            std::hint::black_box(
                server
                    .evaluate_prepared(&prepared, nonce)
                    .expect("fresh")
                    .totals,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
