//! Criterion bench for the Fig. 9/10 kernel: one row-triple pattern virus
//! evaluation around profiled victim rows.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress::{DStress, EnvKind, ExperimentScale, Metric, BEST_WORD, WORST_WORD};
use dstress_vpl::BoundValue;

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let mut dstress = DStress::new(scale, 1);
    let victims = dstress.profile_victims(60.0, WORST_WORD).expect("victims");
    let row_words = scale.row_words() as usize;
    let metric = Metric::CeInRows(victims.clone());
    let mut evaluator = dstress
        .evaluator(&EnvKind::RowTriple { victims }, 60.0, metric)
        .expect("evaluator");
    let mut group = c.benchmark_group("fig09_fig10");
    group.sample_size(10);
    group.bench_function("evaluate_triple_virus", |b| {
        b.iter(|| {
            let outcome = evaluator
                .evaluate_bindings(
                    [
                        (
                            "PREV_PATTERN".to_string(),
                            BoundValue::Array(vec![BEST_WORD; row_words]),
                        ),
                        (
                            "VICTIM_PATTERN".to_string(),
                            BoundValue::Array(vec![WORST_WORD; row_words]),
                        ),
                        (
                            "NEXT_PATTERN".to_string(),
                            BoundValue::Array(vec![BEST_WORD; row_words]),
                        ),
                    ]
                    .into(),
                )
                .expect("evaluation");
            std::hint::black_box(outcome.fitness)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
