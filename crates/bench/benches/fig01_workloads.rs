//! Criterion bench for the Fig. 1b kernel: deploying a workload across the
//! four DIMMs and evaluating one run.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress::{ExperimentScale, Workload};
use dstress_platform::XGene2Server;

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let mut group = c.benchmark_group("fig01_workloads");
    group.sample_size(10);
    for workload in [Workload::Kmeans, Workload::Memcached] {
        group.bench_function(workload.name(), |b| {
            b.iter(|| {
                let mut server = XGene2Server::new(scale.server);
                server.relax_second_domain();
                let run = workload.deploy(&mut server, 7).expect("deploy");
                std::hint::black_box(server.evaluate_run(&run, 1).expect("fresh contents"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
