//! Criterion bench for the Fig. 14 kernel: one marginal-TREFP sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress::usecases::{find_marginal_trefp, SafetyCriterion};
use dstress::{DStress, EnvKind, ExperimentScale, WORST_WORD};
use dstress_vpl::BoundValue;
use std::collections::HashMap;

fn bench(c: &mut Criterion) {
    let dstress = DStress::new(ExperimentScale::quick(), 1);
    let chromosome: HashMap<String, BoundValue> =
        [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into();
    let mut group = c.benchmark_group("fig14_margins");
    group.sample_size(10);
    group.bench_function("margin_sweep_6pt", |b| {
        b.iter(|| {
            let margin = find_marginal_trefp(
                &dstress,
                &EnvKind::Word64,
                &chromosome,
                60.0,
                SafetyCriterion::NoErrors,
                6,
            )
            .expect("margin sweep");
            std::hint::black_box(margin.marginal_trefp_s)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
