//! Lowering resolved virus programs to flat register bytecode.
//!
//! The tree-walking [`crate::interp`] pays a step-budget check, a `Box`
//! pointer chase, and a `Result` unwind frame *per AST node*. A GA campaign
//! re-executes the same chromosome-instantiated program for every averaging
//! run, so that overhead multiplies into campaign wall-clock. This module
//! compiles the resolved tree once into a linear `Vec<Op>` the
//! [`crate::vm`] executes in a tight loop.
//!
//! # Step accounting
//!
//! The interpreter increments `ExecStats::steps` once per statement and
//! once per expression node (pre-order), checking the budget at every
//! increment. The VM must be **bit-identical** — same step totals, same
//! `ExecutionLimit`-vs-runtime-error ordering, same bus trace — while
//! checking far less often. The compiler achieves this with a static
//! `pending` counter:
//!
//! * visiting a node during lowering adds `+1` to `pending` (pre-order,
//!   mirroring the interpreter exactly);
//! * every op that can touch the bus or fail (`LoadIndex`, `StoreIndex`,
//!   `DivRem`, `Malloc`, …) *takes* the accumulated `pending` as its
//!   `charge`: at run time the VM adds the charge to `steps` and checks the
//!   budget **before** the side effect or error;
//! * control-flow edges (`Jump*`) also carry the outstanding charge, and a
//!   `Bump` op flushes it on fall-through edges, so `pending` is zero at
//!   every join point and charges are never double- or under-counted on any
//!   path;
//! * `Halt` carries the final residue.
//!
//! Pure register ops (`Const`, `Alu`, `DeclSlot`) carry no charge and are
//! never budget-checked: the VM may execute a handful of them past the
//! point where the interpreter would have stopped, but they have no
//! observable effect, and the next charged op (every loop has a back-edge
//! jump) raises the identical `ExecutionLimit`. The net effect is the
//! issue's "one budget check per basic block" with provably identical
//! observable behaviour — pinned by the `dstress-tests` differential suite.
//!
//! # Fusion
//!
//! Constants fold into [`Operand::Imm`] at compile time, so the paper's
//! inner-loop shapes cost one op each: `v[i] = 0x3333…` becomes a single
//! `StoreIndex` with an immediate source, and `acc += v[i]` becomes
//! `LoadIndex` + `FoldSlot` (read-modify-write of a variable slot in one
//! dispatch) instead of five tree nodes.
//!
//! On top of that, a peephole pass recognizes the two loop shapes that
//! dominate every virus template — the background fill
//! `for (i = 0; i < N; i += 1) { buf[i] = C; }` and the read-pressure
//! reduction `acc += buf[i]` — and plants a [`Op::FusedLoop`]
//! superinstruction in front of the ordinary loop code. The fused handler
//! runs the whole loop without per-op dispatch, charging steps at exactly
//! the three check points the unfused sequence has (condition jump, bus
//! access, back edge) with charges read back from the emitted ops, so the
//! accounting is identical by construction. Slot-kind guards are checked
//! when control first reaches the loop; if they fail (e.g. the counter was
//! re-declared over a DRAM scalar), the handler falls through to the
//! unfused ops that still follow it.

use crate::ast::{AssignOp, BinOp, Program, UnOp};
use crate::error::VplError;
use crate::resolve::{resolve, RExpr, RLValue, RStmt};

/// An op input: an immediate folded at compile time, or a virtual register
/// holding an intermediate value.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Operand {
    Imm(u64),
    Reg(u16),
}

/// Infallible arithmetic (wrapping semantics; comparisons yield 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AluOp {
    Add,
    Sub,
    Mul,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
}

/// Evaluates an infallible ALU op with the interpreter's exact semantics.
#[inline]
pub(crate) fn alu(op: AluOp, l: u64, r: u64) -> u64 {
    match op {
        AluOp::Add => l.wrapping_add(r),
        AluOp::Sub => l.wrapping_sub(r),
        AluOp::Mul => l.wrapping_mul(r),
        AluOp::Shl => l.wrapping_shl(r as u32),
        AluOp::Shr => l.wrapping_shr(r as u32),
        AluOp::BitAnd => l & r,
        AluOp::BitOr => l | r,
        AluOp::BitXor => l ^ r,
        AluOp::Eq => (l == r) as u64,
        AluOp::Ne => (l != r) as u64,
        AluOp::Lt => (l < r) as u64,
        AluOp::Gt => (l > r) as u64,
        AluOp::Le => (l <= r) as u64,
        AluOp::Ge => (l >= r) as u64,
    }
}

fn alu_of(op: BinOp) -> AluOp {
    match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Shl => AluOp::Shl,
        BinOp::Shr => AluOp::Shr,
        BinOp::BitAnd => AluOp::BitAnd,
        BinOp::BitOr => AluOp::BitOr,
        BinOp::BitXor => AluOp::BitXor,
        BinOp::Eq => AluOp::Eq,
        BinOp::Ne => AluOp::Ne,
        BinOp::Lt => AluOp::Lt,
        BinOp::Gt => AluOp::Gt,
        BinOp::Le => AluOp::Le,
        BinOp::Ge => AluOp::Ge,
        BinOp::Div | BinOp::Rem | BinOp::And | BinOp::Or => {
            unreachable!("fallible/short-circuit ops are lowered separately")
        }
    }
}

/// One bytecode instruction. `charge` fields hold the step-budget debt
/// accumulated since the previous charged op (see module docs).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// `regs[dst] = value`. Pure.
    Const { dst: u16, value: u64 },
    /// `regs[dst] = alu(op, lhs, rhs)`. Pure.
    Alu {
        op: AluOp,
        dst: u16,
        lhs: Operand,
        rhs: Operand,
    },
    /// `regs[dst] = lhs / rhs` (or `%`). Fails on a zero divisor.
    DivRem {
        rem: bool,
        dst: u16,
        lhs: Operand,
        rhs: Operand,
        charge: u32,
    },
    /// Reads variable slot `slot`: register copy, DRAM scalar load, or
    /// array-to-base-address decay, resolved dynamically like the
    /// interpreter's bare-variable evaluation.
    LoadSlot { dst: u16, slot: u32, charge: u32 },
    /// Writes variable slot `slot` (register set or DRAM scalar store).
    StoreSlot {
        slot: u32,
        src: Operand,
        charge: u32,
    },
    /// Fused compound assignment `slot ∘= src` for infallible `∘`
    /// (read-modify-write in one dispatch).
    FoldSlot {
        op: AluOp,
        slot: u32,
        src: Operand,
        charge: u32,
    },
    /// `regs[dst] = base[index]` — bounds-checked DRAM load.
    LoadIndex {
        dst: u16,
        base: u32,
        index: Operand,
        charge: u32,
    },
    /// `base[index] = src` — bounds-checked DRAM store.
    StoreIndex {
        base: u32,
        index: Operand,
        src: Operand,
        charge: u32,
    },
    /// `regs[dst] = malloc(bytes)`.
    Malloc {
        dst: u16,
        bytes: Operand,
        charge: u32,
    },
    /// Declares (or re-declares, shadowing a global) slot as a register
    /// initialized to `init`. Pure.
    DeclSlot { slot: u32, init: Operand },
    /// Flushes `n` pending steps on a fall-through edge into a join point.
    Bump { n: u32 },
    /// Unconditional jump.
    Jump { target: u32, charge: u32 },
    /// Jump when `cond == 0`.
    JumpIfZero {
        cond: Operand,
        target: u32,
        charge: u32,
    },
    /// Jump when `cond != 0`.
    JumpIfNonZero {
        cond: Operand,
        target: u32,
        charge: u32,
    },
    /// Placeholder in front of a loop the peephole pass did not fuse.
    Nop,
    /// A whole counted loop in one dispatch (see module docs, "Fusion").
    /// Falls through to the equivalent unfused ops when its slot-kind
    /// guards fail at run time.
    FusedLoop(FusedLoop),
    /// End of program: flush the residual charge and return the stats.
    Halt { charge: u32 },
}

/// A fused `for (var = …; var < bound; var += 1)` loop over one bus access
/// per iteration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedLoop {
    /// Counter slot; must hold a register at loop entry (guarded).
    pub var: u32,
    /// Loop bound (`var < bound`), folded to an immediate.
    pub bound: u64,
    /// The single bus access performed each iteration.
    pub body: FusedBody,
    /// Steps charged at the condition check (final failing check included).
    pub c_cond: u32,
    /// Steps charged at the bus-access check.
    pub c_access: u32,
    /// Steps charged at the back edge.
    pub c_back: u32,
    /// First op after the loop.
    pub exit: u32,
}

/// The per-iteration body of a [`FusedLoop`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum FusedBody {
    /// `base[var] = value` — the background-fill shape.
    StoreImm {
        /// Array/pointer slot being written.
        base: u32,
        /// The immediate pattern.
        value: u64,
    },
    /// `acc ∘= base[var]` — the read-pressure reduction shape. `acc` must
    /// hold a register at loop entry (guarded).
    Accumulate {
        /// The fold operator.
        op: AluOp,
        /// Array/pointer slot being read.
        base: u32,
        /// Accumulator slot.
        acc: u32,
    },
}

/// A virus program lowered to flat bytecode, ready for repeated execution
/// by [`crate::vm::Vm`].
///
/// Compile once per chromosome (resolution, constant folding, and step
/// accounting are all done here), then run it against a fresh bus per
/// averaging run.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) names: Vec<String>,
    pub(crate) globals: Vec<(u32, Vec<u64>)>,
    pub(crate) ops: Vec<Op>,
    pub(crate) num_slots: u32,
    pub(crate) num_regs: u16,
}

impl CompiledProgram {
    /// Number of bytecode ops (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the program lowered to nothing but a `Halt`.
    pub fn is_empty(&self) -> bool {
        self.ops.len() <= 1
    }
}

/// Compiles a fully-instantiated program to bytecode.
///
/// # Errors
///
/// Returns the same resolution errors as [`crate::Interpreter::run`]
/// (leftover placeholder, undeclared variable, unknown function,
/// non-constant global initializer), surfaced at compile time instead of
/// run time.
pub fn compile(program: &Program) -> Result<CompiledProgram, VplError> {
    let resolved = resolve(program)?;
    let mut e = Emitter::default();
    for s in &resolved.locals {
        e.stmt(s);
    }
    for s in &resolved.body {
        e.stmt(s);
    }
    let charge = e.take();
    e.ops.push(Op::Halt { charge });
    Ok(CompiledProgram {
        num_slots: resolved.names.len() as u32,
        names: resolved.names,
        globals: resolved.globals,
        ops: e.ops,
        num_regs: e.max_regs,
    })
}

/// Bytecode emitter: tracks the pending step debt and the virtual register
/// high-water mark while walking the resolved tree.
#[derive(Default)]
struct Emitter {
    ops: Vec<Op>,
    pending: u32,
    next_reg: u16,
    max_regs: u16,
}

impl Emitter {
    fn take(&mut self) -> u32 {
        std::mem::take(&mut self.pending)
    }

    /// Flushes pending steps before binding a fall-through join point.
    fn flush(&mut self) {
        if self.pending > 0 {
            let n = self.take();
            self.ops.push(Op::Bump { n });
        }
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn alloc_reg(&mut self) -> u16 {
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_regs = self.max_regs.max(self.next_reg);
        r
    }

    /// Emits an unconditional jump (flushing pending into its charge) and
    /// returns its index for patching.
    fn emit_jump(&mut self) -> usize {
        let charge = self.take();
        self.ops.push(Op::Jump {
            target: u32::MAX,
            charge,
        });
        self.ops.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump { target: t, .. }
            | Op::JumpIfZero { target: t, .. }
            | Op::JumpIfNonZero { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    /// Emits an ALU op, folding when both inputs are immediates. Folding is
    /// step-exact: the interpreter walks the same nodes, and their counts
    /// stay in `pending` either way.
    fn alu(&mut self, op: AluOp, lhs: Operand, rhs: Operand) -> Operand {
        if let (Operand::Imm(l), Operand::Imm(r)) = (lhs, rhs) {
            return Operand::Imm(alu(op, l, r));
        }
        let dst = self.alloc_reg();
        self.ops.push(Op::Alu { op, dst, lhs, rhs });
        Operand::Reg(dst)
    }

    fn expr(&mut self, e: &RExpr) -> Operand {
        self.pending += 1;
        match e {
            RExpr::Num(n) => Operand::Imm(*n),
            RExpr::Slot(slot) => {
                let dst = self.alloc_reg();
                let charge = self.take();
                self.ops.push(Op::LoadSlot {
                    dst,
                    slot: *slot,
                    charge,
                });
                Operand::Reg(dst)
            }
            RExpr::Index { base, index } => {
                let index = self.expr(index);
                let dst = self.alloc_reg();
                let charge = self.take();
                self.ops.push(Op::LoadIndex {
                    dst,
                    base: *base,
                    index,
                    charge,
                });
                Operand::Reg(dst)
            }
            RExpr::Unary { op, operand } => {
                let v = self.expr(operand);
                match op {
                    UnOp::Neg => self.alu(AluOp::Sub, Operand::Imm(0), v),
                    UnOp::Not => self.alu(AluOp::Eq, v, Operand::Imm(0)),
                }
            }
            RExpr::Binary { op, lhs, rhs } => match op {
                BinOp::And => self.short_circuit(lhs, rhs, true),
                BinOp::Or => self.short_circuit(lhs, rhs, false),
                BinOp::Div | BinOp::Rem => {
                    let l = self.expr(lhs);
                    let r = self.expr(rhs);
                    let dst = self.alloc_reg();
                    let charge = self.take();
                    self.ops.push(Op::DivRem {
                        rem: matches!(op, BinOp::Rem),
                        dst,
                        lhs: l,
                        rhs: r,
                        charge,
                    });
                    Operand::Reg(dst)
                }
                _ => {
                    let l = self.expr(lhs);
                    let r = self.expr(rhs);
                    self.alu(alu_of(*op), l, r)
                }
            },
            RExpr::Malloc(bytes) => {
                let bytes = self.expr(bytes);
                let dst = self.alloc_reg();
                let charge = self.take();
                self.ops.push(Op::Malloc { dst, bytes, charge });
                Operand::Reg(dst)
            }
        }
    }

    /// Lowers `lhs && rhs` / `lhs || rhs` with the interpreter's exact
    /// short-circuit semantics: `rhs` (and its step counts) only on the
    /// non-short path, result normalized to 0/1.
    fn short_circuit(&mut self, lhs: &RExpr, rhs: &RExpr, is_and: bool) -> Operand {
        let l = self.expr(lhs);
        if let Operand::Imm(v) = l {
            // Statically decided: either the rhs never runs…
            if is_and && v == 0 {
                return Operand::Imm(0);
            }
            if !is_and && v != 0 {
                return Operand::Imm(1);
            }
            // …or the result is just the normalized rhs.
            let r = self.expr(rhs);
            return self.alu(AluOp::Ne, r, Operand::Imm(0));
        }
        let dst = self.alloc_reg();
        let charge = self.take();
        let br = self.ops.len();
        self.ops.push(if is_and {
            Op::JumpIfZero {
                cond: l,
                target: u32::MAX,
                charge,
            }
        } else {
            Op::JumpIfNonZero {
                cond: l,
                target: u32::MAX,
                charge,
            }
        });
        let r = self.expr(rhs);
        self.ops.push(Op::Alu {
            op: AluOp::Ne,
            dst,
            lhs: r,
            rhs: Operand::Imm(0),
        });
        let jend = self.emit_jump();
        self.patch(br, self.here());
        self.ops.push(Op::Const {
            dst,
            value: if is_and { 0 } else { 1 },
        });
        self.patch(jend, self.here());
        Operand::Reg(dst)
    }

    fn stmt(&mut self, s: &RStmt) {
        // Registers only carry values within one statement (variables live
        // in slots), so the temp file resets at every statement boundary.
        let reg_base = self.next_reg;
        self.pending += 1;
        match s {
            RStmt::DeclInit { slot, init } => {
                let v = match init {
                    Some(e) => self.expr(e),
                    None => Operand::Imm(0),
                };
                self.ops.push(Op::DeclSlot {
                    slot: *slot,
                    init: v,
                });
            }
            RStmt::Expr(e) => {
                self.expr(e);
            }
            RStmt::Assign { target, op, value } => {
                // The interpreter evaluates the value before touching the
                // target, and compound assignment to `base[index]`
                // evaluates the index twice (read, then write) — both
                // reproduced exactly here.
                let v = self.expr(value);
                match (target, op) {
                    (RLValue::Slot(slot), AssignOp::Set) => {
                        let charge = self.take();
                        self.ops.push(Op::StoreSlot {
                            slot: *slot,
                            src: v,
                            charge,
                        });
                    }
                    (RLValue::Slot(slot), AssignOp::Add | AssignOp::Sub | AssignOp::Mul) => {
                        let charge = self.take();
                        self.ops.push(Op::FoldSlot {
                            op: match op {
                                AssignOp::Add => AluOp::Add,
                                AssignOp::Sub => AluOp::Sub,
                                _ => AluOp::Mul,
                            },
                            slot: *slot,
                            src: v,
                            charge,
                        });
                    }
                    (RLValue::Slot(slot), AssignOp::Div) => {
                        let old = self.alloc_reg();
                        let charge = self.take();
                        self.ops.push(Op::LoadSlot {
                            dst: old,
                            slot: *slot,
                            charge,
                        });
                        let dst = self.alloc_reg();
                        self.ops.push(Op::DivRem {
                            rem: false,
                            dst,
                            lhs: Operand::Reg(old),
                            rhs: v,
                            charge: 0,
                        });
                        self.ops.push(Op::StoreSlot {
                            slot: *slot,
                            src: Operand::Reg(dst),
                            charge: 0,
                        });
                    }
                    (RLValue::Index { base, index }, AssignOp::Set) => {
                        let i = self.expr(index);
                        let charge = self.take();
                        self.ops.push(Op::StoreIndex {
                            base: *base,
                            index: i,
                            src: v,
                            charge,
                        });
                    }
                    (RLValue::Index { base, index }, compound) => {
                        let i1 = self.expr(index);
                        let old = self.alloc_reg();
                        let charge = self.take();
                        self.ops.push(Op::LoadIndex {
                            dst: old,
                            base: *base,
                            index: i1,
                            charge,
                        });
                        let new = match compound {
                            AssignOp::Add => self.alu(AluOp::Add, Operand::Reg(old), v),
                            AssignOp::Sub => self.alu(AluOp::Sub, Operand::Reg(old), v),
                            AssignOp::Mul => self.alu(AluOp::Mul, Operand::Reg(old), v),
                            _ => {
                                let dst = self.alloc_reg();
                                self.ops.push(Op::DivRem {
                                    rem: false,
                                    dst,
                                    lhs: Operand::Reg(old),
                                    rhs: v,
                                    charge: 0,
                                });
                                Operand::Reg(dst)
                            }
                        };
                        let i2 = self.expr(index);
                        let charge = self.take();
                        self.ops.push(Op::StoreIndex {
                            base: *base,
                            index: i2,
                            src: new,
                            charge,
                        });
                    }
                }
            }
            RStmt::IncDec { target, increment } => {
                let op = if *increment { AluOp::Add } else { AluOp::Sub };
                match target {
                    RLValue::Slot(slot) => {
                        let charge = self.take();
                        self.ops.push(Op::FoldSlot {
                            op,
                            slot: *slot,
                            src: Operand::Imm(1),
                            charge,
                        });
                    }
                    RLValue::Index { base, index } => {
                        let i1 = self.expr(index);
                        let old = self.alloc_reg();
                        let charge = self.take();
                        self.ops.push(Op::LoadIndex {
                            dst: old,
                            base: *base,
                            index: i1,
                            charge,
                        });
                        let new = self.alu(op, Operand::Reg(old), Operand::Imm(1));
                        let i2 = self.expr(index);
                        let charge = self.take();
                        self.ops.push(Op::StoreIndex {
                            base: *base,
                            index: i2,
                            src: new,
                            charge,
                        });
                    }
                }
            }
            RStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.stmt(init);
                self.flush();
                // Reserve a slot for a possible loop superinstruction; the
                // peephole pass replaces it after the loop is emitted, so
                // no jump target ever shifts.
                let fuse_at = self.ops.len();
                self.ops.push(Op::Nop);
                let top = self.here();
                // The interpreter pays one step per iteration before
                // evaluating the condition (including the final failing
                // check).
                self.pending += 1;
                let c = self.expr(cond);
                match c {
                    // Constant-false condition: evaluated once, loop never
                    // entered; its counts stay pending.
                    Operand::Imm(0) => {}
                    // Constant-true condition: no exit edge; the back-edge
                    // jump's budget check bounds the loop.
                    Operand::Imm(_) => {
                        for s in body {
                            self.stmt(s);
                        }
                        self.stmt(step);
                        let j = self.emit_jump();
                        self.patch(j, top);
                    }
                    Operand::Reg(_) => {
                        let charge = self.take();
                        let exit = self.ops.len();
                        self.ops.push(Op::JumpIfZero {
                            cond: c,
                            target: u32::MAX,
                            charge,
                        });
                        for s in body {
                            self.stmt(s);
                        }
                        self.stmt(step);
                        let j = self.emit_jump();
                        self.patch(j, top);
                        self.patch(exit, self.here());
                        self.try_fuse(fuse_at, top);
                    }
                }
            }
            RStmt::If { cond, then, els } => {
                let c = self.expr(cond);
                match c {
                    Operand::Imm(0) => {
                        for s in els {
                            self.stmt(s);
                        }
                    }
                    Operand::Imm(_) => {
                        for s in then {
                            self.stmt(s);
                        }
                    }
                    Operand::Reg(_) => {
                        let charge = self.take();
                        let br = self.ops.len();
                        self.ops.push(Op::JumpIfZero {
                            cond: c,
                            target: u32::MAX,
                            charge,
                        });
                        for s in then {
                            self.stmt(s);
                        }
                        if els.is_empty() {
                            self.flush();
                            self.patch(br, self.here());
                        } else {
                            let j = self.emit_jump();
                            self.patch(br, self.here());
                            for s in els {
                                self.stmt(s);
                            }
                            self.flush();
                            self.patch(j, self.here());
                        }
                    }
                }
            }
            RStmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s);
                }
            }
        }
        self.next_reg = reg_base;
    }

    /// Peephole pass over a just-emitted loop: when the window between the
    /// loop head and exit is one of the two canonical template shapes, the
    /// reserved `Nop` becomes a [`Op::FusedLoop`] carrying the window's own
    /// charges. The unfused ops stay in place as the guard-failure path.
    fn try_fuse(&mut self, fuse_at: usize, top: u32) {
        let exit = self.here();
        // Condition prologue shared by both shapes:
        //   LoadSlot var → Alu Lt (reg, imm bound) → JumpIfZero exit
        let window = &self.ops[top as usize..];
        let Some((
            &[Op::LoadSlot {
                dst: r_var,
                slot: var,
                charge: c0,
            }, Op::Alu {
                op: AluOp::Lt,
                dst: r_cond,
                lhs: Operand::Reg(l),
                rhs: Operand::Imm(bound),
            }, Op::JumpIfZero {
                cond: Operand::Reg(c),
                target: t_exit,
                charge: c1,
            }],
            rest,
        )) = window.split_first_chunk::<3>()
        else {
            return;
        };
        if l != r_var || c != r_cond || t_exit != exit {
            return;
        }
        let fused = match *rest {
            // Fill: buf[var] = imm; var += 1.
            [Op::LoadSlot {
                dst: r_idx,
                slot: idx_slot,
                charge: c2,
            }, Op::StoreIndex {
                base,
                index: Operand::Reg(i),
                src: Operand::Imm(value),
                charge: c3,
            }, Op::FoldSlot {
                op: AluOp::Add,
                slot: step_slot,
                src: Operand::Imm(1),
                charge: c4,
            }, Op::Jump {
                target: t_top,
                charge: c5,
            }] if idx_slot == var
                && i == r_idx
                && step_slot == var
                && t_top == top
                && base != var =>
            {
                FusedLoop {
                    var,
                    bound,
                    body: FusedBody::StoreImm { base, value },
                    c_cond: c0 + c1,
                    c_access: c2 + c3,
                    c_back: c4 + c5,
                    exit,
                }
            }
            // Reduce: acc ∘= buf[var]; var += 1.
            [Op::LoadSlot {
                dst: r_idx,
                slot: idx_slot,
                charge: c2,
            }, Op::LoadIndex {
                dst: r_elem,
                base,
                index: Operand::Reg(i),
                charge: c3,
            }, Op::FoldSlot {
                op,
                slot: acc,
                src: Operand::Reg(s),
                charge: c4,
            }, Op::FoldSlot {
                op: AluOp::Add,
                slot: step_slot,
                src: Operand::Imm(1),
                charge: c5,
            }, Op::Jump {
                target: t_top,
                charge: c6,
            }] if idx_slot == var
                && i == r_idx
                && s == r_elem
                && step_slot == var
                && t_top == top
                && base != var
                && acc != var
                && acc != base =>
            {
                FusedLoop {
                    var,
                    bound,
                    body: FusedBody::Accumulate { op, base, acc },
                    c_cond: c0 + c1,
                    c_access: c2 + c3,
                    c_back: c4 + c5 + c6,
                    exit,
                }
            }
            _ => return,
        };
        self.ops[fuse_at] = Op::FusedLoop(fused);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compiled(global: &str, local: &str, body: &str) -> CompiledProgram {
        compile(&parse_program(global, local, body).expect("parses")).expect("compiles")
    }

    #[test]
    fn template_loop_shapes_fuse() {
        let p = compiled(
            "volatile unsigned long long v[] = { 1, 2, 3, 4 };",
            "int i = 0; unsigned long long acc = 0;",
            "for (i = 0; i < 4; i += 1) { v[i] = 51; } \
             for (i = 0; i < 4; i += 1) { acc += v[i]; }",
        );
        let fused: Vec<&FusedLoop> = p
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::FusedLoop(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(fused.len(), 2, "both template shapes must fuse");
        assert!(matches!(
            fused[0].body,
            FusedBody::StoreImm { value: 51, .. }
        ));
        assert!(matches!(
            fused[1].body,
            FusedBody::Accumulate { op: AluOp::Add, .. }
        ));
        assert_eq!(fused[0].bound, 4);
    }

    #[test]
    fn non_canonical_loops_do_not_fuse() {
        // Computed source value, complex index, and non-unit step must all
        // keep the ordinary op sequence (placeholder stays a Nop).
        let p = compiled(
            "volatile unsigned long long v[] = { 1, 2, 3, 4 };",
            "int i = 0;",
            "for (i = 0; i < 4; i += 1) { v[i] = i * 2; } \
             for (i = 0; i < 2; i += 1) { v[i + 1] = 9; } \
             for (i = 0; i < 4; i += 2) { v[i] = 1; }",
        );
        assert!(
            !p.ops.iter().any(|op| matches!(op, Op::FusedLoop(_))),
            "no non-canonical loop may fuse"
        );
        assert!(p.ops.iter().any(|op| matches!(op, Op::Nop)));
    }
}
