//! Semantic analysis (the third step of the paper's processing phase).
//!
//! Checks that every referenced variable is declared, that `malloc` is the
//! only function called, and that array-shaped parameters are used only as
//! whole-array initializers. Placeholders that are *not* declared
//! parameters are permitted: they are environment inputs (e.g. target-row
//! address arrays computed by the framework) and must be bound at
//! instantiation.

use crate::ast::{Decl, Expr, Init, LValue, Program, Stmt};
use crate::error::VplError;
use crate::template::{ParamDecl, ParamShape};
use std::collections::HashSet;

/// Runs all semantic checks on a processed program.
///
/// # Errors
///
/// Returns [`VplError::Sema`] describing the first violation found.
pub fn check_program(program: &Program, params: &[ParamDecl]) -> Result<(), VplError> {
    let mut checker = Checker {
        declared: HashSet::new(),
        array_params: params
            .iter()
            .filter(|p| matches!(p.shape, ParamShape::Array { .. }))
            .map(|p| p.name.clone())
            .collect(),
    };
    for d in &program.globals {
        checker.declare(d)?;
        checker.check_init(d)?;
    }
    for d in &program.locals {
        checker.declare(d)?;
        checker.check_init(d)?;
    }
    for s in &program.body {
        checker.check_stmt(s)?;
    }
    Ok(())
}

struct Checker {
    declared: HashSet<String>,
    array_params: HashSet<String>,
}

impl Checker {
    fn declare(&mut self, d: &Decl) -> Result<(), VplError> {
        if !self.declared.insert(d.name.clone()) {
            return Err(VplError::Sema(format!(
                "variable `{}` declared twice",
                d.name
            )));
        }
        Ok(())
    }

    fn check_init(&mut self, d: &Decl) -> Result<(), VplError> {
        match &d.init {
            // A whole-array placeholder initializer is the one place an
            // array parameter may appear.
            Some(Init::Expr(Expr::Placeholder(_))) if d.is_array => Ok(()),
            Some(Init::Expr(e)) => self.check_expr(e),
            Some(Init::List(es)) => es.iter().try_for_each(|e| self.check_expr(e)),
            None => Ok(()),
        }
    }

    fn check_stmt(&mut self, s: &Stmt) -> Result<(), VplError> {
        match s {
            Stmt::Decl(d) => {
                self.declare(d)?;
                self.check_init(d)
            }
            Stmt::Expr(e) => self.check_expr(e),
            Stmt::Assign { target, value, .. } => {
                self.check_lvalue(target)?;
                self.check_expr(value)
            }
            Stmt::IncDec { target, .. } => self.check_lvalue(target),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.check_stmt(init)?;
                self.check_expr(cond)?;
                self.check_stmt(step)?;
                body.iter().try_for_each(|s| self.check_stmt(s))
            }
            Stmt::If { cond, then, els } => {
                self.check_expr(cond)?;
                then.iter().try_for_each(|s| self.check_stmt(s))?;
                els.iter().try_for_each(|s| self.check_stmt(s))
            }
            Stmt::Block(stmts) => stmts.iter().try_for_each(|s| self.check_stmt(s)),
        }
    }

    fn check_lvalue(&self, lv: &LValue) -> Result<(), VplError> {
        match lv {
            LValue::Var(name) => self.check_var(name),
            LValue::Index { base, index } => {
                self.check_var(base)?;
                self.check_expr(index)
            }
        }
    }

    fn check_var(&self, name: &str) -> Result<(), VplError> {
        if self.declared.contains(name) {
            Ok(())
        } else {
            Err(VplError::Sema(format!("variable `{name}` is not declared")))
        }
    }

    fn check_expr(&self, e: &Expr) -> Result<(), VplError> {
        match e {
            Expr::Num(_) => Ok(()),
            Expr::Var(name) => self.check_var(name),
            Expr::Placeholder(p) => {
                if self.array_params.contains(p) {
                    Err(VplError::Sema(format!(
                        "array parameter `{p}` used as a scalar expression; bind it to an \
                         array initializer instead"
                    )))
                } else {
                    Ok(())
                }
            }
            Expr::Index { base, index } => {
                self.check_var(base)?;
                self.check_expr(index)
            }
            Expr::Unary { operand, .. } => self.check_expr(operand),
            Expr::Binary { lhs, rhs, .. } => {
                self.check_expr(lhs)?;
                self.check_expr(rhs)
            }
            Expr::Call { name, args } => {
                if name != "malloc" {
                    return Err(VplError::Sema(format!(
                        "unknown function `{name}` (only `malloc` is available)"
                    )));
                }
                if args.len() != 1 {
                    return Err(VplError::Sema("malloc takes exactly one argument".into()));
                }
                self.check_expr(&args[0])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(global: &str, local: &str, body: &str) -> Result<(), VplError> {
        let program = parse_program(global, local, body).expect("parses");
        check_program(&program, &[])
    }

    #[test]
    fn accepts_well_formed_program() {
        check(
            "volatile unsigned long long buf[] = { 1, 2 };",
            "int i = 0;",
            "for (i = 0; i < 2; i += 1) { buf[i] = i; }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared_variable() {
        let err = check("", "", "x = 1;").unwrap_err();
        assert!(err.to_string().contains("`x`"));
    }

    #[test]
    fn rejects_double_declaration() {
        let err = check("", "int i = 0; int i = 1;", "").unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn rejects_unknown_function() {
        let err = check("", "", "unsigned long long p = free(1);").unwrap_err();
        assert!(err.to_string().contains("free"));
    }

    #[test]
    fn rejects_malloc_arity_errors() {
        assert!(check("", "", "unsigned long long p = malloc();").is_err());
        assert!(check("", "", "unsigned long long p = malloc(1, 2);").is_err());
    }

    #[test]
    fn body_declarations_enter_scope() {
        check("", "", "unsigned long long p = malloc(8); p[0] = 1;").unwrap();
    }

    #[test]
    fn array_param_as_scalar_is_rejected() {
        let program = parse_program("", "int i = 0;", "i = $$$_A_$$$;").unwrap();
        let params = vec![ParamDecl {
            name: "A".into(),
            shape: ParamShape::Array {
                len: 2,
                lo: 0,
                hi: 1,
            },
        }];
        let err = check_program(&program, &params).unwrap_err();
        assert!(err.to_string().contains("array parameter"));
    }

    #[test]
    fn array_param_as_array_initializer_is_accepted() {
        let program = parse_program(
            "volatile unsigned long long v[] = $$$_A_$$$;",
            "",
            "v[0] = 1;",
        )
        .unwrap();
        let params = vec![ParamDecl {
            name: "A".into(),
            shape: ParamShape::Array {
                len: 2,
                lo: 0,
                hi: 1,
            },
        }];
        check_program(&program, &params).unwrap();
    }

    #[test]
    fn undeclared_scalar_placeholders_are_environment_inputs() {
        check("", "int i = 0;", "i = $$$_ENV_$$$;").unwrap();
    }
}
