//! The bytecode VM: executes a [`CompiledProgram`] against a memory bus.
//!
//! Unlike [`crate::Interpreter`], which takes `&mut dyn MemoryBus` and pays
//! a virtual call per access, [`Vm::run`] is generic over [`BusOps`]: each
//! concrete bus (the platform `Session`, a test mock) gets its own
//! monomorphized copy of the dispatch loop, so reads, writes, and the trace
//! recording behind them inline into the op handlers.
//!
//! Execution is bit-identical to the interpreter — same [`ExecStats`], same
//! bus trace, same error kind at the same point — by the charge discipline
//! documented in [`crate::bytecode`]: charged ops settle the step debt and
//! check the budget *before* any side effect, and every loop passes a
//! checked back edge, so an over-budget program raises exactly the
//! interpreter's `ExecutionLimit`.

use crate::bytecode::{alu, CompiledProgram, FusedBody, Op, Operand};
use crate::error::VplError;
use crate::interp::{ExecLimits, ExecStats};
use crate::resolve::Slot;
use dstress_platform::session::MemoryBus;

/// Marker trait for buses the VM can drive monomorphically.
///
/// Blanket-implemented for every [`MemoryBus`], including the platform's
/// recording `Session`; the point is that [`Vm::run`] takes `&mut B`
/// (static dispatch) rather than `&mut dyn MemoryBus`.
pub trait BusOps: MemoryBus {}

impl<B: MemoryBus + ?Sized> BusOps for B {}

/// The bytecode executor. Stateless between runs: compile a program once
/// with [`crate::compile`] and run it against a fresh bus per averaging
/// run.
///
/// # Examples
///
/// See the crate-level docs; usage mirrors [`crate::Interpreter`] with
/// [`crate::compile`] hoisted out of the per-run loop.
#[derive(Debug, Clone, Copy)]
pub struct Vm {
    limits: ExecLimits,
    bulk_fill: bool,
}

impl Vm {
    /// Creates a VM with the given execution limits.
    pub fn new(limits: ExecLimits) -> Self {
        Vm {
            limits,
            bulk_fill: true,
        }
    }

    /// Disables the fused-loop bulk fast paths (constant fill and
    /// accumulate), forcing word-at-a-time bus accesses with per-iteration
    /// step accounting. Results are identical either way — the fast paths
    /// only engage when they can prove the whole loop completes within
    /// budget with the same stats and bus trace — so this toggle exists for
    /// differential tests and as the per-candidate baseline in benchmarks.
    pub fn without_bulk_fill(mut self) -> Self {
        self.bulk_fill = false;
        self
    }

    /// A VM with only a step budget configured — the supervised evaluation
    /// runtime's watchdog entry point. The budget check is deterministic:
    /// a given compiled virus either always finishes within `max_steps` or
    /// always trips [`VplError::ExecutionLimit`] at the same step count,
    /// regardless of which worker runs it.
    pub fn with_max_steps(max_steps: u64) -> Self {
        Vm::new(ExecLimits::with_max_steps(max_steps))
    }

    /// The configured execution limits.
    pub fn limits(&self) -> ExecLimits {
        self.limits
    }

    /// Executes a compiled program against a memory bus.
    ///
    /// # Errors
    ///
    /// Exactly the interpreter's run-time errors: [`VplError::Runtime`] for
    /// dynamic errors, [`VplError::ExecutionLimit`] on budget exhaustion,
    /// [`VplError::Memory`] when the bus rejects an access. (Resolution
    /// errors were already surfaced by [`crate::compile`].)
    pub fn run<B: BusOps>(
        &self,
        program: &CompiledProgram,
        bus: &mut B,
    ) -> Result<ExecStats, VplError> {
        let mut stats = ExecStats::default();
        let mut slots = vec![Slot::Register(0); program.num_slots as usize];

        // Globals prologue — identical to the interpreter's.
        for (slot, values) in &program.globals {
            let words = values.len() as u64;
            let base = bus.alloc(words * 8)?;
            stats.allocs += 1;
            bus.fill(base, values)?;
            stats.writes += words;
            slots[*slot as usize] = Slot::Memory { base, words };
        }

        let mut regs = vec![0u64; program.num_regs as usize];
        // Scratch for the bulk accumulate fast path (reused across loops).
        let mut span_buf: Vec<u64> = Vec::new();
        let max_steps = self.limits.max_steps;
        let ops = program.ops.as_slice();
        let mut pc = 0usize;

        // Reads an operand. Kept as a macro so the borrow of `regs` is
        // scoped to the use site.
        macro_rules! val {
            ($o:expr) => {
                match $o {
                    Operand::Imm(v) => v,
                    Operand::Reg(r) => regs[r as usize],
                }
            };
        }
        // Settles a charge and checks the budget (used by every op that is
        // about to touch the bus or fail).
        macro_rules! check {
            () => {
                if stats.steps > max_steps {
                    return Err(VplError::ExecutionLimit { steps: max_steps });
                }
            };
        }

        loop {
            let op = ops[pc];
            pc += 1;
            match op {
                Op::Const { dst, value } => regs[dst as usize] = value,
                Op::Alu { op, dst, lhs, rhs } => {
                    let l = val!(lhs);
                    let r = val!(rhs);
                    regs[dst as usize] = alu(op, l, r);
                }
                Op::DivRem {
                    rem,
                    dst,
                    lhs,
                    rhs,
                    charge,
                } => {
                    stats.steps += charge as u64;
                    check!();
                    let r = val!(rhs);
                    if r == 0 {
                        return Err(VplError::Runtime(
                            if rem {
                                "remainder by zero"
                            } else {
                                "division by zero"
                            }
                            .into(),
                        ));
                    }
                    let l = val!(lhs);
                    regs[dst as usize] = if rem { l % r } else { l / r };
                }
                Op::LoadSlot { dst, slot, charge } => {
                    stats.steps += charge as u64;
                    regs[dst as usize] = match slots[slot as usize] {
                        Slot::Register(v) => v,
                        Slot::Memory { base, words } => {
                            if words == 1 {
                                check!();
                                stats.reads += 1;
                                bus.read_u64(base)?
                            } else {
                                // Bare array reference decays to its base.
                                base
                            }
                        }
                    };
                }
                Op::StoreSlot { slot, src, charge } => {
                    stats.steps += charge as u64;
                    match slots[slot as usize] {
                        Slot::Register(_) => slots[slot as usize] = Slot::Register(val!(src)),
                        Slot::Memory { base, .. } => {
                            check!();
                            stats.writes += 1;
                            bus.write_u64(base, val!(src))?;
                        }
                    }
                }
                Op::FoldSlot {
                    op,
                    slot,
                    src,
                    charge,
                } => {
                    stats.steps += charge as u64;
                    match slots[slot as usize] {
                        Slot::Register(v) => {
                            slots[slot as usize] = Slot::Register(alu(op, v, val!(src)))
                        }
                        Slot::Memory { base, .. } => {
                            check!();
                            stats.reads += 1;
                            let old = bus.read_u64(base)?;
                            let new = alu(op, old, val!(src));
                            stats.writes += 1;
                            bus.write_u64(base, new)?;
                        }
                    }
                }
                Op::LoadIndex {
                    dst,
                    base,
                    index,
                    charge,
                } => {
                    stats.steps += charge as u64;
                    check!();
                    let addr = element_addr(&slots, &program.names, base, val!(index))?;
                    stats.reads += 1;
                    regs[dst as usize] = bus.read_u64(addr)?;
                }
                Op::StoreIndex {
                    base,
                    index,
                    src,
                    charge,
                } => {
                    stats.steps += charge as u64;
                    check!();
                    let addr = element_addr(&slots, &program.names, base, val!(index))?;
                    stats.writes += 1;
                    bus.write_u64(addr, val!(src))?;
                }
                Op::Malloc { dst, bytes, charge } => {
                    stats.steps += charge as u64;
                    check!();
                    let bytes = val!(bytes);
                    if bytes == 0 {
                        return Err(VplError::Runtime("malloc(0) is not allowed".into()));
                    }
                    stats.allocs += 1;
                    regs[dst as usize] = bus.alloc(bytes)?;
                }
                Op::DeclSlot { slot, init } => {
                    slots[slot as usize] = Slot::Register(val!(init));
                }
                Op::Bump { n } => {
                    stats.steps += n as u64;
                    check!();
                }
                Op::Jump { target, charge } => {
                    stats.steps += charge as u64;
                    check!();
                    pc = target as usize;
                }
                Op::JumpIfZero {
                    cond,
                    target,
                    charge,
                } => {
                    stats.steps += charge as u64;
                    check!();
                    if val!(cond) == 0 {
                        pc = target as usize;
                    }
                }
                Op::JumpIfNonZero {
                    cond,
                    target,
                    charge,
                } => {
                    stats.steps += charge as u64;
                    check!();
                    if val!(cond) != 0 {
                        pc = target as usize;
                    }
                }
                Op::Nop => {}
                Op::FusedLoop(f) => {
                    // Guards: the counter (and accumulator) must be plain
                    // registers, or the charge schedule below would differ
                    // from the unfused ops. On failure, fall through to the
                    // unfused loop that still follows this op.
                    let Slot::Register(mut v) = slots[f.var as usize] else {
                        continue;
                    };
                    // Bulk fast paths for both fused shapes: when the
                    // remaining iterations provably fit the step budget
                    // and every address the loop would touch is in range,
                    // the per-word stores collapse into one
                    // `MemoryBus::fill_const` call and the per-word loads
                    // into one `MemoryBus::read_span` call (folded here in
                    // iteration order). The bus records the same per-word
                    // trace, the stats advance by the same totals, and any
                    // bus failure surfaces at the same first failing word —
                    // otherwise these paths decline and the per-iteration
                    // loop below runs instead.
                    if self.bulk_fill && v < f.bound {
                        let base = match f.body {
                            FusedBody::StoreImm { base, .. } => base,
                            FusedBody::Accumulate { base, .. } => base,
                        };
                        let n = f.bound - v;
                        let per_iter = f.c_cond as u128 + f.c_access as u128 + f.c_back as u128;
                        let total = n as u128 * per_iter + f.c_cond as u128;
                        let fits_budget = stats.steps as u128 + total <= max_steps as u128;
                        // Start address of the span, or `None` when the
                        // loop itself would fault or wrap (bounds error
                        // on a named array, pointer wraparound) — those
                        // must take the per-iteration path so the error
                        // or wrapped accesses happen exactly as unfused.
                        let start = match slots[base as usize] {
                            Slot::Memory { base: addr, words } if f.bound <= words => {
                                Some(addr + v * 8)
                            }
                            Slot::Memory { .. } => None,
                            Slot::Register(pointer) => (f.bound - 1)
                                .checked_mul(8)
                                .and_then(|off| pointer.checked_add(off))
                                .map(|_| pointer + v * 8),
                        };
                        // An accumulator still holding an array handle
                        // declines fusion entirely below; decline the bulk
                        // path the same way.
                        let acc_start = match f.body {
                            FusedBody::StoreImm { .. } => Some(0),
                            FusedBody::Accumulate { acc, .. } => match slots[acc as usize] {
                                Slot::Register(a) => Some(a),
                                Slot::Memory { .. } => None,
                            },
                        };
                        if fits_budget {
                            if let (Some(start), Some(acc_start)) = (start, acc_start) {
                                match f.body {
                                    FusedBody::StoreImm { value, .. } => {
                                        bus.fill_const(start, value, n)?;
                                        stats.writes += n;
                                    }
                                    FusedBody::Accumulate { op, acc, .. } => {
                                        bus.read_span(start, n, &mut span_buf)?;
                                        let mut folded = acc_start;
                                        for &word in span_buf.iter() {
                                            folded = alu(op, folded, word);
                                        }
                                        stats.reads += n;
                                        slots[acc as usize] = Slot::Register(folded);
                                    }
                                }
                                stats.steps += total as u64;
                                slots[f.var as usize] = Slot::Register(f.bound);
                                pc = f.exit as usize;
                                continue;
                            }
                        }
                    }
                    let mut acc_val = match f.body {
                        FusedBody::Accumulate { acc, .. } => match slots[acc as usize] {
                            Slot::Register(a) => a,
                            Slot::Memory { .. } => continue,
                        },
                        FusedBody::StoreImm { .. } => 0,
                    };
                    loop {
                        // Check point 1: the condition jump (the final
                        // failing iteration pays it too).
                        stats.steps += f.c_cond as u64;
                        check!();
                        if v >= f.bound {
                            break;
                        }
                        // Check point 2: the bus access.
                        stats.steps += f.c_access as u64;
                        check!();
                        match f.body {
                            FusedBody::StoreImm { base, value } => {
                                let addr = element_addr(&slots, &program.names, base, v)?;
                                stats.writes += 1;
                                bus.write_u64(addr, value)?;
                            }
                            FusedBody::Accumulate { op, base, .. } => {
                                let addr = element_addr(&slots, &program.names, base, v)?;
                                stats.reads += 1;
                                acc_val = alu(op, acc_val, bus.read_u64(addr)?);
                            }
                        }
                        // Check point 3: the back edge (step statement).
                        stats.steps += f.c_back as u64;
                        check!();
                        v = v.wrapping_add(1);
                    }
                    slots[f.var as usize] = Slot::Register(v);
                    if let FusedBody::Accumulate { acc, .. } = f.body {
                        slots[acc as usize] = Slot::Register(acc_val);
                    }
                    pc = f.exit as usize;
                }
                Op::Halt { charge } => {
                    stats.steps += charge as u64;
                    check!();
                    return Ok(stats);
                }
            }
        }
    }
}

/// Resolves `base[index]` to a DRAM virtual address — the interpreter's
/// `element_addr`, byte for byte (bounds-checked named arrays, unchecked
/// `malloc` pointers, identical error message).
#[inline]
fn element_addr(slots: &[Slot], names: &[String], base: u32, idx: u64) -> Result<u64, VplError> {
    match slots[base as usize] {
        Slot::Memory { base: addr, words } => {
            if idx >= words {
                return Err(VplError::Runtime(format!(
                    "index {idx} out of bounds for `{}` ({words} words)",
                    names[base as usize]
                )));
            }
            Ok(addr + idx * 8)
        }
        Slot::Register(pointer) => Ok(pointer.wrapping_add(idx.wrapping_mul(8))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use crate::interp::Interpreter;
    use crate::parser::parse_program;
    use dstress_platform::session::{SessionError, VirtAddr};
    use std::collections::HashMap;

    /// Same flat in-memory bus as the interpreter unit tests.
    #[derive(Debug, Default, PartialEq)]
    struct MockBus {
        memory: HashMap<u64, u64>,
        cursor: u64,
        reads: u64,
        writes: u64,
    }

    impl MemoryBus for MockBus {
        fn alloc(&mut self, bytes: u64) -> Result<VirtAddr, SessionError> {
            if bytes == 0 {
                return Err(SessionError::ZeroAllocation);
            }
            let base = self.cursor + 0x1000;
            self.cursor = base + bytes.div_ceil(8) * 8;
            Ok(base)
        }

        fn read_u64(&mut self, addr: VirtAddr) -> Result<u64, SessionError> {
            if !addr.is_multiple_of(8) {
                return Err(SessionError::Unaligned(addr));
            }
            self.reads += 1;
            Ok(self.memory.get(&addr).copied().unwrap_or(0))
        }

        fn write_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), SessionError> {
            if !addr.is_multiple_of(8) {
                return Err(SessionError::Unaligned(addr));
            }
            self.writes += 1;
            self.memory.insert(addr, value);
            Ok(())
        }
    }

    /// Runs both tiers on the same program and asserts the full observable
    /// state matches: the `Result` (stats or error), the bus memory image,
    /// and the bus-side access counters.
    fn assert_parity(global: &str, local: &str, body: &str, limits: ExecLimits) {
        let program = parse_program(global, local, body).expect("parses");
        let mut ibus = MockBus::default();
        let iresult = Interpreter::new(limits).run(&program, &mut ibus);
        let mut vbus = MockBus::default();
        let vresult = compile(&program).and_then(|c| Vm::new(limits).run(&c, &mut vbus));
        assert_eq!(iresult, vresult, "result mismatch for body: {body}");
        assert_eq!(ibus, vbus, "bus state mismatch for body: {body}");
    }

    fn parity(global: &str, local: &str, body: &str) {
        assert_parity(global, local, body, ExecLimits::default());
    }

    #[test]
    fn fill_loop_parity() {
        parity(
            "volatile unsigned long long v[] = { 0, 0, 0, 0 };",
            "int i = 0;",
            "for (i = 0; i < 4; i += 1) { v[i] = 0x3333; }",
        );
    }

    #[test]
    fn accumulate_parity() {
        parity(
            "volatile unsigned long long v[] = { 1, 2, 3, 4, 5 };",
            "int i = 0; unsigned long long acc = 0;",
            "for (i = 0; i < 5; i += 1) { acc += v[i]; } v[0] = acc;",
        );
    }

    #[test]
    fn malloc_pointer_parity() {
        parity(
            "",
            "int i = 0;",
            "unsigned long long p = malloc(64);\
             for (i = 0; i < 8; i += 1) { p[i] = i * 2; }\
             unsigned long long x = p[3]; p[0] = x;",
        );
    }

    #[test]
    fn arithmetic_and_branch_parity() {
        parity(
            "volatile unsigned long long out[] = { 0, 0 };",
            "unsigned long long a = 0; int i = 0;",
            "a = (2 + 3) * 4; \
             if (a > 10) { out[0] = a; } else { out[1] = a; } \
             for (i = 0; i < 3; i += 1) { if (i == 1) { out[1] += i; } } \
             a = 0 - 1; out[0] = a >> 1;",
        );
    }

    #[test]
    fn short_circuit_parity() {
        parity(
            "volatile unsigned long long g = 2;",
            "int a = 0; int b = 5;",
            "a = b && g; a = 0 && 1 / 0; a = 1 || 1 / 0; a = g || b; a = !a && -b;",
        );
    }

    #[test]
    fn compound_index_parity() {
        parity(
            "volatile unsigned long long v[] = { 10, 20, 30 };",
            "int i = 1;",
            "v[i] += 5; v[i + 1] *= 2; v[0] -= 1; v[i]++; v[0]--; i++;",
        );
    }

    #[test]
    fn scalar_global_and_decay_parity() {
        parity(
            "volatile unsigned long long g = 7; volatile unsigned long long v[] = { 1, 2 };",
            "unsigned long long p = 0; unsigned long long x = 0;",
            "x = g + g; g = x; p = v; p[1] = 9; g /= 2;",
        );
    }

    #[test]
    fn shadowing_global_with_local_decl_parity() {
        parity(
            "volatile unsigned long long g = 7;",
            "",
            "g = 1; unsigned long long g = 3; g = g + 1;",
        );
    }

    #[test]
    fn division_by_zero_parity() {
        parity("", "int a = 1; int z = 0;", "a = a / z;");
        parity("", "int a = 1; int z = 0;", "a = a % z;");
        parity("", "int a = 9; int z = 0;", "a /= z;");
        parity(
            "volatile unsigned long long v[] = { 8 };",
            "int z = 0;",
            "v[0] /= z;",
        );
    }

    #[test]
    fn out_of_bounds_parity() {
        parity(
            "volatile unsigned long long v[] = { 1 };",
            "int i = 5;",
            "v[i] = 0;",
        );
        parity(
            "volatile unsigned long long v[] = { 1, 2 };",
            "int i = 0; int x = 0;",
            "for (i = 0; i < 9; i += 1) { x += v[i]; }",
        );
    }

    #[test]
    fn malloc_zero_parity() {
        parity("", "int a = 0; int z = 0;", "a = malloc(z);");
    }

    #[test]
    fn resolution_errors_surface_identically() {
        for (global, local, body) in [
            ("", "int i = 0;", "i = $$$_P_$$$;"),
            ("", "", "ghost = 1;"),
            ("", "int a = 0;", "a = calloc(8);"),
            ("volatile unsigned long long v[] = { malloc(8) };", "", ""),
        ] {
            let program = parse_program(global, local, body).unwrap();
            let ierr = Interpreter::new(ExecLimits::default())
                .run(&program, &mut MockBus::default())
                .unwrap_err();
            let verr = compile(&program).unwrap_err();
            assert_eq!(ierr, verr);
        }
    }

    /// The decisive check on the charge discipline: sweep the step budget
    /// across every possible crossing point of a program that mixes loops,
    /// branches, DRAM traffic, and a trailing runtime error. At every
    /// budget the two tiers must agree on the exact `Result` *and* on the
    /// bus state (no stray access past the limit).
    #[test]
    fn fused_fill_and_reduce_budget_sweep_parity() {
        // Both fused shapes back to back, swept over every budget so the
        // superinstruction's three check points land on every possible
        // crossing — including mid-fused-loop exhaustion.
        let global = "volatile unsigned long long v[] = { 1, 2, 3, 4, 5, 6 };";
        let local = "int i = 0; unsigned long long acc = 0;";
        let body = "for (i = 0; i < 6; i += 1) { v[i] = 7; } \
                    for (i = 0; i < 6; i += 1) { acc += v[i]; } \
                    v[0] = acc;";
        for max_steps in 0..160 {
            assert_parity(global, local, body, ExecLimits { max_steps });
        }
    }

    /// Pins the bulk-fill fast path against the strict word-at-a-time VM
    /// (and, transitively through the parity suite, the interpreter): same
    /// `Result`, same stats, same bus image, at every budget crossing —
    /// including budgets where the bulk path must decline and the
    /// per-iteration loop trips `ExecutionLimit` mid-fill.
    #[test]
    fn bulk_fill_matches_strict_accounting() {
        let program = parse_program(
            "",
            "int i = 0;",
            "unsigned long long p = malloc(512);\
             for (i = 0; i < 64; i += 1) { p[i] = 0xCCCC; }\
             unsigned long long x = p[63]; p[0] = x;",
        )
        .expect("parses");
        let compiled = compile(&program).expect("compiles");
        for max_steps in (0..400).chain([u64::MAX]) {
            let limits = ExecLimits { max_steps };
            let mut fast_bus = MockBus::default();
            let fast = Vm::new(limits).run(&compiled, &mut fast_bus);
            let mut strict_bus = MockBus::default();
            let strict = Vm::new(limits)
                .without_bulk_fill()
                .run(&compiled, &mut strict_bus);
            assert_eq!(fast, strict, "result mismatch at budget {max_steps}");
            assert_eq!(fast_bus, strict_bus, "bus mismatch at budget {max_steps}");
        }
    }

    /// Same sweep for the bulk accumulate path: a read-pressure loop over
    /// filled memory must fold to the identical accumulator value, stats,
    /// and bus trace at every budget crossing, including budgets where the
    /// bulk path declines mid-program.
    #[test]
    fn bulk_accumulate_matches_strict_accounting() {
        let program = parse_program(
            "",
            "int i = 0; unsigned long long acc = 7;",
            "unsigned long long p = malloc(512);\
             for (i = 0; i < 64; i += 1) { p[i] = 0xCCCC; }\
             for (i = 0; i < 64; i += 1) { acc += p[i]; }\
             p[0] = acc;",
        )
        .expect("parses");
        let compiled = compile(&program).expect("compiles");
        for max_steps in (0..700).chain([u64::MAX]) {
            let limits = ExecLimits { max_steps };
            let mut fast_bus = MockBus::default();
            let fast = Vm::new(limits).run(&compiled, &mut fast_bus);
            let mut strict_bus = MockBus::default();
            let strict = Vm::new(limits)
                .without_bulk_fill()
                .run(&compiled, &mut strict_bus);
            assert_eq!(fast, strict, "result mismatch at budget {max_steps}");
            assert_eq!(fast_bus, strict_bus, "bus mismatch at budget {max_steps}");
        }
    }

    #[test]
    fn fused_loop_out_of_bounds_parity() {
        // The loop bound overruns the array: the fused handler must raise
        // the interpreter's exact out-of-bounds error mid-loop.
        parity(
            "volatile unsigned long long v[] = { 1, 2, 3 };",
            "int i = 0; unsigned long long acc = 0;",
            "for (i = 0; i < 5; i += 1) { v[i] = 9; }",
        );
        parity(
            "volatile unsigned long long v[] = { 1, 2, 3 };",
            "int i = 0; unsigned long long acc = 0;",
            "for (i = 0; i < 9; i += 1) { acc += v[i]; } v[0] = acc;",
        );
    }

    #[test]
    fn fused_loop_over_malloc_pointer_parity() {
        // Register-kind base (malloc pointer): unchecked addressing, still
        // bit-identical through the fused path.
        parity(
            "",
            "int i = 0; unsigned long long acc = 0;",
            "unsigned long long p = malloc(64); \
             for (i = 0; i < 8; i += 1) { p[i] = 3; } \
             for (i = 0; i < 8; i += 1) { acc += p[i]; } p[0] = acc;",
        );
    }

    #[test]
    fn fused_loop_guard_falls_back_on_memory_counter() {
        // A DRAM-scalar loop counter fails the fused guard (its condition
        // loads are bus reads); the handler must fall through to the
        // unfused ops and stay bit-identical.
        parity(
            "volatile unsigned long long g = 0; volatile unsigned long long v[] = { 1, 2, 3, 4 };",
            "",
            "for (g = 0; g < 4; g += 1) { v[g] = 5; }",
        );
    }

    #[test]
    fn budget_sweep_parity() {
        let program = parse_program(
            "volatile unsigned long long v[] = { 1, 2, 3, 4 };",
            "int i = 0; unsigned long long acc = 0; int z = 0;",
            "for (i = 0; i < 4; i += 1) { acc += v[i]; if (acc > 3) { v[0] = acc; } } acc = acc / z;",
        )
        .expect("parses");
        let compiled = compile(&program).expect("compiles");
        let full_steps = {
            let mut bus = MockBus::default();
            // Runs to the trailing division-by-zero error at default limits.
            let err = Interpreter::new(ExecLimits::default())
                .run(&program, &mut bus)
                .unwrap_err();
            assert!(matches!(err, VplError::Runtime(_)));
            200u64
        };
        for max_steps in 0..full_steps {
            let limits = ExecLimits { max_steps };
            let mut ibus = MockBus::default();
            let iresult = Interpreter::new(limits).run(&program, &mut ibus);
            let mut vbus = MockBus::default();
            let vresult = Vm::new(limits).run(&compiled, &mut vbus);
            assert_eq!(iresult, vresult, "result diverged at budget {max_steps}");
            assert_eq!(ibus, vbus, "bus state diverged at budget {max_steps}");
        }
    }

    #[test]
    fn infinite_loop_budget_parity() {
        assert_parity(
            "",
            "int i = 0;",
            "for (;;) { i += 1; }",
            ExecLimits { max_steps: 10_000 },
        );
    }

    #[test]
    fn stats_match_on_success() {
        let program = parse_program(
            "volatile unsigned long long v[] = { 0, 0, 0, 0, 0, 0, 0, 0 };",
            "int i = 0;",
            "for (i = 0; i < 8; i += 1) { v[i] = i; }",
        )
        .unwrap();
        let istats = Interpreter::new(ExecLimits::default())
            .run(&program, &mut MockBus::default())
            .unwrap();
        let compiled = compile(&program).unwrap();
        let vstats = Vm::new(ExecLimits::default())
            .run(&compiled, &mut MockBus::default())
            .unwrap();
        assert_eq!(istats, vstats);
        assert_eq!(vstats.writes, 8 + 8);
        assert_eq!(vstats.reads, 0);
    }

    #[test]
    fn watchdog_budget_trips_deterministically() {
        let program = parse_program(
            "volatile unsigned long long v[] = { 0 };",
            "int i = 0;",
            "for (;;) { v[0] = i; i += 1; }",
        )
        .unwrap();
        let compiled = compile(&program).unwrap();
        let vm = Vm::with_max_steps(5_000);
        assert_eq!(vm.limits(), ExecLimits::with_max_steps(5_000));
        // The watchdog fires identically on every run — same error, same
        // step count — which is what lets supervised evaluation classify
        // budget blowouts without retrying them.
        let a = vm.run(&compiled, &mut MockBus::default()).unwrap_err();
        let b = vm.run(&compiled, &mut MockBus::default()).unwrap_err();
        assert!(a.is_execution_limit());
        assert_eq!(a, b);
        assert_eq!(a, VplError::ExecutionLimit { steps: 5_000 });
    }

    #[test]
    fn compiled_program_is_reusable_across_runs() {
        let program = parse_program(
            "volatile unsigned long long v[] = { 0, 0 };",
            "int i = 0;",
            "for (i = 0; i < 2; i += 1) { v[i] = 7; }",
        )
        .unwrap();
        let compiled = compile(&program).unwrap();
        let vm = Vm::new(ExecLimits::default());
        let a = vm.run(&compiled, &mut MockBus::default()).unwrap();
        let b = vm.run(&compiled, &mut MockBus::default()).unwrap();
        assert_eq!(a, b);
    }
}
