//! Lexical analysis (the first step of the paper's processing phase).

use crate::error::VplError;
use crate::token::{Keyword, Punct, Spanned, Token};

/// Tokenizes template source code.
///
/// Handles identifiers, decimal and `0x` hexadecimal 64-bit literals,
/// `$$$_NAME_$$$` placeholders, all operators of the language, and both
/// comment styles (`/* … */`, `// …`).
///
/// # Errors
///
/// Returns [`VplError::Lex`] on malformed input.
///
/// # Examples
///
/// ```
/// use dstress_vpl::lexer::lex;
///
/// let tokens = lex("x = $$$_P_$$$ + 0x10;")?;
/// assert_eq!(tokens.len(), 6);
/// # Ok::<(), dstress_vpl::VplError>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Spanned>, VplError> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn run(mut self) -> Result<Vec<Spanned>, VplError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else { break };
            let token = match c {
                'a'..='z' | 'A'..='Z' | '_' => self.ident(),
                '0'..='9' => self.number()?,
                '$' => self.placeholder()?,
                _ => self.punct()?,
            };
            out.push(Spanned { token, line, col });
        }
        Ok(out)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> VplError {
        VplError::Lex {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), VplError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek_at(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self) -> Token {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::of_spelling(&s) {
            Some(k) => Token::Keyword(k),
            None => Token::Ident(s),
        }
    }

    fn number(&mut self) -> Result<Token, VplError> {
        let mut s = String::new();
        let hex = self.peek() == Some('0') && matches!(self.peek_at(1), Some('x' | 'X'));
        if hex {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() || c == '_' {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let cleaned: String = s.chars().filter(|&c| c != '_').collect();
            u64::from_str_radix(&cleaned, 16)
                .map(Token::Number)
                .map_err(|e| self.error(format!("bad hex literal `0x{s}`: {e}")))
        } else {
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == '_' {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            // Tolerate C suffixes (ULL etc.) since templates are C-flavoured.
            while matches!(self.peek(), Some('u' | 'U' | 'l' | 'L')) {
                self.bump();
            }
            let cleaned: String = s.chars().filter(|&c| c != '_').collect();
            cleaned
                .parse::<u64>()
                .map(Token::Number)
                .map_err(|e| self.error(format!("bad integer literal `{s}`: {e}")))
        }
    }

    fn placeholder(&mut self) -> Result<Token, VplError> {
        // Expect the exact frame `$$$_NAME_$$$`.
        for _ in 0..3 {
            if self.bump() != Some('$') {
                return Err(self.error("placeholders start with `$$$_`"));
            }
        }
        if self.bump() != Some('_') {
            return Err(self.error("placeholders start with `$$$_`"));
        }
        let mut name = String::new();
        loop {
            match self.peek() {
                Some('_') if self.peek_at(1) == Some('$') => break,
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                    // A trailing `_$$$` closes the placeholder; an interior
                    // underscore is part of the name.
                    name.push(c);
                    self.bump();
                }
                _ => return Err(self.error("unterminated placeholder")),
            }
        }
        self.bump(); // the closing `_`
        for _ in 0..3 {
            if self.bump() != Some('$') {
                return Err(self.error("placeholders end with `_$$$`"));
            }
        }
        if name.is_empty() {
            return Err(self.error("placeholder name is empty"));
        }
        Ok(Token::Placeholder(name))
    }

    fn punct(&mut self) -> Result<Token, VplError> {
        let c = self.bump().expect("punct called with input remaining");
        let two = |lexer: &mut Lexer, next: char, yes: Punct, no: Punct| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        let p = match c {
            '(' => Punct::LParen,
            ')' => Punct::RParen,
            '{' => Punct::LBrace,
            '}' => Punct::RBrace,
            '[' => Punct::LBracket,
            ']' => Punct::RBracket,
            ';' => Punct::Semicolon,
            ',' => Punct::Comma,
            '%' => Punct::Percent,
            '^' => Punct::Caret,
            '!' => two(self, '=', Punct::Ne, Punct::Bang),
            '=' => two(self, '=', Punct::Eq, Punct::Assign),
            '*' => two(self, '=', Punct::StarAssign, Punct::Star),
            '/' => two(self, '=', Punct::SlashAssign, Punct::Slash),
            '&' => two(self, '&', Punct::AmpAmp, Punct::Amp),
            '|' => two(self, '|', Punct::PipePipe, Punct::Pipe),
            '+' => match self.peek() {
                Some('+') => {
                    self.bump();
                    Punct::PlusPlus
                }
                Some('=') => {
                    self.bump();
                    Punct::PlusAssign
                }
                _ => Punct::Plus,
            },
            '-' => match self.peek() {
                Some('-') => {
                    self.bump();
                    Punct::MinusMinus
                }
                Some('=') => {
                    self.bump();
                    Punct::MinusAssign
                }
                _ => Punct::Minus,
            },
            '<' => match self.peek() {
                Some('<') => {
                    self.bump();
                    Punct::Shl
                }
                Some('=') => {
                    self.bump();
                    Punct::Le
                }
                _ => Punct::Lt,
            },
            '>' => match self.peek() {
                Some('>') => {
                    self.bump();
                    Punct::Shr
                }
                Some('=') => {
                    self.bump();
                    Punct::Ge
                }
                _ => Punct::Gt,
            },
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        };
        Ok(Token::Punct(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(src: &str) -> Vec<Token> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn lexes_identifiers_keywords_numbers() {
        let t = tokens("for x1 42 0xFF unsigned");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::For),
                Token::Ident("x1".into()),
                Token::Number(42),
                Token::Number(255),
                Token::Keyword(Keyword::Unsigned),
            ]
        );
    }

    #[test]
    fn lexes_placeholders() {
        assert_eq!(
            tokens("$$$_ARRAY1_VEC_$$$"),
            vec![Token::Placeholder("ARRAY1_VEC".into())]
        );
        assert_eq!(tokens("$$$_P_$$$"), vec![Token::Placeholder("P".into())]);
    }

    #[test]
    fn placeholder_errors() {
        assert!(lex("$$_P_$$$").is_err());
        assert!(lex("$$$_P").is_err());
        assert!(lex("$$$__$$$").is_err());
    }

    #[test]
    fn lexes_compound_operators() {
        let t = tokens("a += 1; b << 2; c <= d; e++ && f--");
        assert!(t.contains(&Token::Punct(Punct::PlusAssign)));
        assert!(t.contains(&Token::Punct(Punct::Shl)));
        assert!(t.contains(&Token::Punct(Punct::Le)));
        assert!(t.contains(&Token::Punct(Punct::PlusPlus)));
        assert!(t.contains(&Token::Punct(Punct::AmpAmp)));
        assert!(t.contains(&Token::Punct(Punct::MinusMinus)));
    }

    #[test]
    fn comments_are_skipped() {
        let t = tokens("a /* comment ; */ b // trailing\n c");
        assert_eq!(
            t,
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into())
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(matches!(lex("a /* oops"), Err(VplError::Lex { .. })));
    }

    #[test]
    fn c_suffixes_are_tolerated() {
        assert_eq!(tokens("7ULL"), vec![Token::Number(7)]);
    }

    #[test]
    fn max_u64_literal() {
        assert_eq!(
            tokens("18446744073709551615"),
            vec![Token::Number(u64::MAX)]
        );
        assert!(
            lex("18446744073709551616").is_err(),
            "overflow must be a lex error"
        );
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn unexpected_character_is_reported() {
        let err = lex("a ? b").unwrap_err();
        assert!(matches!(err, VplError::Lex { .. }));
        assert!(err.to_string().contains('?'));
    }
}
