//! Abstract syntax of virus programs.

use serde::{Deserialize, Serialize};

/// Declared storage class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Storage {
    /// Declared in `->global_data`: lives in DRAM; every access is a real
    /// memory operation.
    Global,
    /// Declared in `->local_data` or the body: register-resident.
    Local,
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decl {
    /// Variable name.
    pub name: String,
    /// Whether it was declared as an array (`name[]`).
    pub is_array: bool,
    /// Whether the declared type was a pointer (`unsigned long long*`).
    pub is_pointer: bool,
    /// Initializer, if any.
    pub init: Option<Init>,
}

/// A declaration initializer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Init {
    /// A single expression.
    Expr(Expr),
    /// A brace-enclosed list (array literal).
    List(Vec<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Num(u64),
    /// Variable reference.
    Var(String),
    /// `$$$_NAME_$$$` placeholder used as a scalar value.
    Placeholder(String),
    /// Array/pointer element read: `base[index]`.
    Index {
        /// The array or pointer variable.
        base: String,
        /// The element index.
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Builtin call: only `malloc(bytes)` exists.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation (wrapping).
    Neg,
    /// Logical not (`!x` → 0 or 1).
    Not,
}

/// Binary operators. Arithmetic wraps; comparisons yield 0 or 1; `&&`/`||`
/// short-circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

/// An assignable place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array/pointer element.
    Index {
        /// The array or pointer variable.
        base: String,
        /// The element index.
        index: Expr,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// An in-body local declaration.
    Decl(Decl),
    /// An expression evaluated for its side effects.
    Expr(Expr),
    /// An assignment.
    Assign {
        /// Target place.
        target: LValue,
        /// Operator.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
    },
    /// Postfix increment/decrement (`x++`, `x--`).
    IncDec {
        /// Target place.
        target: LValue,
        /// `+1` for `++`, `-1` for `--`.
        increment: bool,
    },
    /// `for (init; cond; step) { body }`
    For {
        /// Initialization statement (may be empty `Stmt::Block(vec![])`).
        init: Box<Stmt>,
        /// Loop condition (non-zero = continue).
        cond: Expr,
        /// Per-iteration step statement.
        step: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (cond) { then } else { else }`
    If {
        /// Condition (non-zero = take `then`).
        cond: Expr,
        /// Taken branch.
        then: Vec<Stmt>,
        /// Else branch (possibly empty).
        els: Vec<Stmt>,
    },
    /// A braced block.
    Block(Vec<Stmt>),
}

/// A complete virus program: global declarations (DRAM), local declarations
/// (registers), and the body.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// `->global_data` declarations.
    pub globals: Vec<Decl>,
    /// `->local_data` declarations.
    pub locals: Vec<Decl>,
    /// `->body` statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Visits every expression in the program (declarations and body).
    pub fn visit_exprs<F: FnMut(&Expr)>(&self, mut f: F) {
        fn walk_init<F: FnMut(&Expr)>(init: &Option<Init>, f: &mut F) {
            match init {
                Some(Init::Expr(e)) => walk_expr(e, f),
                Some(Init::List(es)) => es.iter().for_each(|e| walk_expr(e, f)),
                None => {}
            }
        }
        fn walk_expr<F: FnMut(&Expr)>(e: &Expr, f: &mut F) {
            f(e);
            match e {
                Expr::Index { index, .. } => walk_expr(index, f),
                Expr::Unary { operand, .. } => walk_expr(operand, f),
                Expr::Binary { lhs, rhs, .. } => {
                    walk_expr(lhs, f);
                    walk_expr(rhs, f);
                }
                Expr::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, f)),
                Expr::Num(_) | Expr::Var(_) | Expr::Placeholder(_) => {}
            }
        }
        fn walk_stmt<F: FnMut(&Expr)>(s: &Stmt, f: &mut F) {
            match s {
                Stmt::Decl(d) => walk_init(&d.init, f),
                Stmt::Expr(e) => walk_expr(e, f),
                Stmt::Assign { target, value, .. } => {
                    if let LValue::Index { index, .. } = target {
                        walk_expr(index, f);
                    }
                    walk_expr(value, f);
                }
                Stmt::IncDec { target, .. } => {
                    if let LValue::Index { index, .. } = target {
                        walk_expr(index, f);
                    }
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    walk_stmt(init, f);
                    walk_expr(cond, f);
                    walk_stmt(step, f);
                    body.iter().for_each(|s| walk_stmt(s, f));
                }
                Stmt::If { cond, then, els } => {
                    walk_expr(cond, f);
                    then.iter().for_each(|s| walk_stmt(s, f));
                    els.iter().for_each(|s| walk_stmt(s, f));
                }
                Stmt::Block(stmts) => stmts.iter().for_each(|s| walk_stmt(s, f)),
            }
        }
        for d in self.globals.iter().chain(&self.locals) {
            walk_init(&d.init, &mut f);
        }
        for s in &self.body {
            walk_stmt(s, &mut f);
        }
    }

    /// Collects the names of all placeholders referenced anywhere.
    pub fn placeholder_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        self.visit_exprs(|e| {
            if let Expr::Placeholder(p) = e {
                if !names.contains(p) {
                    names.push(p.clone());
                }
            }
        });
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholder_collection_walks_everything() {
        let program = Program {
            globals: vec![Decl {
                name: "g".into(),
                is_array: true,
                is_pointer: false,
                init: Some(Init::Expr(Expr::Placeholder("A".into()))),
            }],
            locals: vec![],
            body: vec![Stmt::For {
                init: Box::new(Stmt::Block(vec![])),
                cond: Expr::Binary {
                    op: BinOp::Lt,
                    lhs: Box::new(Expr::Var("i".into())),
                    rhs: Box::new(Expr::Placeholder("B".into())),
                },
                step: Box::new(Stmt::Block(vec![])),
                body: vec![Stmt::Assign {
                    target: LValue::Index {
                        base: "g".into(),
                        index: Expr::Var("i".into()),
                    },
                    op: AssignOp::Set,
                    value: Expr::Placeholder("C".into()),
                }],
            }],
        };
        assert_eq!(program.placeholder_names(), vec!["A", "B", "C"]);
    }

    #[test]
    fn duplicate_placeholders_collected_once() {
        let program = Program {
            globals: vec![],
            locals: vec![],
            body: vec![
                Stmt::Expr(Expr::Placeholder("P".into())),
                Stmt::Expr(Expr::Placeholder("P".into())),
            ],
        };
        assert_eq!(program.placeholder_names(), vec!["P"]);
    }
}
