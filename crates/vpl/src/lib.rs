//! The DStress virus programming tool (paper §III-A, Fig. 3).
//!
//! Users describe a *family* of viruses as a template: a C-like program with
//! `$$$_NAME_$$$` placeholders whose domains are declared in a
//! `->parameters` section. The GA explores the declared domains; every
//! chromosome instantiates the template into a concrete program which is
//! executed against the experimental platform.
//!
//! A template has four sections, introduced by `->` markers exactly as in
//! the paper's Fig. 3:
//!
//! ```text
//! ->parameters
//! $$$_ARRAY1_VEC_$$$ [N1][DB1,UP1]
//! $$$_VAR1_$$$ [DB3,UP3]
//!
//! ->global_data
//! volatile unsigned long long var1[] = $$$_ARRAY1_VEC_$$$;
//!
//! ->local_data
//! unsigned long long var3 = $$$_VAR1_$$$;
//!
//! ->body
//! /* data pattern */
//! for (i = 0; i < N1; i += 1) { var1[i] = var3; }
//! ```
//!
//! * **parameters** — each placeholder's shape and domain. `[N][LO,UP]`
//!   declares an `N`-element array of 64-bit values in `[LO, UP]`;
//!   `[LO,UP]` declares a scalar. `N`, `LO`, `UP` may be integer literals or
//!   named constants supplied at processing time (the paper's `N1`, `DB1`…).
//! * **global_data** — variables allocated in DRAM through the platform
//!   session; every access to them is a real memory access.
//! * **local_data** — register-resident locals (no DRAM traffic).
//! * **body** — the virus code: `for`, `if`/`else`, assignments, 64-bit
//!   arithmetic, array indexing and `malloc`.
//!
//! The crate implements the paper's *processing phase* (§III-D: "lexical,
//! syntax and semantic analyses to extract variables") in [`lexer`],
//! [`parser`], [`template`] and [`sema`], and the execution side of the
//! *evaluation phase* twice: the tree-walking reference [`interp`], and the
//! production tier — [`bytecode`] + [`vm`] — which compiles an instantiated
//! program once ([`compile`]) and executes the flat ops bit-identically but
//! many times faster. The GA evaluator compiles each chromosome once and
//! reuses the bytecode across its averaging runs.
//!
//! # Examples
//!
//! ```
//! use dstress_vpl::{Template, BoundValue};
//! use std::collections::HashMap;
//!
//! let src = r#"
//! ->parameters
//! $$$_PATTERN_$$$ [0,18446744073709551615]
//! ->local_data
//! unsigned long long i = 0;
//! ->body
//! volatile unsigned long long* buf = malloc(256);
//! for (i = 0; i < 32; i += 1) { buf[i] = $$$_PATTERN_$$$; }
//! "#;
//! let template = Template::parse(src)?;
//! let processed = template.process(&HashMap::new())?;
//! assert_eq!(processed.params().len(), 1);
//!
//! let mut bindings = HashMap::new();
//! bindings.insert("PATTERN".to_string(), BoundValue::Scalar(0x3333_3333_3333_3333));
//! let program = processed.instantiate(&bindings)?;
//! # Ok::<(), dstress_vpl::VplError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod pretty;
mod resolve;
pub mod sema;
pub mod template;
pub mod token;
pub mod vm;

pub use bytecode::{compile, CompiledProgram};
pub use error::VplError;
pub use interp::{ExecLimits, ExecStats, Interpreter};
pub use passes::{compile_opt, compile_staged, disassemble, optimize, OptLevel, PassConfig};
pub use template::{BoundValue, ParamDecl, ParamShape, ProcessedTemplate, Template};
pub use vm::{BusOps, Vm};
