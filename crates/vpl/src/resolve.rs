//! Name resolution: lowering the parsed AST into a slot-indexed form.
//!
//! Both execution tiers start here — the tree-walking [`crate::interp`]
//! oracle walks the resolved `RStmt`/`RExpr` tree directly, and the
//! [`crate::bytecode`] compiler lowers the same tree into a flat op
//! sequence for the [`crate::vm`]. Sharing the pass guarantees the two
//! tiers agree on declaration order, shadowing, and every resolution-time
//! error (undeclared variable, leftover placeholder, unknown function,
//! non-constant global initializer).

use crate::ast::{AssignOp, BinOp, Decl, Expr, Init, LValue, Program, Stmt, UnOp};
use crate::error::VplError;

/// What a slot holds at run time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    /// A register value.
    Register(u64),
    /// A DRAM-resident object: base virtual address and length in words.
    Memory { base: u64, words: u64 },
}

// ---- resolved program form -------------------------------------------

#[derive(Debug, Clone)]
pub(crate) enum RExpr {
    Num(u64),
    Slot(u32),
    Index {
        base: u32,
        index: Box<RExpr>,
    },
    Unary {
        op: UnOp,
        operand: Box<RExpr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<RExpr>,
        rhs: Box<RExpr>,
    },
    Malloc(Box<RExpr>),
}

#[derive(Debug, Clone)]
pub(crate) enum RLValue {
    Slot(u32),
    Index { base: u32, index: RExpr },
}

#[derive(Debug, Clone)]
pub(crate) enum RStmt {
    DeclInit {
        slot: u32,
        init: Option<RExpr>,
    },
    Expr(RExpr),
    Assign {
        target: RLValue,
        op: AssignOp,
        value: RExpr,
    },
    IncDec {
        target: RLValue,
        increment: bool,
    },
    For {
        init: Box<RStmt>,
        cond: RExpr,
        step: Box<RStmt>,
        body: Vec<RStmt>,
    },
    If {
        cond: RExpr,
        then: Vec<RStmt>,
        els: Vec<RStmt>,
    },
    Block(Vec<RStmt>),
}

/// A fully resolved program: every name is a slot index, every global
/// initializer is folded to its constant words.
#[derive(Debug, Clone)]
pub(crate) struct ResolvedProgram {
    /// Slot names, for runtime diagnostics (out-of-bounds messages).
    pub(crate) names: Vec<String>,
    /// Global slots and their initial DRAM contents, in declaration order.
    pub(crate) globals: Vec<(u32, Vec<u64>)>,
    /// `->local_data` declarations, in order.
    pub(crate) locals: Vec<RStmt>,
    /// `->body` statements.
    pub(crate) body: Vec<RStmt>,
}

/// Resolves a fully-instantiated program: declares globals (folding their
/// constant initializers), then locals, then the body, exactly in source
/// order — so the first error a program contains is reported first.
pub(crate) fn resolve(program: &Program) -> Result<ResolvedProgram, VplError> {
    let mut compiler = Compiler::new();
    let mut globals: Vec<(u32, Vec<u64>)> = Vec::with_capacity(program.globals.len());
    for d in &program.globals {
        let values: Vec<u64> = match &d.init {
            Some(Init::List(items)) => items.iter().map(const_eval).collect::<Result<_, _>>()?,
            Some(Init::Expr(e)) => vec![const_eval(e)?],
            None => vec![0],
        };
        let slot = compiler.declare(&d.name);
        globals.push((slot, values));
    }
    let mut locals = Vec::with_capacity(program.locals.len());
    for d in &program.locals {
        locals.push(compiler.compile_local_decl(d)?);
    }
    let body: Vec<RStmt> = program
        .body
        .iter()
        .map(|s| compiler.compile_stmt(s))
        .collect::<Result<_, _>>()?;
    Ok(ResolvedProgram {
        names: compiler.names,
        globals,
        locals,
        body,
    })
}

/// Name-to-slot resolution state.
struct Compiler {
    slots: std::collections::HashMap<String, u32>,
    names: Vec<String>,
}

impl Compiler {
    fn new() -> Self {
        Compiler {
            slots: std::collections::HashMap::new(),
            names: Vec::new(),
        }
    }

    fn declare(&mut self, name: &str) -> u32 {
        if let Some(&idx) = self.slots.get(name) {
            return idx;
        }
        let idx = self.names.len() as u32;
        self.names.push(name.to_string());
        self.slots.insert(name.to_string(), idx);
        idx
    }

    fn resolve(&self, name: &str) -> Result<u32, VplError> {
        self.slots
            .get(name)
            .copied()
            .ok_or_else(|| VplError::Runtime(format!("variable `{name}` used before declaration")))
    }

    fn compile_expr(&self, e: &Expr) -> Result<RExpr, VplError> {
        Ok(match e {
            Expr::Num(n) => RExpr::Num(*n),
            Expr::Var(name) => RExpr::Slot(self.resolve(name)?),
            Expr::Placeholder(p) => {
                return Err(VplError::Runtime(format!(
                    "placeholder `{p}` survived instantiation"
                )))
            }
            Expr::Index { base, index } => RExpr::Index {
                base: self.resolve(base)?,
                index: Box::new(self.compile_expr(index)?),
            },
            Expr::Unary { op, operand } => RExpr::Unary {
                op: *op,
                operand: Box::new(self.compile_expr(operand)?),
            },
            Expr::Binary { op, lhs, rhs } => RExpr::Binary {
                op: *op,
                lhs: Box::new(self.compile_expr(lhs)?),
                rhs: Box::new(self.compile_expr(rhs)?),
            },
            Expr::Call { name, args } => {
                if name != "malloc" {
                    return Err(VplError::Runtime(format!("unknown function `{name}`")));
                }
                if args.len() != 1 {
                    return Err(VplError::Runtime(
                        "malloc takes exactly one argument".into(),
                    ));
                }
                RExpr::Malloc(Box::new(self.compile_expr(&args[0])?))
            }
        })
    }

    fn compile_lvalue(&self, lv: &LValue) -> Result<RLValue, VplError> {
        Ok(match lv {
            LValue::Var(name) => RLValue::Slot(self.resolve(name)?),
            LValue::Index { base, index } => RLValue::Index {
                base: self.resolve(base)?,
                index: self.compile_expr(index)?,
            },
        })
    }

    fn compile_local_decl(&mut self, d: &Decl) -> Result<RStmt, VplError> {
        let init = match &d.init {
            Some(Init::Expr(e)) => Some(self.compile_expr(e)?),
            Some(Init::List(_)) => {
                return Err(VplError::Runtime(format!(
                    "local `{}` cannot take an array initializer; use global_data",
                    d.name
                )))
            }
            None => None,
        };
        // Declared after compiling the initializer: `int i = i;` is an error.
        let slot = self.declare(&d.name);
        Ok(RStmt::DeclInit { slot, init })
    }

    fn compile_stmt(&mut self, s: &Stmt) -> Result<RStmt, VplError> {
        Ok(match s {
            Stmt::Decl(d) => self.compile_local_decl(d)?,
            Stmt::Expr(e) => RStmt::Expr(self.compile_expr(e)?),
            Stmt::Assign { target, op, value } => {
                let value = self.compile_expr(value)?;
                RStmt::Assign {
                    target: self.compile_lvalue(target)?,
                    op: *op,
                    value,
                }
            }
            Stmt::IncDec { target, increment } => RStmt::IncDec {
                target: self.compile_lvalue(target)?,
                increment: *increment,
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => RStmt::For {
                init: Box::new(self.compile_stmt(init)?),
                cond: self.compile_expr(cond)?,
                step: Box::new(self.compile_stmt(step)?),
                body: body
                    .iter()
                    .map(|s| self.compile_stmt(s))
                    .collect::<Result<_, _>>()?,
            },
            Stmt::If { cond, then, els } => RStmt::If {
                cond: self.compile_expr(cond)?,
                then: then
                    .iter()
                    .map(|s| self.compile_stmt(s))
                    .collect::<Result<_, _>>()?,
                els: els
                    .iter()
                    .map(|s| self.compile_stmt(s))
                    .collect::<Result<_, _>>()?,
            },
            Stmt::Block(stmts) => RStmt::Block(
                stmts
                    .iter()
                    .map(|s| self.compile_stmt(s))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }
}

/// Evaluates a global initializer expression, which must be constant
/// (global init runs before any statement executes).
pub(crate) fn const_eval(e: &Expr) -> Result<u64, VplError> {
    match e {
        Expr::Num(n) => Ok(*n),
        Expr::Placeholder(p) => Err(VplError::Runtime(format!(
            "placeholder `{p}` survived instantiation"
        ))),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
        } => Ok(const_eval(operand)?.wrapping_neg()),
        Expr::Unary {
            op: UnOp::Not,
            operand,
        } => Ok((const_eval(operand)? == 0) as u64),
        Expr::Binary { op, lhs, rhs } => {
            let l = const_eval(lhs)?;
            let r = const_eval(rhs)?;
            Ok(match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.wrapping_sub(r),
                BinOp::Mul => l.wrapping_mul(r),
                BinOp::Div if r != 0 => l / r,
                BinOp::Rem if r != 0 => l % r,
                BinOp::Shl => l.wrapping_shl(r as u32),
                BinOp::Shr => l.wrapping_shr(r as u32),
                BinOp::BitAnd => l & r,
                BinOp::BitOr => l | r,
                BinOp::BitXor => l ^ r,
                _ => {
                    return Err(VplError::Runtime(
                        "global initializers must be constant expressions".into(),
                    ))
                }
            })
        }
        _ => Err(VplError::Runtime(
            "global initializers must be constant expressions".into(),
        )),
    }
}
