//! Template structure: sections, parameter declarations, processing and
//! instantiation (paper §III-A/§III-D).

use crate::ast::{Expr, Init, Program};
use crate::error::VplError;
use crate::parser::parse_program;
use crate::sema::check_program;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The shape and domain of one searched parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamShape {
    /// A single 64-bit value in `[lo, hi]` (inclusive).
    Scalar {
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
    /// An array of `len` 64-bit values, each in `[lo, hi]` (inclusive).
    Array {
        /// Element count.
        len: u64,
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
}

/// One `$$$_NAME_$$$ [..]` line of the `->parameters` section.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamDecl {
    /// Placeholder name.
    pub name: String,
    /// Declared shape and domain.
    pub shape: ParamShape,
}

impl ParamDecl {
    /// Total number of 64-bit degrees of freedom this parameter contributes
    /// to the chromosome.
    pub fn arity(&self) -> u64 {
        match self.shape {
            ParamShape::Scalar { .. } => 1,
            ParamShape::Array { len, .. } => len,
        }
    }

    /// The inclusive domain of each element.
    pub fn bounds(&self) -> (u64, u64) {
        match self.shape {
            ParamShape::Scalar { lo, hi } | ParamShape::Array { lo, hi, .. } => (lo, hi),
        }
    }
}

/// A value bound to a placeholder at instantiation time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundValue {
    /// A single value.
    Scalar(u64),
    /// An array of values.
    Array(Vec<u64>),
}

/// A parsed-but-unprocessed template: its raw sections.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    parameters: String,
    global_data: String,
    local_data: String,
    body: String,
}

impl Template {
    /// Splits template source into its `->` sections.
    ///
    /// # Errors
    ///
    /// Returns [`VplError::Template`] for unknown section markers, duplicate
    /// sections, or a missing `->body`.
    pub fn parse(source: &str) -> Result<Template, VplError> {
        let mut sections: HashMap<&str, String> = HashMap::new();
        let mut current: Option<&str> = None;
        for line in source.lines() {
            let trimmed = line.trim();
            if let Some(marker) = trimmed.strip_prefix("->") {
                let name = marker.trim();
                let key = match name {
                    "parameters" => "parameters",
                    "global_data" => "global_data",
                    "local_data" => "local_data",
                    "body" => "body",
                    other => {
                        return Err(VplError::Template(format!("unknown section `->{other}`")))
                    }
                };
                if sections.contains_key(key) {
                    return Err(VplError::Template(format!("duplicate section `->{key}`")));
                }
                sections.insert(key, String::new());
                current = Some(key);
            } else if let Some(key) = current {
                let section = sections.get_mut(key).expect("current section exists");
                section.push_str(line);
                section.push('\n');
            } else if !trimmed.is_empty() {
                return Err(VplError::Template(format!(
                    "content before the first section marker: `{trimmed}`"
                )));
            }
        }
        if !sections.contains_key("body") {
            return Err(VplError::Template(
                "template has no `->body` section".into(),
            ));
        }
        Ok(Template {
            parameters: sections.remove("parameters").unwrap_or_default(),
            global_data: sections.remove("global_data").unwrap_or_default(),
            local_data: sections.remove("local_data").unwrap_or_default(),
            body: sections.remove("body").unwrap_or_default(),
        })
    }

    /// Runs the processing phase (paper §III-D): parses the parameter
    /// declarations (resolving named constants through `constants`), parses
    /// the code sections, and checks semantics.
    ///
    /// # Errors
    ///
    /// Returns the first lexical, syntax, template or semantic error.
    pub fn process(&self, constants: &HashMap<String, u64>) -> Result<ProcessedTemplate, VplError> {
        let params = parse_params(&self.parameters, constants)?;
        let program = parse_program(&self.global_data, &self.local_data, &self.body)?;
        check_program(&program, &params)?;
        Ok(ProcessedTemplate { params, program })
    }
}

/// A template after the processing phase: the extracted search variables
/// and the analysed program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessedTemplate {
    params: Vec<ParamDecl>,
    program: Program,
}

impl ProcessedTemplate {
    /// The searched parameters, in declaration order — this order defines
    /// the chromosome layout used by the GA.
    pub fn params(&self) -> &[ParamDecl] {
        &self.params
    }

    /// The analysed program, still containing placeholders.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Instantiates the template with concrete values, yielding an
    /// executable [`Program`].
    ///
    /// Every declared parameter must be bound with a value of the right
    /// shape and within its domain; extra bindings (environment inputs such
    /// as target-row address arrays) are allowed and substituted wherever
    /// referenced.
    ///
    /// # Errors
    ///
    /// Returns [`VplError::Binding`] for missing bindings, shape mismatches
    /// or out-of-domain values.
    pub fn instantiate(&self, bindings: &HashMap<String, BoundValue>) -> Result<Program, VplError> {
        for p in &self.params {
            let bound = bindings
                .get(&p.name)
                .ok_or_else(|| VplError::Binding(format!("parameter `{}` is not bound", p.name)))?;
            let (lo, hi) = p.bounds();
            match (&p.shape, bound) {
                (ParamShape::Scalar { .. }, BoundValue::Scalar(v)) => {
                    if *v < lo || *v > hi {
                        return Err(VplError::Binding(format!(
                            "value {v} for `{}` outside [{lo}, {hi}]",
                            p.name
                        )));
                    }
                }
                (ParamShape::Array { len, .. }, BoundValue::Array(vs)) => {
                    if vs.len() as u64 != *len {
                        return Err(VplError::Binding(format!(
                            "array `{}` has {} elements, declared {len}",
                            p.name,
                            vs.len()
                        )));
                    }
                    if let Some(v) = vs.iter().find(|v| **v < lo || **v > hi) {
                        return Err(VplError::Binding(format!(
                            "element {v} of `{}` outside [{lo}, {hi}]",
                            p.name
                        )));
                    }
                }
                _ => {
                    return Err(VplError::Binding(format!(
                        "shape mismatch for `{}`: declared {:?}",
                        p.name, p.shape
                    )))
                }
            }
        }
        let mut program = self.program.clone();
        substitute_program(&mut program, bindings)?;
        Ok(program)
    }
}

/// Replaces placeholder expressions with bound literals.
fn substitute_program(
    program: &mut Program,
    bindings: &HashMap<String, BoundValue>,
) -> Result<(), VplError> {
    fn subst_init(
        init: &mut Option<Init>,
        b: &HashMap<String, BoundValue>,
    ) -> Result<(), VplError> {
        if let Some(Init::Expr(Expr::Placeholder(name))) = init {
            match b.get(name) {
                Some(BoundValue::Array(vs)) => {
                    *init = Some(Init::List(vs.iter().map(|v| Expr::Num(*v)).collect()));
                    return Ok(());
                }
                Some(BoundValue::Scalar(v)) => {
                    *init = Some(Init::Expr(Expr::Num(*v)));
                    return Ok(());
                }
                None => {
                    return Err(VplError::Binding(format!(
                        "placeholder `{name}` is not bound"
                    )))
                }
            }
        }
        match init {
            Some(Init::Expr(e)) => subst_expr(e, b),
            Some(Init::List(es)) => es.iter_mut().try_for_each(|e| subst_expr(e, b)),
            None => Ok(()),
        }
    }
    fn subst_expr(e: &mut Expr, b: &HashMap<String, BoundValue>) -> Result<(), VplError> {
        match e {
            Expr::Placeholder(name) => match b.get(name) {
                Some(BoundValue::Scalar(v)) => {
                    *e = Expr::Num(*v);
                    Ok(())
                }
                Some(BoundValue::Array(_)) => Err(VplError::Binding(format!(
                    "array placeholder `{name}` used as a scalar expression"
                ))),
                None => Err(VplError::Binding(format!(
                    "placeholder `{name}` is not bound"
                ))),
            },
            Expr::Index { index, .. } => subst_expr(index, b),
            Expr::Unary { operand, .. } => subst_expr(operand, b),
            Expr::Binary { lhs, rhs, .. } => {
                subst_expr(lhs, b)?;
                subst_expr(rhs, b)
            }
            Expr::Call { args, .. } => args.iter_mut().try_for_each(|a| subst_expr(a, b)),
            Expr::Num(_) | Expr::Var(_) => Ok(()),
        }
    }
    fn subst_stmt(
        s: &mut crate::ast::Stmt,
        b: &HashMap<String, BoundValue>,
    ) -> Result<(), VplError> {
        use crate::ast::{LValue, Stmt};
        match s {
            Stmt::Decl(d) => subst_init(&mut d.init, b),
            Stmt::Expr(e) => subst_expr(e, b),
            Stmt::Assign { target, value, .. } => {
                if let LValue::Index { index, .. } = target {
                    subst_expr(index, b)?;
                }
                subst_expr(value, b)
            }
            Stmt::IncDec { target, .. } => {
                if let LValue::Index { index, .. } = target {
                    subst_expr(index, b)?;
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                subst_stmt(init, b)?;
                subst_expr(cond, b)?;
                subst_stmt(step, b)?;
                body.iter_mut().try_for_each(|s| subst_stmt(s, b))
            }
            Stmt::If { cond, then, els } => {
                subst_expr(cond, b)?;
                then.iter_mut().try_for_each(|s| subst_stmt(s, b))?;
                els.iter_mut().try_for_each(|s| subst_stmt(s, b))
            }
            Stmt::Block(stmts) => stmts.iter_mut().try_for_each(|s| subst_stmt(s, b)),
        }
    }
    for d in program.globals.iter_mut().chain(program.locals.iter_mut()) {
        subst_init(&mut d.init, bindings)?;
    }
    program
        .body
        .iter_mut()
        .try_for_each(|s| subst_stmt(s, bindings))
}

/// Parses the `->parameters` section.
///
/// Each non-empty line is `$$$_NAME_$$$ [N][LO,HI]` (array) or
/// `$$$_NAME_$$$ [LO,HI]` (scalar); `N`, `LO` and `HI` are decimal/hex
/// literals or names resolved through `constants`.
fn parse_params(
    section: &str,
    constants: &HashMap<String, u64>,
) -> Result<Vec<ParamDecl>, VplError> {
    let mut out: Vec<ParamDecl> = Vec::new();
    for raw_line in section.lines() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        let (name, rest) = parse_placeholder_name(line)
            .ok_or_else(|| VplError::Template(format!("malformed parameter line: `{line}`")))?;
        if out.iter().any(|p| p.name == name) {
            return Err(VplError::Template(format!("duplicate parameter `{name}`")));
        }
        let groups = parse_bracket_groups(rest, constants)?;
        let shape = match groups.as_slice() {
            [one] if one.len() == 2 => ParamShape::Scalar {
                lo: one[0],
                hi: one[1],
            },
            [n, range] if n.len() == 1 && range.len() == 2 => ParamShape::Array {
                len: n[0],
                lo: range[0],
                hi: range[1],
            },
            _ => {
                return Err(VplError::Template(format!(
                    "parameter `{name}` needs `[LO,HI]` or `[N][LO,HI]`"
                )))
            }
        };
        let (lo, hi) = match shape {
            ParamShape::Scalar { lo, hi } | ParamShape::Array { lo, hi, .. } => (lo, hi),
        };
        if lo > hi {
            return Err(VplError::Template(format!(
                "parameter `{name}` has an empty domain [{lo}, {hi}]"
            )));
        }
        if let ParamShape::Array { len: 0, .. } = shape {
            return Err(VplError::Template(format!(
                "parameter `{name}` has zero length"
            )));
        }
        out.push(ParamDecl { name, shape });
    }
    Ok(out)
}

/// Extracts `NAME` from a leading `$$$_NAME_$$$`, returning the remainder.
fn parse_placeholder_name(line: &str) -> Option<(String, &str)> {
    let rest = line.strip_prefix("$$$_")?;
    let end = rest.find("_$$$")?;
    let name = &rest[..end];
    if name.is_empty() {
        return None;
    }
    Some((name.to_string(), &rest[end + 4..]))
}

/// Parses a sequence of `[a]`/`[a,b]` groups with constant resolution.
fn parse_bracket_groups(
    mut rest: &str,
    constants: &HashMap<String, u64>,
) -> Result<Vec<Vec<u64>>, VplError> {
    let mut groups = Vec::new();
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        let stripped = rest
            .strip_prefix('[')
            .ok_or_else(|| VplError::Template(format!("expected `[...]`, found `{rest}`")))?;
        let inner_end = stripped
            .find(']')
            .ok_or_else(|| VplError::Template(format!("unterminated `[...]` in `{rest}`")))?;
        let inner = &stripped[..inner_end];
        let mut values = Vec::new();
        for part in inner.split(',') {
            let token = part.trim();
            let value = if let Some(hex) = token
                .strip_prefix("0x")
                .or_else(|| token.strip_prefix("0X"))
            {
                u64::from_str_radix(hex, 16)
                    .map_err(|e| VplError::Template(format!("bad constant `{token}`: {e}")))?
            } else if token.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                token
                    .parse::<u64>()
                    .map_err(|e| VplError::Template(format!("bad constant `{token}`: {e}")))?
            } else {
                *constants.get(token).ok_or_else(|| {
                    VplError::Template(format!("unknown constant `{token}` in parameter bounds"))
                })?
            };
            values.push(value);
        }
        groups.push(values);
        rest = &stripped[inner_end + 1..];
    }
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3_LIKE: &str = r#"
->parameters
$$$_ARRAY1_VEC_$$$ [N1][DB1,UP1]
$$$_VAR1_$$$ [0,255]

->global_data
volatile unsigned long long var1[] = $$$_ARRAY1_VEC_$$$;

->local_data
unsigned long long var3 = $$$_VAR1_$$$;
int i = 0;

->body
for (i = 0; i < 4; i += 1) {
    var1[i] = var3;
}
"#;

    fn constants() -> HashMap<String, u64> {
        [
            ("N1".to_string(), 4u64),
            ("DB1".to_string(), 0),
            ("UP1".to_string(), u64::MAX),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn parses_sections() {
        let t = Template::parse(FIG3_LIKE).unwrap();
        assert!(t.parameters.contains("ARRAY1_VEC"));
        assert!(t.global_data.contains("var1"));
        assert!(t.body.contains("for"));
    }

    #[test]
    fn rejects_unknown_and_duplicate_sections() {
        assert!(matches!(
            Template::parse("->bogus\nx"),
            Err(VplError::Template(_))
        ));
        assert!(matches!(
            Template::parse("->body\n->body\n"),
            Err(VplError::Template(_))
        ));
        assert!(matches!(
            Template::parse("->parameters\n"),
            Err(VplError::Template(_))
        ));
        assert!(matches!(
            Template::parse("stray\n->body\n"),
            Err(VplError::Template(_))
        ));
    }

    #[test]
    fn processing_extracts_parameters_with_constants() {
        let t = Template::parse(FIG3_LIKE).unwrap();
        let p = t.process(&constants()).unwrap();
        assert_eq!(p.params().len(), 2);
        assert_eq!(p.params()[0].name, "ARRAY1_VEC");
        assert_eq!(
            p.params()[0].shape,
            ParamShape::Array {
                len: 4,
                lo: 0,
                hi: u64::MAX
            }
        );
        assert_eq!(p.params()[1].shape, ParamShape::Scalar { lo: 0, hi: 255 });
        assert_eq!(p.params()[0].arity(), 4);
    }

    #[test]
    fn unknown_constant_is_an_error() {
        let t = Template::parse(FIG3_LIKE).unwrap();
        let err = t.process(&HashMap::new()).unwrap_err();
        assert!(matches!(err, VplError::Template(_)));
        assert!(err.to_string().contains("N1"));
    }

    #[test]
    fn duplicate_parameter_is_an_error() {
        let src = "->parameters\n$$$_P_$$$ [0,1]\n$$$_P_$$$ [0,1]\n->body\ni = $$$_P_$$$;";
        let err = Template::parse(src)
            .unwrap()
            .process(&HashMap::new())
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn empty_domain_is_an_error() {
        let src = "->parameters\n$$$_P_$$$ [5,2]\n->body\ni = $$$_P_$$$;";
        assert!(Template::parse(src)
            .unwrap()
            .process(&HashMap::new())
            .is_err());
    }

    #[test]
    fn instantiation_substitutes_and_validates() {
        let t = Template::parse(FIG3_LIKE).unwrap();
        let p = t.process(&constants()).unwrap();
        let mut b = HashMap::new();
        b.insert("ARRAY1_VEC".into(), BoundValue::Array(vec![1, 2, 3, 4]));
        b.insert("VAR1".into(), BoundValue::Scalar(99));
        let program = p.instantiate(&b).unwrap();
        match &program.globals[0].init {
            Some(Init::List(items)) => assert_eq!(items.len(), 4),
            other => panic!("array placeholder not expanded: {other:?}"),
        }
        assert!(program.placeholder_names().is_empty());
    }

    #[test]
    fn instantiation_rejects_bad_bindings() {
        let t = Template::parse(FIG3_LIKE).unwrap();
        let p = t.process(&constants()).unwrap();
        // Missing binding.
        assert!(p.instantiate(&HashMap::new()).is_err());
        // Wrong shape.
        let mut b = HashMap::new();
        b.insert("ARRAY1_VEC".into(), BoundValue::Scalar(1));
        b.insert("VAR1".into(), BoundValue::Scalar(1));
        assert!(p.instantiate(&b).is_err());
        // Out of domain.
        let mut b = HashMap::new();
        b.insert("ARRAY1_VEC".into(), BoundValue::Array(vec![1, 2, 3, 4]));
        b.insert("VAR1".into(), BoundValue::Scalar(256));
        let err = p.instantiate(&b).unwrap_err();
        assert!(err.to_string().contains("outside"));
        // Wrong array length.
        let mut b = HashMap::new();
        b.insert("ARRAY1_VEC".into(), BoundValue::Array(vec![1, 2]));
        b.insert("VAR1".into(), BoundValue::Scalar(0));
        assert!(p.instantiate(&b).is_err());
    }

    #[test]
    fn extra_environment_bindings_are_allowed() {
        let src = "->parameters\n$$$_P_$$$ [0,10]\n->global_data\nvolatile unsigned long long rows[] = $$$_TARGETS_$$$;\n->body\nrows[0] = $$$_P_$$$;";
        let p = Template::parse(src)
            .unwrap()
            .process(&HashMap::new())
            .unwrap();
        let mut b = HashMap::new();
        b.insert("P".into(), BoundValue::Scalar(5));
        b.insert("TARGETS".into(), BoundValue::Array(vec![100, 200]));
        let program = p.instantiate(&b).unwrap();
        assert!(program.placeholder_names().is_empty());
    }

    #[test]
    fn hex_bounds_are_parsed() {
        let src =
            "->parameters\n$$$_P_$$$ [0x10,0xFF]\n->local_data\nint i = 0;\n->body\ni = $$$_P_$$$;";
        let p = Template::parse(src)
            .unwrap()
            .process(&HashMap::new())
            .unwrap();
        assert_eq!(p.params()[0].shape, ParamShape::Scalar { lo: 16, hi: 255 });
    }
}
