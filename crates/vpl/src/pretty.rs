//! Pretty-printer: renders an AST back to C-like source.
//!
//! The evaluation phase records every synthesized virus in the database
//! (§III-F); rendering the instantiated program lets an operator read *the
//! actual program* a chromosome encodes — useful for audit trails and for
//! porting a discovered virus to real hardware.

use crate::ast::{AssignOp, BinOp, Decl, Expr, Init, LValue, Program, Stmt, UnOp};

/// Renders a whole program as C-like source with the template's section
/// structure.
pub fn render_program(program: &Program) -> String {
    let mut out = String::new();
    if !program.globals.is_empty() {
        out.push_str("/* global_data */\n");
        for d in &program.globals {
            out.push_str(&render_decl(d, true));
            out.push('\n');
        }
        out.push('\n');
    }
    if !program.locals.is_empty() {
        out.push_str("/* local_data */\n");
        for d in &program.locals {
            out.push_str(&render_decl(d, false));
            out.push('\n');
        }
        out.push('\n');
    }
    out.push_str("/* body */\n");
    for s in &program.body {
        out.push_str(&render_stmt(s, 0));
    }
    out
}

fn indent(depth: usize) -> String {
    "    ".repeat(depth)
}

fn render_decl(d: &Decl, global: bool) -> String {
    let qualifier = if global { "volatile " } else { "" };
    let ty = if d.is_pointer {
        "unsigned long long*"
    } else {
        "unsigned long long"
    };
    let array = if d.is_array { "[]" } else { "" };
    match &d.init {
        None => format!("{qualifier}{ty} {}{array};", d.name),
        Some(Init::Expr(e)) => {
            format!("{qualifier}{ty} {}{array} = {};", d.name, render_expr(e))
        }
        Some(Init::List(items)) => {
            // Render every element: eliding long lists behind a `/* … */`
            // comment broke the render→reparse round-trip (the lexer skips
            // comments, so reparsing silently dropped elements past the
            // elision point). Rendered programs are audit artifacts and
            // must reconstruct the exact AST.
            let rendered: Vec<String> = items.iter().map(render_expr).collect();
            format!(
                "{qualifier}{ty} {}[] = {{ {} }};",
                d.name,
                rendered.join(", ")
            )
        }
    }
}

/// Renders one statement at the given indentation depth.
pub fn render_stmt(s: &Stmt, depth: usize) -> String {
    let pad = indent(depth);
    match s {
        Stmt::Decl(d) => format!("{pad}{}\n", render_decl(d, false)),
        Stmt::Expr(e) => format!("{pad}{};\n", render_expr(e)),
        Stmt::Assign { target, op, value } => {
            let op_str = match op {
                AssignOp::Set => "=",
                AssignOp::Add => "+=",
                AssignOp::Sub => "-=",
                AssignOp::Mul => "*=",
                AssignOp::Div => "/=",
            };
            format!(
                "{pad}{} {op_str} {};\n",
                render_lvalue(target),
                render_expr(value)
            )
        }
        Stmt::IncDec { target, increment } => {
            format!(
                "{pad}{}{};\n",
                render_lvalue(target),
                if *increment { "++" } else { "--" }
            )
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let init_str = render_stmt(init, 0);
            let step_str = render_stmt(step, 0);
            let mut out = format!(
                "{pad}for ({}; {}; {}) {{\n",
                init_str.trim().trim_end_matches(';'),
                render_expr(cond),
                step_str.trim().trim_end_matches(';'),
            );
            for s in body {
                out.push_str(&render_stmt(s, depth + 1));
            }
            out.push_str(&format!("{pad}}}\n"));
            out
        }
        Stmt::If { cond, then, els } => {
            let mut out = format!("{pad}if ({}) {{\n", render_expr(cond));
            for s in then {
                out.push_str(&render_stmt(s, depth + 1));
            }
            if els.is_empty() {
                out.push_str(&format!("{pad}}}\n"));
            } else {
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in els {
                    out.push_str(&render_stmt(s, depth + 1));
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            out
        }
        Stmt::Block(stmts) => {
            let mut out = format!("{pad}{{\n");
            for s in stmts {
                out.push_str(&render_stmt(s, depth + 1));
            }
            out.push_str(&format!("{pad}}}\n"));
            out
        }
    }
}

fn render_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Var(name) => name.clone(),
        LValue::Index { base, index } => format!("{base}[{}]", render_expr(index)),
    }
}

/// Renders one expression (fully parenthesized at binary nodes so the
/// output is unambiguous without a precedence table).
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Num(n) => {
            if *n > 0xFFFF {
                format!("{n:#x}")
            } else {
                n.to_string()
            }
        }
        Expr::Var(name) => name.clone(),
        Expr::Placeholder(p) => format!("$$$_{p}_$$$"),
        Expr::Index { base, index } => format!("{base}[{}]", render_expr(index)),
        Expr::Unary { op, operand } => {
            let op_str = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            // Parenthesized so nested unaries (`--x`) do not lex as
            // decrement operators when re-parsed.
            format!("{op_str}({})", render_expr(operand))
        }
        Expr::Binary { op, lhs, rhs } => {
            let op_str = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::BitAnd => "&",
                BinOp::BitOr => "|",
                BinOp::BitXor => "^",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Gt => ">",
                BinOp::Le => "<=",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {op_str} {})", render_expr(lhs), render_expr(rhs))
        }
        Expr::Call { name, args } => {
            let rendered: Vec<String> = args.iter().map(render_expr).collect();
            format!("{name}({})", rendered.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip_body(body: &str) -> String {
        let program = parse_program("", "", body).expect("parses");
        render_program(&program)
    }

    #[test]
    fn renders_fill_loop() {
        let out = roundtrip_body(
            "unsigned long long p = malloc(64); for (p = 0; p < 8; p += 1) { p[0] = 7; }",
        );
        assert!(out.contains("malloc(64)"));
        assert!(out.contains("for (p = 0; (p < 8); p += 1) {"));
        assert!(out.contains("p[0] = 7;"));
    }

    #[test]
    fn renders_if_else_and_incdec() {
        let program = parse_program("", "int i = 0;", "if (i) { i++; } else { i--; }").unwrap();
        let out = render_program(&program);
        assert!(out.contains("if (i) {"));
        assert!(out.contains("i++;"));
        assert!(out.contains("} else {"));
        assert!(out.contains("i--;"));
    }

    #[test]
    fn long_global_arrays_roundtrip_without_elision() {
        let items: Vec<String> = (0..20).map(|i| i.to_string()).collect();
        let src = format!(
            "volatile unsigned long long v[] = {{ {} }};",
            items.join(", ")
        );
        let program = parse_program(&src, "", "").unwrap();
        let out = render_program(&program);
        assert!(
            !out.contains("more */"),
            "long lists must not be elided: {out}"
        );
        assert!(out.starts_with("/* global_data */"));
        let globals: String = out
            .lines()
            .filter(|l| !l.starts_with("/*"))
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = parse_program(&globals, "", "").unwrap();
        assert_eq!(
            reparsed.globals, program.globals,
            "all 20 elements must survive"
        );
    }

    #[test]
    fn renders_placeholders_in_template_syntax() {
        let program = parse_program("", "int i = 0;", "i = $$$_P_$$$;").unwrap();
        let out = render_program(&program);
        assert!(out.contains("i = $$$_P_$$$;"));
    }

    #[test]
    fn rendered_body_reparses() {
        // The pretty-printed body is itself valid template code.
        let original = parse_program(
            "",
            "int i = 0; unsigned long long acc = 0;",
            "unsigned long long p = malloc(512);\
             for (i = 0; i < 64; i += 1) { p[i] = i * 3 + 1; }\
             for (i = 0; i < 64; i += 1) { acc += p[(i * 9) % 64]; }",
        )
        .unwrap();
        let rendered = render_program(&original);
        // Strip the section comments and re-parse the body.
        let body: String = rendered
            .lines()
            .filter(|l| !l.starts_with("/*"))
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = parse_program("", "", &body);
        assert!(reparsed.is_ok(), "rendered source must reparse: {rendered}");
    }

    #[test]
    fn big_numbers_render_hex() {
        assert_eq!(
            render_expr(&Expr::Num(0x3333_3333_3333_3333)),
            "0x3333333333333333"
        );
        assert_eq!(render_expr(&Expr::Num(42)), "42");
    }
}
