//! Recursive-descent parser (the syntax analysis of the processing phase).

use crate::ast::{AssignOp, BinOp, Decl, Expr, Init, LValue, Program, Stmt, UnOp};
use crate::error::VplError;
use crate::lexer::lex;
use crate::token::{Keyword, Punct, Spanned, Token};

/// Parses the three code sections of a template into a [`Program`].
///
/// # Errors
///
/// Returns [`VplError::Lex`] or [`VplError::Parse`] on malformed input.
pub fn parse_program(global_data: &str, local_data: &str, body: &str) -> Result<Program, VplError> {
    let globals = Parser::new(lex(global_data)?).declarations()?;
    let locals = Parser::new(lex(local_data)?).declarations()?;
    let body = Parser::new(lex(body)?).statements_until_eof()?;
    Ok(Program {
        globals,
        locals,
        body,
    })
}

/// Parses a single expression (used by parameter bounds and tests).
///
/// # Errors
///
/// Returns [`VplError::Parse`] when the input is not exactly one expression.
pub fn parse_expr(source: &str) -> Result<Expr, VplError> {
    let mut p = Parser::new(lex(source)?);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Extra declarators produced by comma-lists (`int i, j;`), drained into
    /// the surrounding statement/declaration list.
    pending: Vec<OptionDecl>,
}

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Self {
        Parser {
            tokens,
            pos: 0,
            pending: Vec::new(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|s| &s.token)
    }

    fn line(&self) -> u32 {
        self.tokens.get(self.pos).map(|s| s.line).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> VplError {
        VplError::Parse {
            message: message.into(),
            line: self.line(),
        }
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == Some(&Token::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), VplError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            match self.peek() {
                Some(t) => Err(self.error(format!("expected `{p:?}`, found {t}"))),
                None => Err(self.error(format!("expected `{p:?}`, found end of input"))),
            }
        }
    }

    fn expect_eof(&mut self) -> Result<(), VplError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.error(format!("unexpected trailing {t}"))),
        }
    }

    // ---- declarations -------------------------------------------------

    /// Parses a sequence of declarations (global_data / local_data
    /// sections).
    fn declarations(&mut self) -> Result<Vec<Decl>, VplError> {
        let mut out = Vec::new();
        while self.peek().is_some() {
            let d = self.declaration()?;
            self.expect_punct(Punct::Semicolon)?;
            out.push(d);
            for mut pd in std::mem::take(&mut self.pending) {
                if let Some(decl) = pd.take() {
                    out.push(decl);
                }
            }
        }
        Ok(out)
    }

    /// Whether the upcoming tokens start a declaration.
    fn at_declaration(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Keyword(
                Keyword::Volatile | Keyword::Unsigned | Keyword::Int
            ))
        )
    }

    fn declaration(&mut self) -> Result<Decl, VplError> {
        // [volatile] (unsigned long long [*] | int) name ([])? (= init)?
        if self.peek() == Some(&Token::Keyword(Keyword::Volatile)) {
            self.bump();
        }
        let is_pointer = match self.bump() {
            Some(Token::Keyword(Keyword::Unsigned)) => {
                for _ in 0..2 {
                    if self.bump() != Some(Token::Keyword(Keyword::Long)) {
                        return Err(self.error("expected `long long` after `unsigned`"));
                    }
                }
                self.eat_punct(Punct::Star)
            }
            Some(Token::Keyword(Keyword::Int)) => false,
            other => {
                return Err(self.error(format!(
                    "expected a type, found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        let mut decls = self.one_declarator(is_pointer)?;
        // Comma-separated declarator lists (`int i, j;`) desugar into the
        // first declarator; the rest are returned through `pending`.
        while self.eat_punct(Punct::Comma) {
            let more = self.one_declarator(is_pointer)?;
            self.pending.push(more);
        }
        Ok(decls
            .take()
            .expect("one_declarator always yields a declaration"))
    }

    fn one_declarator(&mut self, is_pointer: bool) -> Result<OptionDecl, VplError> {
        let name = match self.bump() {
            Some(Token::Ident(n)) => n,
            other => {
                return Err(self.error(format!(
                    "expected a variable name, found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        let is_array = if self.eat_punct(Punct::LBracket) {
            // Optional size expression is parsed and discarded: array length
            // comes from the initializer.
            if self.peek() != Some(&Token::Punct(Punct::RBracket)) {
                self.expr()?;
            }
            self.expect_punct(Punct::RBracket)?;
            true
        } else {
            false
        };
        let init = if self.eat_punct(Punct::Assign) {
            if self.eat_punct(Punct::LBrace) {
                let mut items = Vec::new();
                if self.peek() != Some(&Token::Punct(Punct::RBrace)) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                }
                self.expect_punct(Punct::RBrace)?;
                Some(Init::List(items))
            } else {
                Some(Init::Expr(self.expr()?))
            }
        } else {
            None
        };
        Ok(OptionDecl(Some(Decl {
            name,
            is_array,
            is_pointer,
            init,
        })))
    }

    // ---- statements ----------------------------------------------------

    fn statements_until_eof(&mut self) -> Result<Vec<Stmt>, VplError> {
        let mut out = Vec::new();
        while self.peek().is_some() {
            out.push(self.statement()?);
            self.drain_pending(&mut out);
        }
        Ok(out)
    }

    fn drain_pending(&mut self, out: &mut Vec<Stmt>) {
        for mut d in std::mem::take(&mut self.pending) {
            if let Some(decl) = d.take() {
                out.push(Stmt::Decl(decl));
            }
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, VplError> {
        self.expect_punct(Punct::LBrace)?;
        let mut out = Vec::new();
        while self.peek() != Some(&Token::Punct(Punct::RBrace)) {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            let s = self.statement()?;
            out.push(s);
            self.drain_pending(&mut out);
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(out)
    }

    fn statement(&mut self) -> Result<Stmt, VplError> {
        match self.peek() {
            Some(Token::Keyword(Keyword::For)) => self.for_stmt(),
            Some(Token::Keyword(Keyword::If)) => self.if_stmt(),
            Some(Token::Punct(Punct::LBrace)) => Ok(Stmt::Block(self.block()?)),
            _ if self.at_declaration() => {
                let d = self.declaration()?;
                self.expect_punct(Punct::Semicolon)?;
                Ok(Stmt::Decl(d))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect_punct(Punct::Semicolon)?;
                Ok(s)
            }
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, VplError> {
        self.bump(); // `for`
        self.expect_punct(Punct::LParen)?;
        let init = if self.peek() == Some(&Token::Punct(Punct::Semicolon)) {
            Stmt::Block(vec![])
        } else if self.at_declaration() {
            Stmt::Decl(self.declaration()?)
        } else {
            self.simple_stmt()?
        };
        self.expect_punct(Punct::Semicolon)?;
        let cond = if self.peek() == Some(&Token::Punct(Punct::Semicolon)) {
            Expr::Num(1)
        } else {
            self.expr()?
        };
        self.expect_punct(Punct::Semicolon)?;
        let step = if self.peek() == Some(&Token::Punct(Punct::RParen)) {
            Stmt::Block(vec![])
        } else {
            self.simple_stmt()?
        };
        self.expect_punct(Punct::RParen)?;
        let body = if self.peek() == Some(&Token::Punct(Punct::LBrace)) {
            self.block()?
        } else {
            vec![self.statement()?]
        };
        Ok(Stmt::For {
            init: Box::new(init),
            cond,
            step: Box::new(step),
            body,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, VplError> {
        self.bump(); // `if`
        self.expect_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.expect_punct(Punct::RParen)?;
        let then = if self.peek() == Some(&Token::Punct(Punct::LBrace)) {
            self.block()?
        } else {
            vec![self.statement()?]
        };
        let els = if self.peek() == Some(&Token::Keyword(Keyword::Else)) {
            self.bump();
            if self.peek() == Some(&Token::Punct(Punct::LBrace)) {
                self.block()?
            } else {
                vec![self.statement()?]
            }
        } else {
            vec![]
        };
        Ok(Stmt::If { cond, then, els })
    }

    /// An assignment, inc/dec, or bare expression (no trailing `;`).
    fn simple_stmt(&mut self) -> Result<Stmt, VplError> {
        // Lookahead for `ident (= | op= | ++ | -- | [expr] =)`.
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            let after = self.peek_at(1).cloned();
            match after {
                Some(Token::Punct(Punct::Assign)) => {
                    self.pos += 2;
                    let value = self.expr()?;
                    return Ok(Stmt::Assign {
                        target: LValue::Var(name),
                        op: AssignOp::Set,
                        value,
                    });
                }
                Some(Token::Punct(
                    p @ (Punct::PlusAssign
                    | Punct::MinusAssign
                    | Punct::StarAssign
                    | Punct::SlashAssign),
                )) => {
                    self.pos += 2;
                    let value = self.expr()?;
                    let op = match p {
                        Punct::PlusAssign => AssignOp::Add,
                        Punct::MinusAssign => AssignOp::Sub,
                        Punct::StarAssign => AssignOp::Mul,
                        _ => AssignOp::Div,
                    };
                    return Ok(Stmt::Assign {
                        target: LValue::Var(name),
                        op,
                        value,
                    });
                }
                Some(Token::Punct(Punct::PlusPlus)) => {
                    self.pos += 2;
                    return Ok(Stmt::IncDec {
                        target: LValue::Var(name),
                        increment: true,
                    });
                }
                Some(Token::Punct(Punct::MinusMinus)) => {
                    self.pos += 2;
                    return Ok(Stmt::IncDec {
                        target: LValue::Var(name),
                        increment: false,
                    });
                }
                Some(Token::Punct(Punct::LBracket)) => {
                    // Could be `a[i] = e` / `a[i] += e` / `a[i]++` or a bare
                    // read `a[i]` inside an expression statement. Parse the
                    // index, then decide.
                    let saved = self.pos;
                    self.pos += 2;
                    let index = self.expr()?;
                    if self.eat_punct(Punct::RBracket) {
                        if self.eat_punct(Punct::Assign) {
                            let value = self.expr()?;
                            return Ok(Stmt::Assign {
                                target: LValue::Index { base: name, index },
                                op: AssignOp::Set,
                                value,
                            });
                        }
                        for (p, op) in [
                            (Punct::PlusAssign, AssignOp::Add),
                            (Punct::MinusAssign, AssignOp::Sub),
                            (Punct::StarAssign, AssignOp::Mul),
                            (Punct::SlashAssign, AssignOp::Div),
                        ] {
                            if self.eat_punct(p) {
                                let value = self.expr()?;
                                return Ok(Stmt::Assign {
                                    target: LValue::Index { base: name, index },
                                    op,
                                    value,
                                });
                            }
                        }
                        if self.eat_punct(Punct::PlusPlus) {
                            return Ok(Stmt::IncDec {
                                target: LValue::Index { base: name, index },
                                increment: true,
                            });
                        }
                        if self.eat_punct(Punct::MinusMinus) {
                            return Ok(Stmt::IncDec {
                                target: LValue::Index { base: name, index },
                                increment: false,
                            });
                        }
                    }
                    // Not an assignment: rewind and parse as an expression.
                    self.pos = saved;
                }
                _ => {}
            }
        }
        Ok(Stmt::Expr(self.expr()?))
    }

    // ---- expressions (precedence climbing) ------------------------------

    fn expr(&mut self) -> Result<Expr, VplError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, VplError> {
        let mut lhs = self.unary_expr()?;
        while let Some(&Token::Punct(p)) = self.peek() {
            let Some((op, prec)) = binop_of(p) else { break };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, VplError> {
        if self.eat_punct(Punct::Minus) {
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(self.unary_expr()?),
            });
        }
        if self.eat_punct(Punct::Bang) {
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(self.unary_expr()?),
            });
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, VplError> {
        let mut e = self.primary_expr()?;
        while self.peek() == Some(&Token::Punct(Punct::LBracket)) {
            let base = match &e {
                Expr::Var(name) => name.clone(),
                _ => return Err(self.error("indexing is only supported on variables")),
            };
            self.bump();
            let index = self.expr()?;
            self.expect_punct(Punct::RBracket)?;
            e = Expr::Index {
                base,
                index: Box::new(index),
            };
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, VplError> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(Expr::Num(n)),
            Some(Token::Placeholder(p)) => Ok(Expr::Placeholder(p)),
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::Punct(Punct::LParen)) {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::Punct(Punct::RParen)) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen)?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Token::Punct(Punct::LParen)) => {
                // A cast like `(unsigned long long*)(...)` is parsed and
                // discarded — the language is untyped 64-bit underneath.
                if matches!(
                    self.peek(),
                    Some(Token::Keyword(Keyword::Unsigned | Keyword::Int))
                ) {
                    while self.peek() != Some(&Token::Punct(Punct::RParen)) {
                        if self.bump().is_none() {
                            return Err(self.error("unterminated cast"));
                        }
                    }
                    self.bump();
                    return self.unary_expr();
                }
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Some(t) => Err(self.error(format!("expected an expression, found {t}"))),
            None => Err(self.error("expected an expression, found end of input")),
        }
    }
}

/// Extra declarators queued by comma-lists (`int i, j;`).
#[derive(Debug)]
struct OptionDecl(Option<Decl>);

impl OptionDecl {
    fn take(&mut self) -> Option<Decl> {
        self.0.take()
    }
}

/// Operator precedence table (higher binds tighter).
fn binop_of(p: Punct) -> Option<(BinOp, u8)> {
    Some(match p {
        Punct::PipePipe => (BinOp::Or, 1),
        Punct::AmpAmp => (BinOp::And, 2),
        Punct::Pipe => (BinOp::BitOr, 3),
        Punct::Caret => (BinOp::BitXor, 4),
        Punct::Amp => (BinOp::BitAnd, 5),
        Punct::Eq => (BinOp::Eq, 6),
        Punct::Ne => (BinOp::Ne, 6),
        Punct::Lt => (BinOp::Lt, 7),
        Punct::Gt => (BinOp::Gt, 7),
        Punct::Le => (BinOp::Le, 7),
        Punct::Ge => (BinOp::Ge, 7),
        Punct::Shl => (BinOp::Shl, 8),
        Punct::Shr => (BinOp::Shr, 8),
        Punct::Plus => (BinOp::Add, 9),
        Punct::Minus => (BinOp::Sub, 9),
        Punct::Star => (BinOp::Mul, 10),
        Punct::Slash => (BinOp::Div, 10),
        Punct::Percent => (BinOp::Rem, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parentheses() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_indexing_and_calls() {
        let e = parse_expr("a[i + 1]").unwrap();
        assert!(matches!(e, Expr::Index { .. }));
        let e = parse_expr("malloc(64)").unwrap();
        assert!(matches!(e, Expr::Call { .. }));
    }

    #[test]
    fn parses_casts_transparently() {
        let e = parse_expr("(unsigned long long*)(malloc(8))").unwrap();
        assert!(matches!(e, Expr::Call { .. }));
    }

    #[test]
    fn parses_placeholders_in_expressions() {
        let e = parse_expr("$$$_X_$$$ + 1").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn parses_global_declarations() {
        let p = parse_program(
            "volatile unsigned long long var1[] = $$$_A_$$$; unsigned long long x = 3;",
            "",
            "",
        )
        .unwrap();
        assert_eq!(p.globals.len(), 2);
        assert!(p.globals[0].is_array);
        assert_eq!(p.globals[0].name, "var1");
        assert!(matches!(
            p.globals[0].init,
            Some(Init::Expr(Expr::Placeholder(_)))
        ));
    }

    #[test]
    fn parses_array_literal_initializer() {
        let p = parse_program("unsigned long long t[] = { 1, 2, 3 };", "", "").unwrap();
        match &p.globals[0].init {
            Some(Init::List(items)) => assert_eq!(items.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_comma_declarator_lists() {
        let p = parse_program("", "int i, j, k;", "").unwrap();
        // Comma declarators surface in the locals list via the pending queue
        // drained by `declarations`.
        assert_eq!(p.locals.len(), 3);
        let names: Vec<&str> = p.locals.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["i", "j", "k"]);
    }

    #[test]
    fn parses_for_loop() {
        let p = parse_program("", "int i = 0;", "for (i = 0; i < 10; i += 1) { i = i; }").unwrap();
        assert!(matches!(p.body[0], Stmt::For { .. }));
    }

    #[test]
    fn parses_for_with_increment_and_bare_body() {
        let p = parse_program("", "int i = 0;", "for (i = 0; i < 10; i++) i = i;").unwrap();
        match &p.body[0] {
            Stmt::For { step, body, .. } => {
                assert!(matches!(
                    **step,
                    Stmt::IncDec {
                        increment: true,
                        ..
                    }
                ));
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_else() {
        let p = parse_program("", "int i = 0;", "if (i == 0) { i = 1; } else { i = 2; }").unwrap();
        match &p.body[0] {
            Stmt::If { then, els, .. } => {
                assert_eq!(then.len(), 1);
                assert_eq!(els.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_array_element_assignment() {
        let p = parse_program("", "", "a[3] = 7; a[4] += 1; a[5]++;").unwrap();
        assert!(matches!(
            &p.body[0],
            Stmt::Assign {
                target: LValue::Index { .. },
                ..
            }
        ));
        assert!(matches!(
            &p.body[1],
            Stmt::Assign {
                op: AssignOp::Add,
                target: LValue::Index { .. },
                ..
            }
        ));
        assert!(matches!(
            &p.body[2],
            Stmt::IncDec {
                increment: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_body_local_declaration_with_malloc() {
        let p = parse_program(
            "",
            "",
            "volatile unsigned long long* temp = (unsigned long long*)(malloc(64));",
        )
        .unwrap();
        match &p.body[0] {
            Stmt::Decl(d) => {
                assert!(d.is_pointer);
                assert!(matches!(d.init, Some(Init::Expr(Expr::Call { .. }))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reports_syntax_errors_with_line() {
        let err = parse_program("", "", "for (i = 0; i < 10) { }").unwrap_err();
        match err {
            VplError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        assert!(parse_program("", "", "i = 1 j = 2;").is_err());
    }

    #[test]
    fn bare_expression_statement_allowed() {
        let p = parse_program("", "", "a[i];").unwrap();
        assert!(matches!(&p.body[0], Stmt::Expr(Expr::Index { .. })));
    }
}
