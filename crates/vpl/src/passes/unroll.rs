//! Unrolling of short constant-trip-count loops.
//!
//! Targets the canonical counted loop the emitter produces for
//! `for (v = start; v < bound; v += 1) { ... }` when both `start` and
//! `bound` are immediates and the counter is a register slot. The whole
//! window — condition prologue, body, step, back edge — is replaced by
//! `trip` straight-line copies of the body+step, each bracketed by
//! [`Op::Bump`]s that replay the condition and back-edge charges at the
//! exact original checkpoints:
//!
//! ```text
//! per iteration:  Bump{c_load + c_branch}   // cond evaluates true
//!                 <body + step ops, verbatim copy>
//!                 Bump{c_back}              // back-edge jump
//! afterwards:     Bump{c_load + c_branch}   // cond evaluates false
//! ```
//!
//! The counter load carries its charge without a budget check (register
//! slots never check) and the branch checks right after, so folding both
//! into one checking `Bump` lands the check at the identical cumulative
//! step count. The step `FoldSlot` rides along in every copy, so the
//! counter still ends at `bound`, exactly as the loop left it. A
//! zero-trip loop degenerates to the single trailing `Bump`.
//!
//! The init `StoreSlot`, the fusion placeholder `Nop`, and any pass
//! preheaders between them and the loop top are left untouched; they are
//! only scanned to learn the start value and to prove every path into the
//! loop top passes the init.

use super::{find_loops, frozen_mask, register_slots, remap_targets, writes_slot, NaturalLoop};
use crate::bytecode::{AluOp, CompiledProgram, Op, Operand};

/// Most iterations a loop may be expanded to.
const MAX_TRIP: u64 = 4;
/// Most body+step ops per iteration copy.
const MAX_BODY: usize = 16;

/// Runs unrolling to fixpoint. Each application deletes a back edge and
/// introduces none, so this terminates after at most one round per loop.
pub(crate) fn run(program: &mut CompiledProgram) {
    while unroll_one(program) {}
}

/// A validated unroll site.
struct Plan {
    top: usize,
    back: usize,
    /// Iterations to emit (`bound - start`, possibly zero).
    trip: u64,
    /// Condition charge: counter load + exit branch.
    c_cond: u32,
    /// Back-edge jump charge.
    c_back: u32,
}

fn unroll_one(program: &mut CompiledProgram) -> bool {
    let frozen = frozen_mask(&program.ops);
    let is_register = register_slots(program);
    for lp in find_loops(&program.ops) {
        if let Some(plan) = plan_loop(program, lp, &frozen, &is_register) {
            apply(program, &plan);
            return true;
        }
    }
    false
}

/// Validates one loop against the canonical shape and size caps.
fn plan_loop(
    program: &CompiledProgram,
    lp: NaturalLoop,
    frozen: &[bool],
    is_register: &[bool],
) -> Option<Plan> {
    let ops = &program.ops;
    let (top, back) = (lp.top, lp.back);
    // Window must be big enough for prologue (3 ops) + step (1) + jump.
    if back < top + 4 || frozen[top..=back].iter().any(|&f| f) {
        return None;
    }
    // Condition prologue: load counter, compare `< bound`, exit branch.
    let Op::LoadSlot {
        dst: r_var,
        slot: var,
        charge: c0,
    } = ops[top]
    else {
        return None;
    };
    let Op::Alu {
        op: AluOp::Lt,
        dst: r_cond,
        lhs: Operand::Reg(cmp_reg),
        rhs: Operand::Imm(bound),
    } = ops[top + 1]
    else {
        return None;
    };
    let Op::JumpIfZero {
        cond: Operand::Reg(br_reg),
        target: exit,
        charge: c1,
    } = ops[top + 2]
    else {
        return None;
    };
    if cmp_reg != r_var || br_reg != r_cond || exit as usize != back + 1 {
        return None;
    }
    if !is_register[var as usize] {
        return None;
    }
    // Step: the canonical `var += 1`, and the only write to `var`.
    let Op::FoldSlot {
        op: AluOp::Add,
        slot: step_var,
        src: Operand::Imm(1),
        ..
    } = ops[back - 1]
    else {
        return None;
    };
    if step_var != var {
        return None;
    }
    let window = &ops[top..=back];
    if window
        .iter()
        .enumerate()
        .any(|(k, w)| top + k != back - 1 && writes_slot(w, var))
    {
        return None;
    }
    let Op::Jump {
        target: bt,
        charge: c_back,
    } = ops[back]
    else {
        return None;
    };
    debug_assert_eq!(bt as usize, top);
    // Walk backward over pure preheader ops to the fusion placeholder,
    // then require the immediate-init store right before it. That chain
    // proves `var == start` on every path reaching `top`.
    let mut j = top;
    loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match ops[j] {
            Op::Const { .. } | Op::Alu { .. } | Op::LoadSlot { charge: 0, .. } => {}
            Op::Nop => break,
            _ => return None,
        }
    }
    let Some(&Op::StoreSlot {
        slot: init_var,
        src: Operand::Imm(start),
        ..
    }) = j.checked_sub(1).map(|p| &ops[p])
    else {
        return None;
    };
    if init_var != var {
        return None;
    }
    // Trip count and size caps.
    let trip = bound.saturating_sub(start);
    let body_len = back - 1 - (top + 3);
    if trip > MAX_TRIP || body_len + 1 > MAX_BODY {
        return None;
    }
    // Body+step validation: straight-line or strictly-forward in-window
    // control flow, and no reads of the deleted prologue registers.
    let mut uses_prologue_reg = false;
    for (p, op) in ops.iter().enumerate().take(back).skip(top + 3) {
        super::for_each_reg_use(op, |r| {
            uses_prologue_reg |= r == r_var || r == r_cond;
        });
        match op {
            Op::Nop | Op::FusedLoop(_) | Op::Halt { .. } => return None,
            Op::Jump { target, .. }
            | Op::JumpIfZero { target, .. }
            | Op::JumpIfNonZero { target, .. } => {
                let t = *target as usize;
                if t <= p || t > back - 1 {
                    return None;
                }
            }
            _ => {}
        }
    }
    if uses_prologue_reg {
        return None;
    }
    // No jump from outside the window may land inside it.
    for (q, op) in ops.iter().enumerate() {
        if (top..=back).contains(&q) {
            continue;
        }
        let t = match op {
            Op::Jump { target, .. }
            | Op::JumpIfZero { target, .. }
            | Op::JumpIfNonZero { target, .. } => *target as usize,
            Op::FusedLoop(f) => f.exit as usize,
            _ => continue,
        };
        if (top..=back).contains(&t) {
            return None;
        }
    }
    let c_cond = c0.checked_add(c1)?;
    Some(Plan {
        top,
        back,
        trip,
        c_cond,
        c_back,
    })
}

/// Rebuilds the op vector with the window expanded in place.
fn apply(program: &mut CompiledProgram, plan: &Plan) {
    let &Plan {
        top,
        back,
        trip,
        c_cond,
        c_back,
    } = plan;
    let body = top + 3..back; // body + step ops
    let old = std::mem::take(&mut program.ops);
    let mut out = Vec::with_capacity(old.len() + trip as usize * (body.len() + 2));
    let mut map = vec![0u32; old.len() + 1];
    let mut repl = 0..0; // output range whose jump targets are already final
    for (i, op) in old.iter().enumerate() {
        map[i] = out.len() as u32;
        if i == top {
            let repl_start = out.len();
            for _ in 0..trip {
                out.push(Op::Bump { n: c_cond });
                let copy_start = out.len();
                for p in body.clone() {
                    let mut copied = old[p];
                    // In-window forward jumps shift with the copy.
                    if let Op::Jump { target, .. }
                    | Op::JumpIfZero { target, .. }
                    | Op::JumpIfNonZero { target, .. } = &mut copied
                    {
                        *target = (copy_start + (*target as usize - body.start)) as u32;
                    }
                    out.push(copied);
                }
                out.push(Op::Bump { n: c_back });
            }
            // The final, failing condition evaluation.
            out.push(Op::Bump { n: c_cond });
            repl = repl_start..out.len();
        }
        if !(top..=back).contains(&i) {
            out.push(*op);
        }
    }
    map[old.len()] = out.len() as u32;
    // The copied iteration bodies already carry final targets; everything
    // else still holds old-coordinate targets and goes through the map.
    let (head, rest) = out.split_at_mut(repl.start);
    let (_, tail) = rest.split_at_mut(repl.end - repl.start);
    remap_targets(head, &map);
    remap_targets(tail, &map);
    program.ops = out;
}
