//! Loop-invariant code motion.
//!
//! Hoists pure register work (`Const`, `Alu` over invariant operands) and
//! register-slot loads (`LoadSlot` of a slot the loop never writes) out of
//! loop windows into a preheader between the loop's placeholder and its
//! condition prologue. The back edge keeps targeting the original loop
//! top, so the preheader runs exactly once per loop entry.
//!
//! Observability: hoisted ops are pure register work — no bus traffic, no
//! steps, no errors — so running them once instead of every iteration (or
//! even when the loop is zero-trip) is invisible. A hoisted `LoadSlot`
//! carries a step charge, which must keep accruing *inside* the loop: the
//! hoisted copy loads at charge 0 and a [`Op::Bump`] stays at the original
//! position. The `Bump` adds a budget check the register-slot load did not
//! have, which is always safe (see the module docs in [`crate::passes`]).
//!
//! Soundness of keeping the hoisted destination register: the emitter
//! resets its register counter at every statement boundary and never reads
//! a register across statements, so whenever a register has exactly one
//! definition inside the window, every in-window use of it refers to that
//! definition. (Hoisting preserves this: a def only leaves the window when
//! it is unique, so a stale same-register definition can never be left
//! behind in a preheader while a second one remains inside.) A cheap
//! use-before-def scan backs this argument as insurance.

use super::{
    find_loops, frozen_mask, reg_def, register_slots, remap_targets, writes_slot, NaturalLoop,
};
use crate::bytecode::{CompiledProgram, Op, Operand};
use std::collections::BTreeSet;

/// Runs LICM to fixpoint: one loop is transformed per round, and nested
/// invariants migrate outward across rounds (an op hoisted into an inner
/// preheader sits inside the outer window and can be hoisted again).
pub(crate) fn run(program: &mut CompiledProgram) {
    while hoist_one(program) {}
}

/// Finds the first loop with hoistable ops and applies the hoist.
/// Returns false when no loop has anything left to move.
fn hoist_one(program: &mut CompiledProgram) -> bool {
    let frozen = frozen_mask(&program.ops);
    let is_register = register_slots(program);
    for lp in find_loops(&program.ops) {
        if frozen[lp.top] {
            continue; // a fused loop's own (frozen) window
        }
        let hoist = hoistable(&program.ops, lp, &frozen, &is_register);
        if !hoist.is_empty() {
            apply(program, lp.top, &hoist);
            return true;
        }
    }
    false
}

/// Collects the hoistable ops of one loop window, in window order.
fn hoistable(
    ops: &[Op],
    lp: NaturalLoop,
    frozen: &[bool],
    is_register: &[bool],
) -> BTreeSet<usize> {
    let window = &ops[lp.top..=lp.back];
    // How many times each register is defined in the window.
    let mut defs = std::collections::HashMap::<u16, u32>::new();
    for op in window {
        if let Some(d) = reg_def(op) {
            *defs.entry(d).or_insert(0) += 1;
        }
    }
    let mut hoist = BTreeSet::new();
    let mut hoisted_regs = BTreeSet::<u16>::new();
    // An operand is invariant when it is an immediate, a register defined
    // by an already-hoisted op, or a register the window never writes
    // (its value at loop entry persists through every iteration).
    let invariant = |o: &Operand,
                     hoisted: &BTreeSet<u16>,
                     defs: &std::collections::HashMap<u16, u32>| match o {
        Operand::Imm(_) => true,
        Operand::Reg(r) => hoisted.contains(r) || !defs.contains_key(r),
    };
    for (k, op) in window.iter().enumerate() {
        let idx = lp.top + k;
        if frozen[idx] {
            continue;
        }
        let candidate = match op {
            Op::Const { dst, .. } => Some(*dst),
            Op::Alu { dst, lhs, rhs, .. }
                if invariant(lhs, &hoisted_regs, &defs) && invariant(rhs, &hoisted_regs, &defs) =>
            {
                Some(*dst)
            }
            Op::LoadSlot { dst, slot, .. }
                if is_register[*slot as usize] && !window.iter().any(|w| writes_slot(w, *slot)) =>
            {
                Some(*dst)
            }
            _ => None,
        };
        let Some(dst) = candidate else { continue };
        if defs.get(&dst) != Some(&1) {
            continue; // not the unique in-window definition
        }
        // Insurance: no in-window use of dst before the candidate (a use
        // that would refer to an older, already-hoisted definition).
        let mut used_before = false;
        for w in &window[..k] {
            super::for_each_reg_use(w, |r| used_before |= r == dst);
        }
        if used_before {
            continue;
        }
        hoist.insert(idx);
        hoisted_regs.insert(dst);
    }
    hoist
}

/// Rebuilds the op vector with the hoisted ops moved to a preheader
/// directly before `top`. The back edge still targets the original top op
/// (the index map for `top` is recorded after the preheader), so inbound
/// jumps skip the preheader and only loop entry executes it.
fn apply(program: &mut CompiledProgram, top: usize, hoist: &BTreeSet<usize>) {
    let old = std::mem::take(&mut program.ops);
    let mut out = Vec::with_capacity(old.len() + hoist.len());
    let mut map = vec![0u32; old.len() + 1];
    for (i, op) in old.iter().enumerate() {
        if i == top {
            for &h in hoist {
                out.push(match old[h] {
                    Op::LoadSlot { dst, slot, .. } => Op::LoadSlot {
                        dst,
                        slot,
                        charge: 0,
                    },
                    pure => pure,
                });
            }
        }
        map[i] = out.len() as u32;
        if hoist.contains(&i) {
            // The charge of a hoisted load keeps accruing (and now also
            // checking) at its original position; pure ops leave nothing.
            if let Op::LoadSlot { charge, .. } = *op {
                if charge > 0 {
                    out.push(Op::Bump { n: charge });
                }
            }
        } else {
            out.push(*op);
        }
    }
    map[old.len()] = out.len() as u32;
    remap_targets(&mut out, &map);
    program.ops = out;
}
