//! Dead-store elimination over register slots and virtual registers.
//!
//! A backward liveness fixpoint over the op-level CFG finds values that no
//! path can observe: registers never read again, and register-slot
//! variables never read again. Dead pure ops (`Const`, `Alu`, `DeclSlot`
//! of a non-global slot) are deleted outright; dead *charged* ops on
//! register slots (`StoreSlot`, `FoldSlot`, `LoadSlot`) become
//! [`Op::Bump`]s carrying their original charge, so the step accounting is
//! untouched (the `Bump` adds a budget check the register-slot op did not
//! have, which is always safe — see [`crate::passes`]).
//!
//! What is *never* touched: anything observable. Bus ops (`LoadIndex`,
//! `StoreIndex`, `Malloc`, memory-slot accesses), fallible ops (`DivRem`),
//! ops on global slots (their kind is dynamic: a `DeclSlot` may shadow
//! them, so a store could be a real DRAM write), control flow, and frozen
//! fused-loop windows. Error exits make slots and registers unobservable,
//! so liveness at `Halt` (and implicitly at every error edge) is empty.

use super::{for_each_reg_use, frozen_mask, jump_targets, reg_def, register_slots, remap_targets};
use crate::bytecode::{CompiledProgram, Op};

/// Runs dead-store elimination to fixpoint (each deletion can kill the
/// uses that kept other values alive).
pub(crate) fn run(program: &mut CompiledProgram) {
    while eliminate_round(program) {}
}

/// Per-op live-out sets, as flat bool matrices.
struct Liveness {
    /// `slots[i * num_slots + s]`: slot `s` live after op `i`.
    slots: Vec<bool>,
    num_slots: usize,
    /// `regs[i * num_regs + r]`: register `r` live after op `i`.
    regs: Vec<bool>,
    num_regs: usize,
}

impl Liveness {
    fn slot_live(&self, i: usize, s: u32) -> bool {
        self.slots[i * self.num_slots + s as usize]
    }

    fn reg_live(&self, i: usize, r: u16) -> bool {
        self.regs[i * self.num_regs + r as usize]
    }
}

/// Successor indices for the liveness walk. Error exits contribute no
/// liveness (nothing is observable after an error), so fallible ops only
/// pass through their fall-through edge.
fn successors(ops: &[Op], i: usize) -> [Option<usize>; 2] {
    match &ops[i] {
        Op::Jump { target, .. } => [Some(*target as usize), None],
        Op::JumpIfZero { target, .. } | Op::JumpIfNonZero { target, .. } => {
            [Some(i + 1), Some(*target as usize)]
        }
        Op::FusedLoop(f) => [Some(i + 1), Some(f.exit as usize)],
        Op::Halt { .. } => [None, None],
        _ => [Some(i + 1), None],
    }
}

/// Computes per-op live-out sets by iterating backward to fixpoint.
fn analyze(program: &CompiledProgram, is_register: &[bool]) -> Liveness {
    let ops = &program.ops;
    let num_slots = program.num_slots as usize;
    let num_regs = program.num_regs as usize;
    let n = ops.len();
    let mut live = Liveness {
        slots: vec![false; n * num_slots.max(1)],
        num_slots: num_slots.max(1),
        regs: vec![false; n * num_regs.max(1)],
        num_regs: num_regs.max(1),
    };
    // live-in sets, recomputed from live-out on every sweep.
    let mut in_slots = vec![false; n * live.num_slots];
    let mut in_regs = vec![false; n * live.num_regs];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let so = i * live.num_slots;
            let ro = i * live.num_regs;
            // live-out = union of successors' live-in.
            for succ in successors(ops, i).into_iter().flatten() {
                if succ >= n {
                    continue;
                }
                let sso = succ * live.num_slots;
                let sro = succ * live.num_regs;
                for s in 0..live.num_slots {
                    if in_slots[sso + s] && !live.slots[so + s] {
                        live.slots[so + s] = true;
                        changed = true;
                    }
                }
                for r in 0..live.num_regs {
                    if in_regs[sro + r] && !live.regs[ro + r] {
                        live.regs[ro + r] = true;
                        changed = true;
                    }
                }
            }
            // live-in = (live-out − defs) ∪ uses.
            let mut slots_in: Vec<bool> = live.slots[so..so + live.num_slots].to_vec();
            let mut regs_in: Vec<bool> = live.regs[ro..ro + live.num_regs].to_vec();
            if let Some((slot, kills)) = slot_def(&ops[i], is_register) {
                if kills {
                    slots_in[slot as usize] = false;
                }
            }
            if let Some(d) = reg_def(&ops[i]) {
                regs_in[d as usize] = false;
            }
            for s in slot_uses(&ops[i], is_register) {
                slots_in[s as usize] = true;
            }
            for_each_reg_use(&ops[i], |r| regs_in[r as usize] = true);
            for s in 0..live.num_slots {
                if slots_in[s] != in_slots[so + s] {
                    in_slots[so + s] = slots_in[s];
                    changed = true;
                }
            }
            for r in 0..live.num_regs {
                if regs_in[r] != in_regs[ro + r] {
                    in_regs[ro + r] = regs_in[r];
                    changed = true;
                }
            }
        }
    }
    live
}

/// The slot an op writes and whether the write *kills* the old value.
/// Only writes to statically-register slots kill: a store to a global
/// slot may be a DRAM write that leaves the slot value (the base address)
/// untouched, so globals are never killed (conservative).
fn slot_def(op: &Op, is_register: &[bool]) -> Option<(u32, bool)> {
    match op {
        Op::StoreSlot { slot, .. } | Op::DeclSlot { slot, .. } | Op::FoldSlot { slot, .. } => {
            Some((*slot, is_register[*slot as usize]))
        }
        // FusedLoop writes var/acc but also reads them: no kill.
        _ => None,
    }
}

/// The slots an op reads. A `StoreSlot` to a *global* slot reads its slot
/// too (the base address selects the bus write at run time), but a store
/// to a statically-register slot overwrites without reading — counting it
/// as a use would keep every preceding dead store alive.
fn slot_uses(op: &Op, is_register: &[bool]) -> Vec<u32> {
    match op {
        Op::StoreSlot { slot, .. } if is_register[*slot as usize] => Vec::new(),
        Op::LoadSlot { slot, .. } | Op::StoreSlot { slot, .. } | Op::FoldSlot { slot, .. } => {
            vec![*slot]
        }
        Op::LoadIndex { base, .. } | Op::StoreIndex { base, .. } => vec![*base],
        Op::FusedLoop(f) => {
            let mut v = vec![f.var];
            match f.body {
                crate::bytecode::FusedBody::StoreImm { base, .. } => v.push(base),
                crate::bytecode::FusedBody::Accumulate { base, acc, .. } => {
                    v.push(base);
                    v.push(acc);
                }
            }
            v
        }
        _ => Vec::new(),
    }
}

/// One elimination round: analyze, delete/neutralize every dead op found,
/// rebuild. Returns false when nothing was dead.
fn eliminate_round(program: &mut CompiledProgram) -> bool {
    let is_register = register_slots(program);
    let frozen = frozen_mask(&program.ops);
    let live = analyze(program, &is_register);
    let targets = jump_targets(&program.ops);
    #[derive(Clone, Copy, PartialEq)]
    enum Action {
        Keep,
        Delete,
        Neutralize(u32),
    }
    let mut actions = vec![Action::Keep; program.ops.len()];
    let mut any = false;
    for (i, op) in program.ops.iter().enumerate() {
        if frozen[i] {
            continue;
        }
        let action = match *op {
            // Dead pure register work.
            Op::Const { dst, .. } | Op::Alu { dst, .. } if !live.reg_live(i, dst) => Action::Delete,
            // A dead re-declaration of a non-global slot.
            Op::DeclSlot { slot, .. } if is_register[slot as usize] && !live.slot_live(i, slot) => {
                Action::Delete
            }
            // Dead register-slot accesses keep their charge as a Bump.
            Op::LoadSlot { dst, slot, charge }
                if is_register[slot as usize] && !live.reg_live(i, dst) =>
            {
                Action::Neutralize(charge)
            }
            Op::StoreSlot { slot, charge, .. } | Op::FoldSlot { slot, charge, .. }
                if is_register[slot as usize] && !live.slot_live(i, slot) =>
            {
                Action::Neutralize(charge)
            }
            _ => Action::Keep,
        };
        if action != Action::Keep {
            any = true;
        }
        actions[i] = action;
    }
    if !any {
        return false;
    }
    let old = std::mem::take(&mut program.ops);
    let mut out = Vec::with_capacity(old.len());
    let mut map = vec![0u32; old.len() + 1];
    for (i, op) in old.into_iter().enumerate() {
        map[i] = out.len() as u32;
        match actions[i] {
            Action::Keep => out.push(op),
            Action::Delete => {
                // A deleted op that is a jump target resolves to the next
                // kept op — every path skips the dead value identically.
                debug_assert!(
                    !targets[i]
                        || matches!(op, Op::Const { .. } | Op::Alu { .. } | Op::DeclSlot { .. })
                );
            }
            Action::Neutralize(charge) => {
                if charge > 0 {
                    out.push(Op::Bump { n: charge });
                } else if targets[i] {
                    // Keep a landing pad so the map stays trivially right
                    // (a charge-0 dead op that is also a join target).
                    out.push(Op::Nop);
                }
            }
        }
    }
    let last = map.len() - 1;
    map[last] = out.len() as u32;
    remap_targets(&mut out, &map);
    program.ops = out;
    true
}
