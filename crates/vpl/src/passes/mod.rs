//! The optimizing pass pipeline over flat bytecode.
//!
//! [`crate::bytecode::compile`] produces straightforward bytecode: one op
//! per resolved tree node plus the fused-loop peephole. A GA campaign
//! re-executes the same chromosome-shaped programs thousands of times, so
//! classic loop optimizations pay for themselves many times over. This
//! module adds four of them — loop-invariant code motion ([`licm`]),
//! strength reduction of induction-variable arithmetic ([`strength`]),
//! dead-store elimination ([`dse`]), and unrolling of short constant trip
//! counts ([`unroll`]) — each individually toggleable through
//! [`PassConfig`] and each differential-tested against the tree-walking
//! interpreter oracle.
//!
//! # The charge discipline under transformation
//!
//! Every pass must preserve the full observable contract of a run: the
//! `Result` (same [`crate::ExecStats`] totals or the same error value at
//! the same crossing point), the bus memory image, and the recorded trace.
//! The bytecode's charge discipline (see [`crate::bytecode`]) makes this
//! tractable because the step accounting is *static*: charges ride on ops,
//! so a transformation is sound as long as every execution path pays the
//! same charges in the same order relative to side effects. Two facts do
//! the heavy lifting:
//!
//! * **Adding a budget check is always safe.** A check raises
//!   `ExecutionLimit { steps: max_steps }` — a constant error value — and
//!   fires exactly when the accumulated steps first exceed the budget.
//!   Ops between one check and the next are never side-effecting (every
//!   op that can touch the bus or fail checks first), so an earlier check
//!   only skips unobservable register work. This licenses replacing a
//!   non-checking charge carrier (a `LoadSlot` of a register slot) with a
//!   checking [`crate::bytecode::Op::Bump`].
//! * **Removing a check is safe when nothing observable can happen before
//!   the next check.** This licenses coalescing adjacent `Bump`s and
//!   folding a `Bump` into a following jump.
//!
//! Ops inside a fused-loop window (the unfused fallback body behind an
//! [`crate::bytecode::Op::FusedLoop`]) are *frozen*: the superinstruction
//! replays their charges and falls back to them when its guards fail, so
//! no pass may rewrite them. The fused bulk fast paths — the campaign's
//! hot loops — are therefore preserved verbatim.

use crate::ast::Program;
use crate::bytecode::{self, CompiledProgram, Op};
use crate::error::VplError;

pub mod disasm;
mod dse;
mod licm;
mod strength;
mod unroll;

pub use disasm::disassemble;

/// Which optimization passes to run, each independently toggleable.
///
/// The default is [`PassConfig::all`]; [`PassConfig::none`] reproduces the
/// plain [`crate::compile`] output bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Loop-invariant code motion.
    pub licm: bool,
    /// Strength reduction of induction-variable arithmetic.
    pub strength: bool,
    /// Dead-store elimination over register slots.
    pub dse: bool,
    /// Unrolling of short constant trip counts.
    pub unroll: bool,
}

impl PassConfig {
    /// Every pass disabled: identical output to [`crate::compile`].
    pub const fn none() -> Self {
        PassConfig {
            licm: false,
            strength: false,
            dse: false,
            unroll: false,
        }
    }

    /// Every pass enabled (the default).
    pub const fn all() -> Self {
        PassConfig {
            licm: true,
            strength: true,
            dse: true,
            unroll: true,
        }
    }

    /// True when at least one pass is enabled.
    pub const fn any(&self) -> bool {
        self.licm || self.strength || self.dse || self.unroll
    }

    /// The passes that are enabled, in pipeline order, as short names.
    pub fn enabled(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.licm {
            v.push("licm");
        }
        if self.strength {
            v.push("strength");
        }
        if self.unroll {
            v.push("unroll");
        }
        if self.dse {
            v.push("dse");
        }
        v
    }
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig::all()
    }
}

/// Coarse optimization level selection for callers that don't need
/// per-pass control (the GA evaluator's knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No optimization: plain [`crate::compile`] output.
    None,
    /// The full pipeline (the default).
    #[default]
    Full,
}

impl OptLevel {
    /// The pass selection this level stands for.
    pub const fn config(self) -> PassConfig {
        match self {
            OptLevel::None => PassConfig::none(),
            OptLevel::Full => PassConfig::all(),
        }
    }
}

/// Compiles a fully-instantiated program and runs the selected passes.
///
/// With [`PassConfig::none`] this is exactly [`crate::compile`]; any other
/// selection produces a program with identical observable behaviour
/// (stats, trace, error values, every `ExecutionLimit` crossing) that the
/// differential suites pin against the interpreter oracle.
///
/// # Errors
///
/// The same compile-time errors as [`crate::compile`]; passes themselves
/// are infallible (they decline rather than fail).
pub fn compile_opt(program: &Program, config: &PassConfig) -> Result<CompiledProgram, VplError> {
    let mut compiled = bytecode::compile(program)?;
    optimize(&mut compiled, config);
    Ok(compiled)
}

/// Runs the selected passes, in pipeline order, on compiled bytecode.
pub fn optimize(program: &mut CompiledProgram, config: &PassConfig) {
    if config.licm {
        licm::run(program);
    }
    if config.strength {
        strength::run(program);
    }
    if config.unroll {
        unroll::run(program);
    }
    if config.dse {
        dse::run(program);
    }
    if config.any() {
        coalesce(program);
    }
}

/// A pass-pipeline stage name paired with the disassembled bytecode
/// listing as it stood after that stage ran.
pub type StageListing = (&'static str, String);

/// Compiles with per-stage bytecode dumps for `dstress disasm`: the
/// baseline listing plus one listing after each enabled pass (and the
/// final charge-coalescing cleanup), in pipeline order.
///
/// # Errors
///
/// The same compile-time errors as [`crate::compile`].
pub fn compile_staged(
    program: &Program,
    config: &PassConfig,
) -> Result<(CompiledProgram, Vec<StageListing>), VplError> {
    let mut compiled = bytecode::compile(program)?;
    let mut stages = vec![("baseline", disassemble(&compiled))];
    if config.licm {
        licm::run(&mut compiled);
        stages.push(("licm", disassemble(&compiled)));
    }
    if config.strength {
        strength::run(&mut compiled);
        stages.push(("strength", disassemble(&compiled)));
    }
    if config.unroll {
        unroll::run(&mut compiled);
        stages.push(("unroll", disassemble(&compiled)));
    }
    if config.dse {
        dse::run(&mut compiled);
        stages.push(("dse", disassemble(&compiled)));
    }
    if config.any() {
        coalesce(&mut compiled);
        stages.push(("coalesce", disassemble(&compiled)));
    }
    Ok((compiled, stages))
}

// ---- shared pass infrastructure --------------------------------------

/// A natural loop found by its back edge: `ops[back]` is a `Jump` whose
/// target `top` is at or before it. The window `[top, back]` is the loop
/// body including the condition prologue and the back edge.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NaturalLoop {
    pub(crate) top: usize,
    pub(crate) back: usize,
}

/// Finds every natural loop, in program order of their back edges.
/// Backward jumps only arise from `for` loops (short-circuit lowering
/// emits forward jumps), so this is exact.
pub(crate) fn find_loops(ops: &[Op]) -> Vec<NaturalLoop> {
    ops.iter()
        .enumerate()
        .filter_map(|(i, op)| match op {
            Op::Jump { target, .. } if (*target as usize) <= i => Some(NaturalLoop {
                top: *target as usize,
                back: i,
            }),
            _ => None,
        })
        .collect()
}

/// Marks every op covered by a fused-loop superinstruction: the
/// `FusedLoop` itself and its unfused fallback window `[i, exit)`. Frozen
/// ops must never be rewritten — the superinstruction replays their
/// charges and falls back to them at run time.
pub(crate) fn frozen_mask(ops: &[Op]) -> Vec<bool> {
    let mut mask = vec![false; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        if let Op::FusedLoop(f) = op {
            for m in mask
                .iter_mut()
                .take((f.exit as usize).min(ops.len()))
                .skip(i)
            {
                *m = true;
            }
        }
    }
    mask
}

/// True per slot when the slot can never hold [`crate::resolve::Slot::Memory`]:
/// only the globals prologue creates memory slots, and every later write
/// (`DeclSlot`, `StoreSlot`, `FoldSlot`) preserves the register kind, so a
/// slot outside the globals list is a register on every path. Ops on such
/// slots never touch the bus and never budget-check.
pub(crate) fn register_slots(program: &CompiledProgram) -> Vec<bool> {
    let mut reg = vec![true; program.num_slots as usize];
    for (slot, _) in &program.globals {
        reg[*slot as usize] = false;
    }
    reg
}

/// The register an op writes, if any.
pub(crate) fn reg_def(op: &Op) -> Option<u16> {
    match op {
        Op::Const { dst, .. }
        | Op::Alu { dst, .. }
        | Op::DivRem { dst, .. }
        | Op::LoadSlot { dst, .. }
        | Op::LoadIndex { dst, .. }
        | Op::Malloc { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// Calls `f` for every register an op reads.
pub(crate) fn for_each_reg_use(op: &Op, mut f: impl FnMut(u16)) {
    use crate::bytecode::Operand;
    let mut operand = |o: &Operand| {
        if let Operand::Reg(r) = o {
            f(*r);
        }
    };
    match op {
        Op::Alu { lhs, rhs, .. } | Op::DivRem { lhs, rhs, .. } => {
            operand(lhs);
            operand(rhs);
        }
        Op::LoadIndex { index, .. } => operand(index),
        Op::StoreIndex { index, src, .. } => {
            operand(index);
            operand(src);
        }
        Op::StoreSlot { src, .. } | Op::FoldSlot { src, .. } => operand(src),
        Op::Malloc { bytes, .. } => operand(bytes),
        Op::DeclSlot { init, .. } => operand(init),
        Op::JumpIfZero { cond, .. } | Op::JumpIfNonZero { cond, .. } => operand(cond),
        Op::Const { .. }
        | Op::LoadSlot { .. }
        | Op::Bump { .. }
        | Op::Jump { .. }
        | Op::Nop
        | Op::FusedLoop(_)
        | Op::Halt { .. } => {}
    }
}

/// True when the op writes variable slot `slot` (conservatively including
/// a `FusedLoop` whose counter or accumulator is `slot`).
pub(crate) fn writes_slot(op: &Op, slot: u32) -> bool {
    match op {
        Op::StoreSlot { slot: s, .. }
        | Op::FoldSlot { slot: s, .. }
        | Op::DeclSlot { slot: s, .. } => *s == slot,
        Op::FusedLoop(f) => {
            f.var == slot
                || matches!(f.body, crate::bytecode::FusedBody::Accumulate { acc, .. } if acc == slot)
        }
        _ => false,
    }
}

/// Rewrites every jump target (including `FusedLoop::exit`) through an
/// old-index → new-index map built during a rebuild.
pub(crate) fn remap_targets(ops: &mut [Op], map: &[u32]) {
    for op in ops {
        match op {
            Op::Jump { target, .. }
            | Op::JumpIfZero { target, .. }
            | Op::JumpIfNonZero { target, .. } => *target = map[*target as usize],
            Op::FusedLoop(f) => f.exit = map[f.exit as usize],
            _ => {}
        }
    }
}

/// The set of jump-target indices (including `FusedLoop::exit`).
pub(crate) fn jump_targets(ops: &[Op]) -> Vec<bool> {
    let mut targets = vec![false; ops.len() + 1];
    for op in ops {
        match op {
            Op::Jump { target, .. }
            | Op::JumpIfZero { target, .. }
            | Op::JumpIfNonZero { target, .. } => targets[*target as usize] = true,
            Op::FusedLoop(f) => targets[f.exit as usize] = true,
            _ => {}
        }
    }
    targets
}

/// Charge-coalescing cleanup: merges a `Bump` into an immediately
/// following `Bump`, `Jump`, conditional jump, or `Halt` when the
/// follower is not a jump target (an inbound jump would otherwise skip
/// the merged charge). Dropping the intermediate check is safe — nothing
/// observable happens between two adjacent charge carriers — and the
/// merged check fires at the identical cumulative step count.
pub(crate) fn coalesce(program: &mut CompiledProgram) {
    loop {
        let frozen = frozen_mask(&program.ops);
        let targets = jump_targets(&program.ops);
        let mut merge_at = None;
        for i in 0..program.ops.len().saturating_sub(1) {
            if frozen[i] || frozen[i + 1] || targets[i + 1] {
                continue;
            }
            let Op::Bump { n } = program.ops[i] else {
                continue;
            };
            let follower_charge = match program.ops[i + 1] {
                Op::Bump { n: m } => m,
                Op::Jump { charge, .. }
                | Op::JumpIfZero { charge, .. }
                | Op::JumpIfNonZero { charge, .. }
                | Op::Halt { charge } => charge,
                _ => continue,
            };
            if n.checked_add(follower_charge).is_some() {
                merge_at = Some(i);
                break;
            }
        }
        let Some(i) = merge_at else { return };
        let Op::Bump { n } = program.ops[i] else {
            unreachable!("merge_at points at a Bump");
        };
        let old = std::mem::take(&mut program.ops);
        let mut out = Vec::with_capacity(old.len() - 1);
        let mut map = vec![0u32; old.len() + 1];
        for (idx, op) in old.into_iter().enumerate() {
            map[idx] = out.len() as u32;
            if idx == i {
                continue; // the Bump folds into its follower
            }
            if idx == i + 1 {
                let merged = match op {
                    Op::Bump { n: m } => Op::Bump { n: n + m },
                    Op::Jump { target, charge } => Op::Jump {
                        target,
                        charge: charge + n,
                    },
                    Op::JumpIfZero {
                        cond,
                        target,
                        charge,
                    } => Op::JumpIfZero {
                        cond,
                        target,
                        charge: charge + n,
                    },
                    Op::JumpIfNonZero {
                        cond,
                        target,
                        charge,
                    } => Op::JumpIfNonZero {
                        cond,
                        target,
                        charge: charge + n,
                    },
                    Op::Halt { charge } => Op::Halt { charge: charge + n },
                    other => unreachable!("non-mergeable follower {other:?}"),
                };
                out.push(merged);
                continue;
            }
            out.push(op);
        }
        let last = map.len() - 1;
        map[last] = out.len() as u32;
        remap_targets(&mut out, &map);
        program.ops = out;
    }
}

#[cfg(test)]
mod tests;
