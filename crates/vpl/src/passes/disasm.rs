//! A human-readable bytecode listing, for diagnosing pass bugs.
//!
//! The format is stable enough to diff across pipeline stages (see
//! [`super::compile_staged`]): one indexed line per op, slot indices
//! annotated with their source-level names, and an explicit header for
//! the program's shape (slot/register counts, global backing images).

use crate::bytecode::{CompiledProgram, FusedBody, Op, Operand};
use std::fmt::Write as _;

/// Renders `program` as an indexed assembly-style listing.
pub fn disassemble(program: &CompiledProgram) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "; slots={} regs={} ops={}",
        program.num_slots,
        program.num_regs,
        program.ops.len()
    );
    for (slot, image) in &program.globals {
        let _ = writeln!(
            s,
            "; global {} = {} word{}",
            slot_name(program, *slot),
            image.len(),
            if image.len() == 1 { "" } else { "s" }
        );
    }
    for (i, op) in program.ops.iter().enumerate() {
        let _ = writeln!(s, "{i:4}  {}", render(program, op));
    }
    s
}

fn slot_name(program: &CompiledProgram, slot: u32) -> String {
    match program.names.get(slot as usize) {
        Some(name) => format!("${slot}<{name}>"),
        None => format!("${slot}"),
    }
}

fn operand(o: &Operand) -> String {
    match o {
        Operand::Imm(v) => format!("#{v}"),
        Operand::Reg(r) => format!("r{r}"),
    }
}

fn render(program: &CompiledProgram, op: &Op) -> String {
    match op {
        Op::Const { dst, value } => format!("const     r{dst} = #{value}"),
        Op::Alu { op, dst, lhs, rhs } => format!(
            "alu.{:<5} r{dst} = {}, {}",
            format!("{op:?}").to_lowercase(),
            operand(lhs),
            operand(rhs)
        ),
        Op::DivRem {
            rem,
            dst,
            lhs,
            rhs,
            charge,
        } => format!(
            "divrem    r{dst}, r{rem} = {}, {}  !{charge}",
            operand(lhs),
            operand(rhs)
        ),
        Op::LoadSlot { dst, slot, charge } => {
            format!(
                "load      r{dst} = {}  !{charge}",
                slot_name(program, *slot)
            )
        }
        Op::StoreSlot { slot, src, charge } => {
            format!(
                "store     {} = {}  !{charge}",
                slot_name(program, *slot),
                operand(src)
            )
        }
        Op::FoldSlot {
            op,
            slot,
            src,
            charge,
        } => format!(
            "fold.{:<4} {} <- {}  !{charge}",
            format!("{op:?}").to_lowercase(),
            slot_name(program, *slot),
            operand(src)
        ),
        Op::LoadIndex {
            dst,
            base,
            index,
            charge,
        } => format!(
            "loadx     r{dst} = {}[{}]  !{charge}",
            slot_name(program, *base),
            operand(index)
        ),
        Op::StoreIndex {
            base,
            index,
            src,
            charge,
        } => format!(
            "storex    {}[{}] = {}  !{charge}",
            slot_name(program, *base),
            operand(index),
            operand(src)
        ),
        Op::Malloc { dst, bytes, charge } => {
            format!("malloc    r{dst} = {} bytes  !{charge}", operand(bytes))
        }
        Op::DeclSlot { slot, init } => {
            format!(
                "decl      {} = {}",
                slot_name(program, *slot),
                operand(init)
            )
        }
        Op::Bump { n } => format!("bump      !{n}"),
        Op::Jump { target, charge } => format!("jump      @{target}  !{charge}"),
        Op::JumpIfZero {
            cond,
            target,
            charge,
        } => format!("jz        {} -> @{target}  !{charge}", operand(cond)),
        Op::JumpIfNonZero {
            cond,
            target,
            charge,
        } => format!("jnz       {} -> @{target}  !{charge}", operand(cond)),
        Op::Nop => "nop".to_string(),
        Op::FusedLoop(f) => {
            let body = match &f.body {
                FusedBody::StoreImm { base, value } => {
                    format!(
                        "{}[{}] = #{value}",
                        slot_name(program, *base),
                        slot_name(program, f.var)
                    )
                }
                FusedBody::Accumulate { op, base, acc } => format!(
                    "{} {:?}= {}[{}]",
                    slot_name(program, *acc),
                    op,
                    slot_name(program, *base),
                    slot_name(program, f.var)
                ),
            };
            format!(
                "fused     for {} < #{}: {body}  !c={},a={},b={} exit @{}",
                slot_name(program, f.var),
                f.bound,
                f.c_cond,
                f.c_access,
                f.c_back,
                f.exit
            )
        }
        Op::Halt { charge } => format!("halt      !{charge}"),
    }
}
