//! Differential tests for the pass pipeline: every crafted shape is run
//! under every single-pass configuration (and all-on / all-off) against
//! the interpreter oracle, including a full budget sweep so every
//! `ExecutionLimit` crossing point is pinned.

use super::*;
use crate::bytecode::AluOp;
use crate::interp::{ExecLimits, Interpreter};
use crate::parser::parse_program;
use crate::vm::Vm;
use dstress_platform::session::{MemoryBus, SessionError, VirtAddr};
use std::collections::HashMap;

/// Same flat in-memory bus as the vm unit tests.
#[derive(Debug, Default, PartialEq)]
struct MockBus {
    memory: HashMap<u64, u64>,
    cursor: u64,
    reads: u64,
    writes: u64,
}

impl MemoryBus for MockBus {
    fn alloc(&mut self, bytes: u64) -> Result<VirtAddr, SessionError> {
        if bytes == 0 {
            return Err(SessionError::ZeroAllocation);
        }
        let base = self.cursor + 0x1000;
        self.cursor = base + bytes.div_ceil(8) * 8;
        Ok(base)
    }

    fn read_u64(&mut self, addr: VirtAddr) -> Result<u64, SessionError> {
        if !addr.is_multiple_of(8) {
            return Err(SessionError::Unaligned(addr));
        }
        self.reads += 1;
        Ok(self.memory.get(&addr).copied().unwrap_or(0))
    }

    fn write_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), SessionError> {
        if !addr.is_multiple_of(8) {
            return Err(SessionError::Unaligned(addr));
        }
        self.writes += 1;
        self.memory.insert(addr, value);
        Ok(())
    }
}

/// Every configuration the suite sweeps: off, each pass alone, all on.
fn configs() -> [PassConfig; 6] {
    [
        PassConfig::none(),
        PassConfig {
            licm: true,
            ..PassConfig::none()
        },
        PassConfig {
            strength: true,
            ..PassConfig::none()
        },
        PassConfig {
            dse: true,
            ..PassConfig::none()
        },
        PassConfig {
            unroll: true,
            ..PassConfig::none()
        },
        PassConfig::all(),
    ]
}

/// Asserts interpreter/VM parity for one program under one limit, across
/// every pass configuration: the `Result` (stats or error value), the bus
/// memory image, and the bus access counters must all match.
fn assert_config_parity(global: &str, local: &str, body: &str, limits: ExecLimits) {
    let program = parse_program(global, local, body).expect("parses");
    let mut ibus = MockBus::default();
    let iresult = Interpreter::new(limits).run(&program, &mut ibus);
    for config in configs() {
        let mut vbus = MockBus::default();
        let vresult =
            compile_opt(&program, &config).and_then(|c| Vm::new(limits).run(&c, &mut vbus));
        assert_eq!(
            iresult, vresult,
            "result mismatch under {config:?} (max_steps {}) for body: {body}",
            limits.max_steps
        );
        assert_eq!(
            ibus, vbus,
            "bus mismatch under {config:?} (max_steps {}) for body: {body}",
            limits.max_steps
        );
    }
}

/// Parity at the default budget plus a full sweep over tight budgets, so
/// every `ExecutionLimit` crossing point is exercised per configuration.
fn sweep(global: &str, local: &str, body: &str, max: u64) {
    assert_config_parity(global, local, body, ExecLimits::default());
    for max_steps in 0..max {
        assert_config_parity(global, local, body, ExecLimits { max_steps });
    }
}

#[test]
fn licm_shape_invariant_arithmetic() {
    sweep(
        "volatile unsigned long long v[] = { 0, 0, 0, 0, 0, 0 };",
        "int i = 0; unsigned long long a = 7;",
        "for (i = 0; i < 6; i += 1) { v[i] = a * 3 + 9; }",
        220,
    );
}

#[test]
fn strength_shape_induction_multiply() {
    sweep(
        "volatile unsigned long long v[] = { 0, 0, 0, 0, 0, 0, 0, 0 };",
        "int i = 0;",
        "for (i = 0; i < 8; i += 1) { v[i] = i * 24; }",
        260,
    );
}

#[test]
fn strength_shape_power_of_two_and_identities() {
    sweep(
        "volatile unsigned long long v[] = { 0, 0, 0, 0 };",
        "int i = 0; unsigned long long x = 5;",
        "for (i = 0; i < 4; i += 1) { v[i] = i * 8 + x * 1 + 0; } v[0] = x & 0;",
        200,
    );
}

#[test]
fn dse_shape_overwritten_and_unused_locals() {
    sweep(
        "volatile unsigned long long v[] = { 3, 1, 4, 1, 5 };",
        "int i = 0; unsigned long long t = 0; unsigned long long dead = 0;",
        "for (i = 0; i < 5; i += 1) { t = v[i]; dead = t + 1; } v[0] = t;",
        260,
    );
}

#[test]
fn unroll_shape_short_constant_trips() {
    sweep(
        "volatile unsigned long long v[] = { 0, 0, 0, 0 };",
        "int i = 0;",
        "for (i = 0; i < 3; i += 1) { v[i] = i + 40; }",
        160,
    );
}

#[test]
fn unroll_shape_zero_trip_and_nonzero_start() {
    sweep(
        "volatile unsigned long long v[] = { 0, 0, 0, 0 };",
        "int i = 0;",
        "for (i = 5; i < 3; i += 1) { v[i] = 1; } \
         for (i = 2; i < 4; i += 1) { v[i] = i; }",
        160,
    );
}

#[test]
fn unroll_shape_branch_in_body() {
    sweep(
        "volatile unsigned long long v[] = { 0, 0, 0 };",
        "int i = 0;",
        "for (i = 0; i < 3; i += 1) { if (i == 1) { v[i] = 10; } else { v[i] = 20; } }",
        200,
    );
}

#[test]
fn nested_loops_with_aliasing_stores() {
    sweep(
        "volatile unsigned long long v[] = { 0, 0, 0, 0, 0 };",
        "int i = 0; int j = 0;",
        "for (i = 0; i < 3; i += 1) { \
           for (j = 0; j < 2; j += 1) { v[i + j] += i * 2 + 1; } \
           v[0] = v[i]; \
         }",
        400,
    );
}

#[test]
fn loop_carried_dependence_accumulator() {
    sweep(
        "volatile unsigned long long v[] = { 1, 2, 3, 4, 5, 6 };",
        "int i = 0; unsigned long long acc = 0;",
        "for (i = 0; i < 6; i += 1) { acc += v[i] + i * 4; } v[0] = acc;",
        300,
    );
}

#[test]
fn fused_fill_loop_stays_exact_through_passes() {
    // The fill shape fuses into a superinstruction whose fallback window is
    // frozen; the passes must leave both the fast path and the fallback
    // charges byte-exact.
    sweep(
        "volatile unsigned long long v[] = { 0, 0, 0, 0, 0, 0, 0, 0 };",
        "int i = 0; unsigned long long s = 0;",
        "for (i = 0; i < 8; i += 1) { v[i] = 12297829382473034410; } \
         for (i = 0; i < 8; i += 1) { s += v[i]; } \
         v[0] = s;",
        320,
    );
}

#[test]
fn out_of_bounds_error_is_identical_through_passes() {
    sweep(
        "volatile unsigned long long v[] = { 0, 0 };",
        "int i = 0;",
        "for (i = 0; i < 4; i += 1) { v[i] = i * 2; }",
        120,
    );
}

// ---- transformation-effectiveness pins --------------------------------

fn compiled(global: &str, local: &str, body: &str, config: &PassConfig) -> CompiledProgram {
    let program = parse_program(global, local, body).expect("parses");
    compile_opt(&program, config).expect("compiles")
}

#[test]
fn licm_actually_hoists_invariant_work() {
    let c = compiled(
        "volatile unsigned long long v[] = { 0, 0, 0, 0 };",
        "int i = 0; unsigned long long a = 7;",
        "for (i = 0; i < 4; i += 1) { v[i] = a * 3 + 9; }",
        &PassConfig {
            licm: true,
            ..PassConfig::none()
        },
    );
    for lp in find_loops(&c.ops) {
        let muls = c.ops[lp.top..=lp.back]
            .iter()
            .filter(|op| matches!(op, Op::Alu { op: AluOp::Mul, .. }))
            .count();
        assert_eq!(muls, 0, "invariant multiply left inside the loop window");
    }
}

#[test]
fn strength_actually_removes_induction_multiplies() {
    let c = compiled(
        "volatile unsigned long long v[] = { 0, 0, 0, 0, 0, 0, 0, 0 };",
        "int i = 0;",
        "for (i = 0; i < 8; i += 1) { v[i] = i * 24; }",
        &PassConfig {
            strength: true,
            ..PassConfig::none()
        },
    );
    for lp in find_loops(&c.ops) {
        let muls = c.ops[lp.top..=lp.back]
            .iter()
            .filter(|op| matches!(op, Op::Alu { op: AluOp::Mul, .. }))
            .count();
        assert_eq!(muls, 0, "induction multiply left inside the loop window");
    }
}

#[test]
fn dse_actually_drops_dead_register_stores() {
    let c = compiled(
        "volatile unsigned long long v[] = { 1, 2, 3, 4 };",
        "int i = 0; unsigned long long dead = 0;",
        "for (i = 0; i < 4; i += 1) { dead = v[i] + 1; } v[0] = 9;",
        &PassConfig {
            dse: true,
            ..PassConfig::none()
        },
    );
    let dead_slot = c
        .names
        .iter()
        .position(|n| n == "dead")
        .expect("slot named dead") as u32;
    let stores = c
        .ops
        .iter()
        .filter(|op| matches!(op, Op::StoreSlot { slot, .. } if *slot == dead_slot))
        .count();
    assert_eq!(stores, 0, "dead store survived DSE");
}

#[test]
fn unroll_actually_removes_short_back_edges() {
    let c = compiled(
        "volatile unsigned long long v[] = { 0, 0, 0 };",
        "int i = 0;",
        "for (i = 0; i < 3; i += 1) { v[i] = i + 1; }",
        &PassConfig {
            unroll: true,
            ..PassConfig::none()
        },
    );
    assert!(
        find_loops(&c.ops).is_empty(),
        "short constant-trip loop kept its back edge"
    );
}

#[test]
fn none_config_is_bit_identical_to_plain_compile() {
    let program = parse_program(
        "volatile unsigned long long v[] = { 0, 0, 0, 0 };",
        "int i = 0; unsigned long long a = 7;",
        "for (i = 0; i < 4; i += 1) { v[i] = a * 3; }",
    )
    .expect("parses");
    let plain = crate::bytecode::compile(&program).expect("compiles");
    let opt = compile_opt(&program, &PassConfig::none()).expect("compiles");
    assert_eq!(format!("{:?}", plain.ops), format!("{:?}", opt.ops));
}

#[test]
fn compile_staged_reports_stages_in_pipeline_order() {
    let program = parse_program(
        "volatile unsigned long long v[] = { 0, 0, 0, 0 };",
        "int i = 0;",
        "for (i = 0; i < 4; i += 1) { v[i] = i * 2; }",
    )
    .expect("parses");
    let (_, stages) = compile_staged(&program, &PassConfig::all()).expect("compiles");
    let names: Vec<&str> = stages.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        names,
        ["baseline", "licm", "strength", "unroll", "dse", "coalesce"]
    );
    for (name, listing) in &stages {
        assert!(
            listing.contains("; slots="),
            "stage {name} listing lost its header"
        );
    }
}

#[test]
fn disassembly_names_slots_and_indexes_ops() {
    let program = parse_program(
        "volatile unsigned long long buf[] = { 1, 2 };",
        "int i = 0;",
        "for (i = 0; i < 2; i += 1) { buf[i] += 1; }",
    )
    .expect("parses");
    let c = crate::bytecode::compile(&program).expect("compiles");
    let text = disassemble(&c);
    assert!(text.contains("<buf>"), "global name missing:\n{text}");
    assert!(text.contains("<i>"), "local name missing:\n{text}");
    assert!(text.starts_with("; slots="), "header missing:\n{text}");
}
