//! Strength reduction.
//!
//! Two layers, both pure register rewrites with zero effect on charges,
//! bus traffic, or error behaviour:
//!
//! 1. **Induction-variable accumulators.** Inside a loop whose counter
//!    `var` is a register slot written exactly once per iteration by the
//!    canonical back-edge `var += 1`, the address-arithmetic idiom
//!    `LoadSlot var; Mul ×k` recomputes `var * k` every iteration. The
//!    pass materializes `var * k` once in a preheader into a fresh
//!    loop-carried register and bumps it by `k` next to the back-edge
//!    increment; the multiply becomes a register copy. Distributivity of
//!    wrapping arithmetic (`(v+1)·k ≡ v·k + k mod 2⁶⁴`) keeps the value
//!    exact on every iteration.
//! 2. **Algebraic rewrites.** Multiplies by a power-of-two immediate
//!    become shifts, and identity operations (`x+0`, `x*1`, `x&~0`, …)
//!    become register copies — bit-identical for every operand under the
//!    VM's wrapping semantics.

use super::{find_loops, frozen_mask, register_slots, remap_targets, writes_slot};
use crate::bytecode::{AluOp, CompiledProgram, Op, Operand};

/// Runs strength reduction: induction accumulators to fixpoint, then the
/// algebraic peephole.
pub(crate) fn run(program: &mut CompiledProgram) {
    while reduce_one_induction_site(program) {}
    algebraic(program);
}

/// Finds one `LoadSlot var; Mul ×k` site inside a canonical counted loop
/// and rewrites it to a loop-carried accumulator. One site per round so
/// every round sees fresh indices.
fn reduce_one_induction_site(program: &mut CompiledProgram) -> bool {
    let frozen = frozen_mask(&program.ops);
    let is_register = register_slots(program);
    for lp in find_loops(&program.ops) {
        if frozen[lp.top] || lp.back < lp.top + 2 {
            continue;
        }
        // Canonical unit-step induction variable: the only write to `var`
        // in the window is the back-edge `var += 1`, directly before the
        // back-edge jump (so it runs exactly once per iteration).
        let Op::FoldSlot {
            op: AluOp::Add,
            slot: var,
            src: Operand::Imm(1),
            ..
        } = program.ops[lp.back - 1]
        else {
            continue;
        };
        if !is_register[var as usize] {
            continue;
        }
        let window = &program.ops[lp.top..=lp.back];
        if window
            .iter()
            .enumerate()
            .any(|(k, w)| lp.top + k != lp.back - 1 && writes_slot(w, var))
        {
            continue;
        }
        // A multiply of the freshly loaded counter by an immediate.
        for i in lp.top..lp.back - 1 {
            if frozen[i] || frozen[i + 1] {
                continue;
            }
            let Op::LoadSlot {
                dst: r_var,
                slot: s,
                ..
            } = program.ops[i]
            else {
                continue;
            };
            if s != var {
                continue;
            }
            let Op::Alu {
                op: AluOp::Mul,
                dst,
                lhs,
                rhs,
            } = program.ops[i + 1]
            else {
                continue;
            };
            let k = match (lhs, rhs) {
                (Operand::Reg(r), Operand::Imm(k)) | (Operand::Imm(k), Operand::Reg(r))
                    if r == r_var =>
                {
                    k
                }
                _ => continue,
            };
            if program.num_regs > u16::MAX - 2 {
                return false;
            }
            apply(program, lp.top, lp.back, i + 1, var, dst, k);
            return true;
        }
    }
    false
}

/// Rebuilds with the accumulator wired in: preheader computes
/// `acc = var * k`, the multiply site becomes a copy of `acc`, and the
/// increment `acc += k` rides directly after the back-edge `var += 1`.
fn apply(
    program: &mut CompiledProgram,
    top: usize,
    back: usize,
    site: usize,
    var: u32,
    dst: u16,
    k: u64,
) {
    let tmp = program.num_regs;
    let acc = program.num_regs + 1;
    program.num_regs += 2;
    let old = std::mem::take(&mut program.ops);
    let mut out = Vec::with_capacity(old.len() + 3);
    let mut map = vec![0u32; old.len() + 1];
    for (i, op) in old.iter().enumerate() {
        if i == top {
            // Preheader: pure register work (the counter is a register
            // slot, so the charge-0 load neither steps nor checks), run
            // once per loop entry — the back edge skips it via the map.
            out.push(Op::LoadSlot {
                dst: tmp,
                slot: var,
                charge: 0,
            });
            out.push(Op::Alu {
                op: AluOp::Mul,
                dst: acc,
                lhs: Operand::Reg(tmp),
                rhs: Operand::Imm(k),
            });
        }
        if i == back {
            // After `var += 1` (index back-1), before the back-edge jump:
            // no jump targets this position, so every completing
            // iteration maintains `acc == var * k`.
            out.push(Op::Alu {
                op: AluOp::Add,
                dst: acc,
                lhs: Operand::Reg(acc),
                rhs: Operand::Imm(k),
            });
        }
        map[i] = out.len() as u32;
        if i == site {
            out.push(Op::Alu {
                op: AluOp::BitOr,
                dst,
                lhs: Operand::Reg(acc),
                rhs: Operand::Imm(0),
            });
        } else {
            out.push(*op);
        }
    }
    map[old.len()] = out.len() as u32;
    remap_targets(&mut out, &map);
    program.ops = out;
}

/// The algebraic peephole: in-place, never inside frozen windows.
fn algebraic(program: &mut CompiledProgram) {
    let frozen = frozen_mask(&program.ops);
    for (i, op) in program.ops.iter_mut().enumerate() {
        if frozen[i] {
            continue;
        }
        let Op::Alu {
            op: alu,
            dst,
            lhs,
            rhs,
        } = *op
        else {
            continue;
        };
        let copy = |src: Operand| Op::Alu {
            op: AluOp::BitOr,
            dst,
            lhs: src,
            rhs: Operand::Imm(0),
        };
        let rewritten = match (alu, lhs, rhs) {
            (AluOp::Mul, x, Operand::Imm(k)) | (AluOp::Mul, Operand::Imm(k), x) => match k {
                0 => Some(Op::Const { dst, value: 0 }),
                1 => Some(copy(x)),
                _ if k.is_power_of_two() => Some(Op::Alu {
                    op: AluOp::Shl,
                    dst,
                    lhs: x,
                    rhs: Operand::Imm(k.trailing_zeros() as u64),
                }),
                _ => None,
            },
            (AluOp::Add, x, Operand::Imm(0)) | (AluOp::Add, Operand::Imm(0), x) => Some(copy(x)),
            (
                AluOp::Sub | AluOp::Shl | AluOp::Shr | AluOp::BitOr | AluOp::BitXor,
                x,
                Operand::Imm(0),
            ) => Some(copy(x)),
            (AluOp::BitAnd, _, Operand::Imm(0)) | (AluOp::BitAnd, Operand::Imm(0), _) => {
                Some(Op::Const { dst, value: 0 })
            }
            (AluOp::BitAnd, x, Operand::Imm(u64::MAX))
            | (AluOp::BitAnd, Operand::Imm(u64::MAX), x) => Some(copy(x)),
            _ => None,
        };
        if let Some(new) = rewritten {
            *op = new;
        }
    }
}
