//! The virus interpreter: executes an instantiated program against a
//! platform memory bus (the execution half of the paper's evaluation phase).
//!
//! Semantics:
//!
//! * all values are wrapping 64-bit unsigned integers;
//! * `->global_data` variables live in DRAM (allocated through the bus);
//!   every read/write of them is a real memory access;
//! * `->local_data` and body-declared variables are registers;
//! * pointers returned by `malloc` index 64-bit elements (`p[i]` touches
//!   byte `p + 8·i`);
//! * a step budget bounds execution, so a pathological candidate virus
//!   cannot wedge a search campaign.
//!
//! Internally the program is first resolved (see [`crate::resolve`]): every
//! variable name becomes a slot index, so the execution loop never hashes a
//! string.
//!
//! This tree-walker is the *reference oracle* for VPL semantics. The
//! production tier — [`crate::bytecode`] + [`crate::vm`] — must match it
//! bit-for-bit ([`ExecStats`] included); the `dstress-tests` differential
//! suite pins that equivalence.

use crate::ast::{AssignOp, BinOp, Program, UnOp};
use crate::error::VplError;
use crate::resolve::{resolve, RExpr, RLValue, RStmt, Slot};
use dstress_platform::session::MemoryBus;
use serde::{Deserialize, Serialize};

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecLimits {
    /// Maximum interpreter steps (roughly: statements + expression nodes).
    pub max_steps: u64,
}

impl ExecLimits {
    /// A budget of `max_steps` interpreter/VM steps. This is the
    /// deterministic watchdog the supervised evaluation runtime plumbs
    /// through: the same virus always trips (or clears) the same budget at
    /// the same step count, on every worker.
    pub fn with_max_steps(max_steps: u64) -> Self {
        ExecLimits { max_steps }
    }
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_steps: 50_000_000,
        }
    }
}

/// Counters describing one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecStats {
    /// Interpreter steps consumed.
    pub steps: u64,
    /// DRAM loads issued.
    pub reads: u64,
    /// DRAM stores issued.
    pub writes: u64,
    /// `malloc` calls.
    pub allocs: u64,
}

/// The interpreter.
///
/// # Examples
///
/// See [the crate-level example](crate) and the `dstress-vpl` integration
/// tests.
#[derive(Debug)]
pub struct Interpreter {
    limits: ExecLimits,
    stats: ExecStats,
    slots: Vec<Slot>,
    names: Vec<String>,
}

impl Interpreter {
    /// Creates an interpreter with the given limits.
    pub fn new(limits: ExecLimits) -> Self {
        Interpreter {
            limits,
            stats: ExecStats::default(),
            slots: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Executes a fully-instantiated program against a memory bus.
    ///
    /// # Errors
    ///
    /// Returns [`VplError::Runtime`] for dynamic errors (division by zero,
    /// out-of-bounds global index, leftover placeholder),
    /// [`VplError::ExecutionLimit`] when the step budget is exhausted, and
    /// [`VplError::Memory`] when the bus rejects an access.
    pub fn run(
        mut self,
        program: &Program,
        bus: &mut dyn MemoryBus,
    ) -> Result<ExecStats, VplError> {
        let resolved = resolve(program)?;
        // The names move out of the resolver — they are only read for
        // runtime diagnostics, never mutated, so no per-evaluation clone.
        self.names = resolved.names;
        self.slots = vec![Slot::Register(0); self.names.len()];

        // Materialize globals in DRAM. The bound pattern arrays (24 KB row
        // triples and larger) land here, so use the bus's batched fill.
        for (slot, values) in resolved.globals {
            let words = values.len() as u64;
            let base = bus.alloc(words * 8)?;
            self.stats.allocs += 1;
            bus.fill(base, &values)?;
            self.stats.writes += words;
            self.slots[slot as usize] = Slot::Memory { base, words };
        }
        for stmt in &resolved.locals {
            self.exec_stmt(stmt, bus)?;
        }
        for s in &resolved.body {
            self.exec_stmt(s, bus)?;
        }
        Ok(self.stats)
    }

    #[inline]
    fn step(&mut self) -> Result<(), VplError> {
        self.stats.steps += 1;
        if self.stats.steps > self.limits.max_steps {
            Err(VplError::ExecutionLimit {
                steps: self.limits.max_steps,
            })
        } else {
            Ok(())
        }
    }

    fn exec_stmt(&mut self, s: &RStmt, bus: &mut dyn MemoryBus) -> Result<(), VplError> {
        self.step()?;
        match s {
            RStmt::DeclInit { slot, init } => {
                let value = match init {
                    Some(e) => self.eval(e, bus)?,
                    None => 0,
                };
                self.slots[*slot as usize] = Slot::Register(value);
                Ok(())
            }
            RStmt::Expr(e) => self.eval(e, bus).map(|_| ()),
            RStmt::Assign { target, op, value } => {
                let rhs = self.eval(value, bus)?;
                let new = match op {
                    AssignOp::Set => rhs,
                    _ => {
                        let old = self.read_lvalue(target, bus)?;
                        match op {
                            AssignOp::Add => old.wrapping_add(rhs),
                            AssignOp::Sub => old.wrapping_sub(rhs),
                            AssignOp::Mul => old.wrapping_mul(rhs),
                            AssignOp::Div => {
                                if rhs == 0 {
                                    return Err(VplError::Runtime("division by zero".into()));
                                }
                                old / rhs
                            }
                            AssignOp::Set => unreachable!("handled above"),
                        }
                    }
                };
                self.write_lvalue(target, new, bus)
            }
            RStmt::IncDec { target, increment } => {
                let old = self.read_lvalue(target, bus)?;
                let new = if *increment {
                    old.wrapping_add(1)
                } else {
                    old.wrapping_sub(1)
                };
                self.write_lvalue(target, new, bus)
            }
            RStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.exec_stmt(init, bus)?;
                loop {
                    self.step()?;
                    if self.eval(cond, bus)? == 0 {
                        break;
                    }
                    for s in body {
                        self.exec_stmt(s, bus)?;
                    }
                    self.exec_stmt(step, bus)?;
                }
                Ok(())
            }
            RStmt::If { cond, then, els } => {
                let branch = if self.eval(cond, bus)? != 0 {
                    then
                } else {
                    els
                };
                for s in branch {
                    self.exec_stmt(s, bus)?;
                }
                Ok(())
            }
            RStmt::Block(stmts) => {
                for s in stmts {
                    self.exec_stmt(s, bus)?;
                }
                Ok(())
            }
        }
    }

    /// Resolves `base[index]` to a DRAM virtual address, bounds-checking
    /// named global arrays (raw pointers from `malloc` are unchecked, like
    /// the C they model — the bus still rejects unmapped addresses).
    fn element_addr(
        &mut self,
        base: u32,
        index: &RExpr,
        bus: &mut dyn MemoryBus,
    ) -> Result<u64, VplError> {
        let idx = self.eval(index, bus)?;
        match self.slots[base as usize] {
            Slot::Memory { base: addr, words } => {
                if idx >= words {
                    return Err(VplError::Runtime(format!(
                        "index {idx} out of bounds for `{}` ({words} words)",
                        self.names[base as usize]
                    )));
                }
                Ok(addr + idx * 8)
            }
            Slot::Register(pointer) => Ok(pointer.wrapping_add(idx.wrapping_mul(8))),
        }
    }

    fn read_lvalue(&mut self, lv: &RLValue, bus: &mut dyn MemoryBus) -> Result<u64, VplError> {
        match lv {
            RLValue::Slot(slot) => match self.slots[*slot as usize] {
                Slot::Register(v) => Ok(v),
                Slot::Memory { base, .. } => {
                    self.stats.reads += 1;
                    Ok(bus.read_u64(base)?)
                }
            },
            RLValue::Index { base, index } => {
                let addr = self.element_addr(*base, index, bus)?;
                self.stats.reads += 1;
                Ok(bus.read_u64(addr)?)
            }
        }
    }

    fn write_lvalue(
        &mut self,
        lv: &RLValue,
        value: u64,
        bus: &mut dyn MemoryBus,
    ) -> Result<(), VplError> {
        match lv {
            RLValue::Slot(slot) => match self.slots[*slot as usize] {
                Slot::Register(_) => {
                    self.slots[*slot as usize] = Slot::Register(value);
                    Ok(())
                }
                Slot::Memory { base, .. } => {
                    self.stats.writes += 1;
                    Ok(bus.write_u64(base, value)?)
                }
            },
            RLValue::Index { base, index } => {
                let addr = self.element_addr(*base, index, bus)?;
                self.stats.writes += 1;
                Ok(bus.write_u64(addr, value)?)
            }
        }
    }

    fn eval(&mut self, e: &RExpr, bus: &mut dyn MemoryBus) -> Result<u64, VplError> {
        self.step()?;
        match e {
            RExpr::Num(n) => Ok(*n),
            RExpr::Slot(slot) => match self.slots[*slot as usize] {
                Slot::Register(v) => Ok(v),
                // A bare global scalar reference reads its memory cell; a
                // bare global *array* reference decays to its base address.
                Slot::Memory { base, words } => {
                    if words == 1 {
                        self.stats.reads += 1;
                        Ok(bus.read_u64(base)?)
                    } else {
                        Ok(base)
                    }
                }
            },
            RExpr::Index { base, index } => {
                let addr = self.element_addr(*base, index, bus)?;
                self.stats.reads += 1;
                Ok(bus.read_u64(addr)?)
            }
            RExpr::Unary { op, operand } => {
                let v = self.eval(operand, bus)?;
                Ok(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as u64,
                })
            }
            RExpr::Binary { op, lhs, rhs } => {
                // Short-circuit logical operators.
                if matches!(op, BinOp::And) {
                    let l = self.eval(lhs, bus)?;
                    if l == 0 {
                        return Ok(0);
                    }
                    return Ok((self.eval(rhs, bus)? != 0) as u64);
                }
                if matches!(op, BinOp::Or) {
                    let l = self.eval(lhs, bus)?;
                    if l != 0 {
                        return Ok(1);
                    }
                    return Ok((self.eval(rhs, bus)? != 0) as u64);
                }
                let l = self.eval(lhs, bus)?;
                let r = self.eval(rhs, bus)?;
                Ok(match op {
                    BinOp::Add => l.wrapping_add(r),
                    BinOp::Sub => l.wrapping_sub(r),
                    BinOp::Mul => l.wrapping_mul(r),
                    BinOp::Div => {
                        if r == 0 {
                            return Err(VplError::Runtime("division by zero".into()));
                        }
                        l / r
                    }
                    BinOp::Rem => {
                        if r == 0 {
                            return Err(VplError::Runtime("remainder by zero".into()));
                        }
                        l % r
                    }
                    BinOp::Shl => l.wrapping_shl(r as u32),
                    BinOp::Shr => l.wrapping_shr(r as u32),
                    BinOp::BitAnd => l & r,
                    BinOp::BitOr => l | r,
                    BinOp::BitXor => l ^ r,
                    BinOp::Eq => (l == r) as u64,
                    BinOp::Ne => (l != r) as u64,
                    BinOp::Lt => (l < r) as u64,
                    BinOp::Gt => (l > r) as u64,
                    BinOp::Le => (l <= r) as u64,
                    BinOp::Ge => (l >= r) as u64,
                    BinOp::And | BinOp::Or => unreachable!("short-circuited above"),
                })
            }
            RExpr::Malloc(bytes_expr) => {
                let bytes = self.eval(bytes_expr, bus)?;
                if bytes == 0 {
                    return Err(VplError::Runtime("malloc(0) is not allowed".into()));
                }
                self.stats.allocs += 1;
                Ok(bus.alloc(bytes)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use dstress_platform::session::{SessionError, VirtAddr};
    use std::collections::HashMap;

    /// A flat in-memory bus for interpreter unit tests.
    #[derive(Debug, Default)]
    struct MockBus {
        memory: HashMap<u64, u64>,
        cursor: u64,
        reads: u64,
        writes: u64,
    }

    impl MemoryBus for MockBus {
        fn alloc(&mut self, bytes: u64) -> Result<VirtAddr, SessionError> {
            if bytes == 0 {
                return Err(SessionError::ZeroAllocation);
            }
            let base = self.cursor + 0x1000;
            self.cursor = base + bytes.div_ceil(8) * 8;
            Ok(base)
        }

        fn read_u64(&mut self, addr: VirtAddr) -> Result<u64, SessionError> {
            if !addr.is_multiple_of(8) {
                return Err(SessionError::Unaligned(addr));
            }
            self.reads += 1;
            Ok(self.memory.get(&addr).copied().unwrap_or(0))
        }

        fn write_u64(&mut self, addr: VirtAddr, value: u64) -> Result<(), SessionError> {
            if !addr.is_multiple_of(8) {
                return Err(SessionError::Unaligned(addr));
            }
            self.writes += 1;
            self.memory.insert(addr, value);
            Ok(())
        }
    }

    fn run(global: &str, local: &str, body: &str) -> (MockBus, ExecStats) {
        let program = parse_program(global, local, body).expect("parses");
        let mut bus = MockBus::default();
        let stats = Interpreter::new(ExecLimits::default())
            .run(&program, &mut bus)
            .expect("executes");
        (bus, stats)
    }

    #[test]
    fn globals_are_written_to_memory() {
        let (bus, stats) = run("volatile unsigned long long v[] = { 7, 8, 9 };", "", "");
        assert_eq!(stats.writes, 3);
        assert_eq!(stats.allocs, 1);
        let values: Vec<u64> = bus.memory.values().copied().collect();
        assert!(values.contains(&7) && values.contains(&8) && values.contains(&9));
    }

    #[test]
    fn fill_loop_writes_pattern() {
        let (bus, stats) = run(
            "volatile unsigned long long v[] = { 0, 0, 0, 0 };",
            "int i = 0;",
            "for (i = 0; i < 4; i += 1) { v[i] = 0x3333; }",
        );
        assert!(bus.memory.values().filter(|&&v| v == 0x3333).count() == 4);
        assert_eq!(stats.writes, 4 + 4, "4 init writes + 4 loop writes");
    }

    #[test]
    fn locals_are_registers_not_memory() {
        let (bus, _) = run("", "unsigned long long x = 42;", "x = x + 1;");
        assert_eq!(bus.writes, 0, "register traffic must not reach DRAM");
    }

    #[test]
    fn malloc_pointer_indexing_works() {
        let (bus, stats) = run(
            "",
            "int i = 0;",
            "unsigned long long p = malloc(64);\
             for (i = 0; i < 8; i += 1) { p[i] = i * 2; }\
             unsigned long long x = p[3];",
        );
        assert_eq!(stats.allocs, 1);
        assert_eq!(stats.writes, 8);
        assert!(bus.memory.values().any(|&v| v == 6));
    }

    #[test]
    fn arithmetic_semantics() {
        let (_, _) = run(
            "",
            "unsigned long long a = 0;",
            "a = (2 + 3) * 4; \
             if (a != 20) { a = 1 / 0; } \
             a = 1 << 63; \
             a = a + a; \
             if (a != 0) { a = 1 / 0; } \
             a = 0 - 1; \
             if (a != 18446744073709551615) { a = 1 / 0; }",
        );
        // Reaching here without a division-by-zero error proves wrapping +,
        // <<, and unsigned underflow semantics.
    }

    #[test]
    fn division_by_zero_is_a_runtime_error() {
        let program = parse_program("", "int a = 1;", "a = a / 0;").unwrap();
        let err = Interpreter::new(ExecLimits::default())
            .run(&program, &mut MockBus::default())
            .unwrap_err();
        assert!(matches!(err, VplError::Runtime(_)));
    }

    #[test]
    fn remainder_by_zero_is_a_runtime_error() {
        let program = parse_program("", "int a = 1;", "a = a % 0;").unwrap();
        assert!(Interpreter::new(ExecLimits::default())
            .run(&program, &mut MockBus::default())
            .is_err());
    }

    #[test]
    fn global_array_bounds_are_checked() {
        let program =
            parse_program("volatile unsigned long long v[] = { 1 };", "", "v[5] = 0;").unwrap();
        let err = Interpreter::new(ExecLimits::default())
            .run(&program, &mut MockBus::default())
            .unwrap_err();
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn infinite_loop_hits_step_budget() {
        let program = parse_program("", "int i = 0;", "for (;;) { i += 1; }").unwrap();
        let err = Interpreter::new(ExecLimits { max_steps: 10_000 })
            .run(&program, &mut MockBus::default())
            .unwrap_err();
        assert_eq!(err, VplError::ExecutionLimit { steps: 10_000 });
    }

    #[test]
    fn leftover_placeholder_is_a_runtime_error() {
        let program = parse_program("", "int i = 0;", "i = $$$_P_$$$;").unwrap();
        let err = Interpreter::new(ExecLimits::default())
            .run(&program, &mut MockBus::default())
            .unwrap_err();
        assert!(err.to_string().contains("survived instantiation"));
    }

    #[test]
    fn undeclared_variable_is_a_runtime_error() {
        let program = parse_program("", "", "ghost = 1;").unwrap();
        let err = Interpreter::new(ExecLimits::default())
            .run(&program, &mut MockBus::default())
            .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn unknown_function_is_a_runtime_error() {
        let program = parse_program("", "int a = 0;", "a = calloc(8);").unwrap();
        let err = Interpreter::new(ExecLimits::default())
            .run(&program, &mut MockBus::default())
            .unwrap_err();
        assert!(err.to_string().contains("calloc"));
    }

    #[test]
    fn short_circuit_avoids_rhs_evaluation() {
        // `0 && (1/0)` must not divide; `1 || (1/0)` must not divide.
        run("", "int a = 0;", "a = 0 && 1 / 0; a = 1 || 1 / 0;");
    }

    #[test]
    fn if_else_branches() {
        let (bus, _) = run(
            "volatile unsigned long long out[] = { 0 };",
            "int i = 7;",
            "if (i > 5) { out[0] = 1; } else { out[0] = 2; }",
        );
        assert!(bus.memory.values().any(|&v| v == 1));
    }

    #[test]
    fn global_scalar_reference_reads_memory() {
        let (bus, _) = run(
            "volatile unsigned long long g = 5;",
            "unsigned long long x = 0;",
            "x = g + g;",
        );
        // One init write + two reads of g.
        assert_eq!(bus.reads, 2);
    }

    #[test]
    fn array_reference_decays_to_base_address() {
        let (_, stats) = run(
            "volatile unsigned long long v[] = { 1, 2 };",
            "unsigned long long p = 0;",
            "p = v; p[1] = 9;",
        );
        // Writing through the decayed pointer works: 2 init + 1 store.
        assert_eq!(stats.writes, 3);
    }

    #[test]
    fn stride_expression_like_paper_eq1() {
        // index = a*x + b over a malloc'd row — the paper's Eq. 1 pattern.
        let (bus, _) = run(
            "",
            "int x = 0; unsigned long long a = 3; unsigned long long b = 2;",
            "unsigned long long row = malloc(512);\
             for (x = 0; x < 10; x += 1) { row[(a * x + b) % 64] = 1; }",
        );
        assert!(bus.memory.values().filter(|&&v| v == 1).count() <= 10);
        assert!(bus.writes >= 10);
    }

    #[test]
    fn constant_global_initializer_expressions() {
        let (bus, _) = run(
            "volatile unsigned long long v[] = { 2 + 3, 1 << 4, 100 / 5 };",
            "",
            "",
        );
        let values: Vec<u64> = bus.memory.values().copied().collect();
        assert!(values.contains(&5) && values.contains(&16) && values.contains(&20));
    }

    #[test]
    fn non_constant_global_initializer_is_an_error() {
        let program =
            parse_program("volatile unsigned long long v[] = { malloc(8) };", "", "").unwrap();
        let err = Interpreter::new(ExecLimits::default())
            .run(&program, &mut MockBus::default())
            .unwrap_err();
        assert!(err.to_string().contains("constant"));
    }
}
