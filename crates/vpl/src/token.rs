//! Tokens of the virus template language.

use serde::{Deserialize, Serialize};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// Identifier (variable or constant name).
    Ident(String),
    /// Unsigned 64-bit integer literal (decimal or `0x` hex).
    Number(u64),
    /// A `$$$_NAME_$$$` placeholder; carries `NAME`.
    Placeholder(String),
    /// A keyword.
    Keyword(Keyword),
    /// Punctuation or operator.
    Punct(Punct),
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Keyword {
    /// `volatile` — parsed and honoured trivially: all DRAM accesses are
    /// real in the interpreter.
    Volatile,
    /// `unsigned`
    Unsigned,
    /// `long`
    Long,
    /// `int`
    Int,
    /// `for`
    For,
    /// `if`
    If,
    /// `else`
    Else,
}

impl Keyword {
    /// Looks up a keyword by spelling.
    pub fn of_spelling(s: &str) -> Option<Keyword> {
        Some(match s {
            "volatile" => Keyword::Volatile,
            "unsigned" => Keyword::Unsigned,
            "long" => Keyword::Long,
            "int" => Keyword::Int,
            "for" => Keyword::For,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            _ => return None,
        })
    }
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Shl,
    Shr,
    Amp,
    Pipe,
    Caret,
    AmpAmp,
    PipePipe,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    Bang,
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Line number (1-based).
    pub line: u32,
    /// Column number (1-based).
    pub col: u32,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Number(n) => write!(f, "number `{n}`"),
            Token::Placeholder(p) => write!(f, "placeholder `$$$_{p}_$$$`"),
            Token::Keyword(k) => write!(f, "keyword `{k:?}`"),
            Token::Punct(p) => write!(f, "`{p:?}`"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(Keyword::of_spelling("for"), Some(Keyword::For));
        assert_eq!(Keyword::of_spelling("while"), None);
    }

    #[test]
    fn token_display_is_informative() {
        assert!(Token::Ident("x".into()).to_string().contains('x'));
        assert!(Token::Placeholder("P".into())
            .to_string()
            .contains("$$$_P_$$$"));
    }
}
