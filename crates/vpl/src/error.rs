//! Errors of the template language pipeline.

use dstress_platform::session::SessionError;

/// Any error raised while lexing, parsing, analysing, instantiating or
/// executing a virus template.
#[derive(Debug, Clone, PartialEq)]
pub enum VplError {
    /// Lexical error: unexpected character or malformed literal.
    Lex {
        /// Human-readable description.
        message: String,
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        col: u32,
    },
    /// Syntax error.
    Parse {
        /// Human-readable description.
        message: String,
        /// 1-based source line (0 when at end of input).
        line: u32,
    },
    /// Template structure error (bad section marker, malformed parameter
    /// declaration…).
    Template(String),
    /// Semantic error (undeclared identifier, placeholder misuse…).
    Sema(String),
    /// Instantiation error (missing/mistyped binding, value out of domain).
    Binding(String),
    /// Runtime error during interpretation.
    Runtime(String),
    /// The interpreter exceeded its step budget — the candidate virus does
    /// not terminate quickly enough to be evaluated.
    ExecutionLimit {
        /// The configured budget that was exhausted.
        steps: u64,
    },
    /// A memory operation failed in the platform session.
    Memory(SessionError),
}

impl VplError {
    /// Whether this is the step-budget watchdog firing
    /// ([`VplError::ExecutionLimit`]). Supervised evaluation uses this to
    /// classify the fault as a non-retryable budget blowout rather than a
    /// generic permanent error.
    pub fn is_execution_limit(&self) -> bool {
        matches!(self, VplError::ExecutionLimit { .. })
    }
}

impl std::fmt::Display for VplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VplError::Lex { message, line, col } => {
                write!(f, "lexical error at {line}:{col}: {message}")
            }
            VplError::Parse { message, line } => {
                write!(f, "syntax error at line {line}: {message}")
            }
            VplError::Template(m) => write!(f, "template error: {m}"),
            VplError::Sema(m) => write!(f, "semantic error: {m}"),
            VplError::Binding(m) => write!(f, "binding error: {m}"),
            VplError::Runtime(m) => write!(f, "runtime error: {m}"),
            VplError::ExecutionLimit { steps } => {
                write!(f, "execution exceeded the {steps}-step budget")
            }
            VplError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for VplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VplError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for VplError {
    fn from(e: SessionError) -> Self {
        VplError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<VplError> = vec![
            VplError::Lex {
                message: "bad char".into(),
                line: 1,
                col: 2,
            },
            VplError::Parse {
                message: "expected ;".into(),
                line: 3,
            },
            VplError::Template("no body".into()),
            VplError::Sema("undeclared x".into()),
            VplError::Binding("missing P".into()),
            VplError::Runtime("division by zero".into()),
            VplError::ExecutionLimit { steps: 10 },
            VplError::Memory(SessionError::ZeroAllocation),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn session_error_converts() {
        let e: VplError = SessionError::Unaligned(3).into();
        assert!(matches!(e, VplError::Memory(_)));
    }
}
