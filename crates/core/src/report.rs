//! Plain-text report rendering for the figure-regeneration binaries.

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use dstress::report::TextTable;
///
/// let mut t = TextTable::new(vec!["pattern", "CEs"]);
/// t.row(vec!["worst".into(), "812".into()]);
/// let s = t.render();
/// assert!(s.contains("pattern"));
/// assert!(s.contains("812"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        TextTable {
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        let all = std::iter::once(&self.header).chain(&self.rows);
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}  ", width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a signed percentage ("+45.0 %").
pub fn percent_delta(new: f64, old: f64) -> String {
    if old == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1} %", (new / old - 1.0) * 100.0)
}

/// Compact rendering of a bit-pattern's first `n` bits, bit 0 first, in
/// groups of four (the paper's `1100` reading).
pub fn pattern_prefix(words: &[u64], n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        if i > 0 && i % 4 == 0 {
            s.push(' ');
        }
        let bit = (words[i / 64] >> (i % 64)) & 1;
        s.push(if bit == 1 { '1' } else { '0' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn percent_delta_formats() {
        assert_eq!(percent_delta(145.0, 100.0), "+45.0 %");
        assert_eq!(percent_delta(84.0, 100.0), "-16.0 %");
        assert_eq!(percent_delta(1.0, 0.0), "n/a");
    }

    #[test]
    fn pattern_prefix_groups_by_four() {
        assert_eq!(
            pattern_prefix(&[0x3333_3333_3333_3333], 12),
            "1100 1100 1100"
        );
    }
}
