//! Synthetic application workloads (paper §II, Fig. 1b).
//!
//! Fig. 1b contrasts the single-bit errors manifested by *kmeans* and
//! *memcached* across the four DIMMs: up to 1000× between workloads on the
//! same DIMM and 633× between DIMMs under the same workload. The paper's
//! point is that error behaviour is workload-dependent — through the data
//! each program stores and the access pattern it drives. These two models
//! generate the same qualitative contrast:
//!
//! * [`Workload::Kmeans`] — numeric working set: arrays of IEEE-754 doubles
//!   in `[0, 1)` (sign/exponent bits largely constant at `0x3F…`),
//!   streamed sequentially, moderate footprint;
//! * [`Workload::Memcached`] — key-value store: ASCII keys and values
//!   (bytes `0x20–0x7E`), hash-scattered accesses, large footprint.

use dstress_platform::session::{MemoryBus, RecordedRun, SessionError};
use dstress_platform::XGene2Server;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A synthetic application workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Sequential numeric scans over double-precision data.
    Kmeans,
    /// Hash-scattered reads/writes over ASCII key-value data.
    Memcached,
}

impl Workload {
    /// Workload name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Kmeans => "kmeans",
            Workload::Memcached => "memcached",
        }
    }

    /// Fraction of each DIMM the workload's data occupies.
    fn footprint(&self) -> f64 {
        match self {
            Workload::Kmeans => 0.35,
            Workload::Memcached => 0.85,
        }
    }

    /// One "data word" of this workload.
    fn data_word(&self, rng: &mut StdRng) -> u64 {
        match self {
            Workload::Kmeans => {
                // A double in [1, 2): sign 0, exponent 0x3FF, random
                // mantissa — the top 12 bits are constant across the array.
                let mantissa: u64 = rng.gen::<u64>() & ((1 << 52) - 1);
                0x3FF0_0000_0000_0000 | mantissa
            }
            Workload::Memcached => {
                // Eight printable ASCII bytes.
                let mut w = 0u64;
                for i in 0..8 {
                    w |= (rng.gen_range(0x20u64..0x7F)) << (8 * i);
                }
                w
            }
        }
    }

    /// Populates one MCU's share of the workload through a session and
    /// issues a bounded access pass.
    ///
    /// # Errors
    ///
    /// Propagates session memory errors.
    fn drive(
        &self,
        session: &mut dyn MemoryBus,
        bytes: u64,
        seed: u64,
    ) -> Result<(), SessionError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = session.alloc(bytes)?;
        let words = bytes / 8;
        // Same values in the same order as a write_u64 loop, batched per row.
        let data: Vec<u64> = (0..words).map(|_| self.data_word(&mut rng)).collect();
        session.fill(base, &data)?;
        match self {
            Workload::Kmeans => {
                // Sequential distance-computation scans.
                for w in 0..words {
                    session.read_u64(base + w * 8)?;
                }
            }
            Workload::Memcached => {
                // Hash-scattered GET/SET mix (~10 % writes).
                for _ in 0..words {
                    let slot = rng.gen_range(0..words);
                    if rng.gen::<f64>() < 0.1 {
                        session.write_u64(base + slot * 8, self.data_word(&mut rng))?;
                    } else {
                        session.read_u64(base + slot * 8)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Deploys the workload across all four DIMMs of a server (the paper
    /// observes errors in every DIMM slot) and returns the merged recorded
    /// run.
    ///
    /// # Errors
    ///
    /// Propagates session memory errors.
    pub fn deploy(
        &self,
        server: &mut XGene2Server,
        seed: u64,
    ) -> Result<RecordedRun, SessionError> {
        server.reset_memory();
        let capacity = server.config().dimm.geometry.capacity_bytes();
        let row = server.row_bytes();
        let bytes = ((capacity as f64 * self.footprint()) as u64 / row).max(1) * row;
        let mut merged = RecordedRun::idle(2);
        for mcu in 0..dstress_platform::MCUS {
            let mut session = server.session(mcu);
            self.drive(&mut session, bytes, seed ^ (mcu as u64) << 8)?;
            let run = session.finish();
            merged.append_run(&run);
            merged.truncated |= run.truncated;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_platform::ServerConfig;

    fn server() -> XGene2Server {
        let mut config = ServerConfig::small();
        config.dimm.geometry.rows_per_bank = 16;
        config.dimm.geometry.row_bytes = 1024;
        XGene2Server::new(config)
    }

    #[test]
    fn kmeans_data_looks_like_doubles() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let w = Workload::Kmeans.data_word(&mut rng);
            assert_eq!(w >> 52, 0x3FF, "exponent field must be constant");
        }
    }

    #[test]
    fn memcached_data_is_printable_ascii() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let w = Workload::Memcached.data_word(&mut rng);
            for i in 0..8 {
                let b = (w >> (8 * i)) & 0xFF;
                assert!((0x20..0x7F).contains(&b), "byte {b:#x} not printable");
            }
        }
    }

    #[test]
    fn deploy_touches_all_mcus() {
        let mut sv = server();
        let run = Workload::Kmeans.deploy(&mut sv, 3).unwrap();
        let mcus: std::collections::HashSet<u8> = run.iter().map(|t| t.mcu).collect();
        assert_eq!(mcus.len(), 4);
        assert!(!run.is_empty());
    }

    #[test]
    fn memcached_has_larger_footprint_than_kmeans() {
        let mut sv = server();
        Workload::Kmeans.deploy(&mut sv, 3).unwrap();
        let kmeans_rows = sv.dimm(2).materialized_rows();
        Workload::Memcached.deploy(&mut sv, 3).unwrap();
        let memcached_rows = sv.dimm(2).materialized_rows();
        assert!(memcached_rows > kmeans_rows);
    }

    #[test]
    fn workloads_manifest_different_error_counts() {
        let mut sv = server();
        sv.relax_second_domain();
        sv.set_dimm_temperature(2, 60.0).unwrap();
        sv.set_dimm_temperature(3, 60.0).unwrap();
        let kmeans_run = Workload::Kmeans.deploy(&mut sv, 5).unwrap();
        let kmeans: u64 = sv
            .evaluate_runs(&kmeans_run, 3, 1)
            .unwrap()
            .iter()
            .map(|o| o.totals.ce)
            .sum();
        let memcached_run = Workload::Memcached.deploy(&mut sv, 5).unwrap();
        let memcached: u64 = sv
            .evaluate_runs(&memcached_run, 3, 2)
            .unwrap()
            .iter()
            .map(|o| o.totals.ce)
            .sum();
        assert_ne!(kmeans, memcached, "workloads must differ in error counts");
    }
}
