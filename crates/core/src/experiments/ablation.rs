//! Ablation study of the framework's design choices (DESIGN.md §6).
//!
//! Four knobs, each isolated on a controlled objective:
//!
//! 1. **selection scheme** — roulette vs tournament vs truncation on a
//!    noisy popcount (time-to-solution and solve rate);
//! 2. **crossover operator** — single-point vs two-point vs uniform on the
//!    same objective;
//! 3. **fitness averaging depth** — the paper's 10-run averaging vs single
//!    noisy evaluations, measured as the run-to-run spread of one fixed
//!    virus on the real evaluator (VRT is the noise source);
//! 4. **convergence threshold** — how the 0.85 similarity bar trades
//!    search length against result quality.

use crate::error::DStressError;
use crate::evaluate::Metric;
use crate::report::TextTable;
use crate::scale::ExperimentScale;
use crate::search::{DStress, EnvKind, WORST_WORD};
use dstress_ga::{BitGenome, CrossoverOp, FnFitness, GaConfig, GaEngine, Genome, SelectionScheme};
use dstress_stats::Moments;
use dstress_vpl::BoundValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One row of a GA-knob ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnobRow {
    /// The knob value ("tournament k=2", "uniform", "0.85"…).
    pub setting: String,
    /// Mean generations to reach the optimum (budget-capped).
    pub mean_generations: f64,
    /// Fraction of seeds reaching the optimum.
    pub solve_rate: f64,
}

/// The averaging-depth measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AveragingRow {
    /// Runs averaged per evaluation.
    pub runs: u32,
    /// Relative standard deviation of the fitness across repeat
    /// evaluations of one fixed virus.
    pub relative_std_dev: f64,
}

/// The full ablation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationReport {
    /// Selection-scheme comparison.
    pub selection: Vec<KnobRow>,
    /// Crossover-operator comparison.
    pub crossover: Vec<KnobRow>,
    /// Averaging-depth comparison (paper: 10 runs).
    pub averaging: Vec<AveragingRow>,
    /// Convergence-threshold comparison.
    pub threshold: Vec<KnobRow>,
}

/// Noisy popcount: the calibration objective plus VRT-like noise.
fn noisy_popcount_run(config: GaConfig, seed: u64) -> (bool, u32) {
    let mut engine = GaEngine::new(config, seed);
    let mut noise = StdRng::seed_from_u64(seed ^ 0xAB1A);
    let mut fitness =
        FnFitness::new(move |g: &BitGenome| g.count_ones() as f64 + noise.gen_range(0.0..3.0));
    let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
    // "Solved" = the true optimum appeared (noise-free criterion).
    let solved = result.leaderboard.iter().any(|(g, _)| g.count_ones() == 64);
    let solved_at = result
        .history
        .iter()
        .find(|h| h.best >= 64.0)
        .map(|h| h.generation)
        .unwrap_or(result.generations);
    (solved, solved_at)
}

fn knob_sweep<F: Fn(&mut GaConfig)>(label: &str, seeds: u64, apply: F) -> KnobRow {
    let mut solved = 0u64;
    let mut gens = 0.0;
    for seed in 0..seeds {
        let mut config = GaConfig::paper_defaults();
        config.max_generations = 200;
        apply(&mut config);
        let (ok, at) = noisy_popcount_run(config, seed * 31 + 7);
        if ok {
            solved += 1;
        }
        gens += at as f64;
    }
    KnobRow {
        setting: label.to_string(),
        mean_generations: gens / seeds as f64,
        solve_rate: solved as f64 / seeds as f64,
    }
}

/// Runs the ablation study.
///
/// # Errors
///
/// Propagates evaluator failures from the averaging-depth measurement.
pub fn run(scale: ExperimentScale, seeds: u64) -> Result<AblationReport, DStressError> {
    // 1. Selection schemes.
    let selection = vec![
        knob_sweep("tournament k=2 (default)", seeds, |c| {
            c.selection = SelectionScheme::Tournament { k: 2 }
        }),
        knob_sweep("tournament k=4", seeds, |c| {
            c.selection = SelectionScheme::Tournament { k: 4 }
        }),
        knob_sweep("roulette", seeds, |c| {
            c.selection = SelectionScheme::Roulette
        }),
        knob_sweep("truncation 50%", seeds, |c| {
            c.selection = SelectionScheme::Truncation { keep_percent: 50 }
        }),
    ];

    // 2. Crossover operators (exercised through a direct mini-GA since the
    //    engine's inner loop uses the genome's native single-point; the
    //    comparison isolates the recombination step).
    let mut crossover = Vec::new();
    for (label, op) in [
        ("single-point (default)", CrossoverOp::SinglePoint),
        ("two-point", CrossoverOp::TwoPoint),
        ("uniform", CrossoverOp::Uniform),
    ] {
        let mut solved = 0u64;
        let mut gens = 0.0;
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(seed * 97 + 3);
            let mut noise = StdRng::seed_from_u64(seed ^ 0xAB1A);
            let mut population: Vec<BitGenome> =
                (0..40).map(|_| BitGenome::random(&mut rng, 64)).collect();
            let mut best_gen = None;
            let budget = 200;
            for generation in 0..budget {
                let mut scored: Vec<(f64, BitGenome)> = population
                    .iter()
                    .map(|g| (g.count_ones() as f64 + noise.gen_range(0.0..3.0), g.clone()))
                    .collect();
                scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
                if scored.iter().any(|(_, g)| g.count_ones() == 64) {
                    best_gen = Some(generation);
                    break;
                }
                let mut next: Vec<BitGenome> =
                    scored.iter().take(2).map(|(_, g)| g.clone()).collect();
                while next.len() < 40 {
                    let pick = |rng: &mut StdRng| {
                        let a = rng.gen_range(0..scored.len());
                        let b = rng.gen_range(0..scored.len());
                        scored[a.min(b)].1.clone()
                    };
                    let (pa, pb) = (pick(&mut rng), pick(&mut rng));
                    let (mut c, mut d) = if rng.gen::<f64>() < 0.9 {
                        op.cross_bits(&pa, &pb, &mut rng)
                    } else {
                        (pa, pb)
                    };
                    for child in [&mut c, &mut d] {
                        if rng.gen::<f64>() < 0.5 {
                            child.mutate(&mut rng, 1.5 / 64.0);
                        }
                    }
                    next.push(c);
                    if next.len() < 40 {
                        next.push(d);
                    }
                }
                population = next;
            }
            if let Some(g) = best_gen {
                solved += 1;
                gens += g as f64;
            } else {
                gens += budget as f64;
            }
        }
        crossover.push(KnobRow {
            setting: label.to_string(),
            mean_generations: gens / seeds as f64,
            solve_rate: solved as f64 / seeds as f64,
        });
    }

    // 3. Averaging depth on the real evaluator.
    let mut averaging = Vec::new();
    let dstress = DStress::new(scale, 5);
    for runs in [1u32, 3, 10] {
        // An evaluator with the requested averaging depth.
        let server = dstress
            .evaluator(&EnvKind::Word64, 60.0, Metric::CeAverage)?
            .into_server();
        let template = crate::templates::process(crate::templates::WORD64, &scale)?;
        let env = EnvKind::Word64.bindings(&scale)?;
        let mut scaled =
            crate::evaluate::VirusEvaluator::new(server, template, env, Metric::CeAverage, runs, 2);
        let samples: Moments = (0..12)
            .map(|_| {
                scaled
                    .evaluate_bindings(
                        [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into(),
                    )
                    .map(|o| o.fitness)
                    .unwrap_or(0.0)
            })
            .collect();
        let rel = if samples.mean() > 0.0 {
            samples.sample_std_dev() / samples.mean()
        } else {
            0.0
        };
        averaging.push(AveragingRow {
            runs,
            relative_std_dev: rel,
        });
    }

    // 4. Convergence threshold.
    let threshold = vec![
        knob_sweep("threshold 0.75", seeds, |c| c.convergence_threshold = 0.75),
        knob_sweep("threshold 0.85 (paper)", seeds, |c| {
            c.convergence_threshold = 0.85
        }),
        knob_sweep("threshold 0.95", seeds, |c| c.convergence_threshold = 0.95),
    ];

    Ok(AblationReport {
        selection,
        crossover,
        averaging,
        threshold,
    })
}

impl AblationReport {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, rows) in [
            ("selection scheme", &self.selection),
            ("crossover operator", &self.crossover),
            ("convergence threshold", &self.threshold),
        ] {
            out.push_str(&format!("ablation: {title}\n"));
            let mut t = TextTable::new(vec!["setting", "mean generations", "solve rate"]);
            for r in rows {
                t.row(vec![
                    r.setting.clone(),
                    format!("{:.1}", r.mean_generations),
                    format!("{:.0} %", r.solve_rate * 100.0),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out.push_str("ablation: fitness averaging depth (real evaluator, VRT noise)\n");
        let mut t = TextTable::new(vec!["runs averaged", "relative std dev"]);
        for r in &self.averaging {
            t.row(vec![
                r.runs.to_string(),
                format!("{:.4}", r.relative_std_dev),
            ]);
        }
        out.push_str(&t.render());
        out.push_str("(the paper averages 10 runs per virus, §V-A.1)\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_and_averaging_reduces_noise() {
        let report = run(ExperimentScale::quick(), 2).unwrap();
        assert_eq!(report.selection.len(), 4);
        assert_eq!(report.crossover.len(), 3);
        assert_eq!(report.threshold.len(), 3);
        assert_eq!(report.averaging.len(), 3);
        // Deeper averaging must not increase the relative spread.
        let one = report.averaging[0].relative_std_dev;
        let ten = report.averaging[2].relative_std_dev;
        assert!(
            ten <= one + 0.02,
            "10-run averaging ({ten}) should not be noisier than single runs ({one})"
        );
        assert!(!report.render().is_empty());
    }
}
