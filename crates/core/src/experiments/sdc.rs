//! Silent-data-corruption accounting (extension; paper §III-C).
//!
//! "ECC SECDED detects 100 % of 2-bit errors, while errors where more than
//! 2 bit are corrupted may be not detected by ECC SECDED. Such errors
//! manifest so called Silence Data Corruption (SDCs)." Real EDAC counters
//! cannot see SDCs; the simulation knows ground truth, so this experiment
//! quantifies what the platform's CE/UE view *misses* as temperature rises,
//! on a device seeded with clustered triple defects.

use crate::error::DStressError;
use crate::evaluate::Metric;
use crate::report::TextTable;
use crate::scale::ExperimentScale;
use crate::search::{DStress, EnvKind, WORST_WORD};
use dstress_vpl::BoundValue;
use serde::{Deserialize, Serialize};

/// Error accounting at one temperature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdcPoint {
    /// DIMM temperature (°C).
    pub temp_c: i64,
    /// Correctable errors (visible).
    pub ce: u64,
    /// Detected uncorrectable errors (visible).
    pub ue: u64,
    /// Miscorrections (silent: the decoder "fixed" the word to wrong data).
    pub sdc_miscorrected: u64,
    /// Undetected multi-bit errors (silent).
    pub sdc_undetected: u64,
}

impl SdcPoint {
    /// The fraction of all data-corrupting events that are silent.
    pub fn silent_fraction(&self) -> f64 {
        let silent = self.sdc_miscorrected + self.sdc_undetected;
        let corrupting = silent + self.ue;
        if corrupting == 0 {
            0.0
        } else {
            silent as f64 / corrupting as f64
        }
    }
}

/// The SDC-accounting report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdcReport {
    /// Triple clusters seeded per rank.
    pub triples_per_rank: usize,
    /// One accounting row per temperature.
    pub points: Vec<SdcPoint>,
}

/// Runs the accounting sweep on a device seeded with triple defects,
/// holding the worst-case data pattern, from 58 to 70 °C.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn run(mut scale: ExperimentScale, seed: u64) -> Result<SdcReport, DStressError> {
    let triples = 20;
    scale.server.dimm.weak.triples_per_rank = triples;
    let dstress = DStress::new(scale, seed);
    let mut points = Vec::new();
    for temp in [58i64, 62, 66, 70] {
        let mut evaluator = dstress.evaluator(&EnvKind::Word64, temp as f64, Metric::CeAverage)?;
        evaluator
            .evaluate_bindings([("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into())?;
        let counters = evaluator.server().counters();
        let sum = |f: fn(&dstress_ecc::CounterSnapshot) -> u64| -> u64 {
            counters.iter().map(|d| f(&d.counts)).sum()
        };
        points.push(SdcPoint {
            temp_c: temp,
            ce: sum(|c| c.ce),
            ue: sum(|c| c.ue),
            sdc_miscorrected: sum(|c| c.sdc_miscorrected),
            sdc_undetected: sum(|c| c.sdc_undetected),
        });
    }
    Ok(SdcReport {
        triples_per_rank: triples,
        points,
    })
}

impl SdcReport {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "SDC accounting (extension, paper §III-C) - {} triple clusters/rank, worst-case fill\n",
            self.triples_per_rank
        ));
        let mut t = TextTable::new(vec![
            "temp",
            "CE (visible)",
            "UE (visible)",
            "miscorrected",
            "undetected",
            "silent fraction",
        ]);
        for p in &self.points {
            t.row(vec![
                format!("{}C", p.temp_c),
                p.ce.to_string(),
                p.ue.to_string(),
                p.sdc_miscorrected.to_string(),
                p.sdc_undetected.to_string(),
                format!("{:.2}", p.silent_fraction()),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "(visible = what real EDAC hardware reports; silent = ground truth only the \
             simulation sees)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triples_produce_silent_corruption_at_high_temperature() {
        let report = run(ExperimentScale::quick(), 71).unwrap();
        assert_eq!(report.points.len(), 4);
        let cool = &report.points[0];
        let hot = report.points.last().unwrap();
        // (CE counts are not monotone across the UE onset: a UE stops the
        // run early, truncating the windows CEs accumulate over.)
        let cool_silent = cool.sdc_miscorrected + cool.sdc_undetected;
        let hot_silent = hot.sdc_miscorrected + hot.sdc_undetected;
        assert!(
            hot_silent >= cool_silent,
            "silent corruption grows with temperature"
        );
        assert!(
            hot_silent > 0,
            "triple clusters must defeat SECDED by 70C: {hot:?}"
        );
        assert!(hot.silent_fraction() > 0.0);
    }

    #[test]
    fn without_triples_nothing_is_silent() {
        // The default population has at most 2 weak bits per word; SECDED's
        // 2-bit detection guarantee keeps everything visible.
        let scale = ExperimentScale::quick();
        assert_eq!(scale.server.dimm.weak.triples_per_rank, 0);
        let dstress = DStress::new(scale, 72);
        let mut evaluator = dstress
            .evaluator(&EnvKind::Word64, 70.0, Metric::CeAverage)
            .unwrap();
        evaluator
            .evaluate_bindings([("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into())
            .unwrap();
        let silent: u64 = evaluator
            .server()
            .counters()
            .iter()
            .map(|d| d.counts.silent())
            .sum();
        assert_eq!(silent, 0, "no word carries 3+ weak bits by default");
    }
}
