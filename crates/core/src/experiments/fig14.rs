//! Fig. 14 — scaling the DRAM operating parameters with the discovered
//! viruses (use case, paper §VI).
//!
//! For each virus family (64-bit pattern, 24 KB-class pattern, access
//! pattern) and each temperature {50, 60, 70 °C}, find the marginal TREFP
//! under relaxed VDD for both safety criteria, then convert the margins
//! into power savings. Paper shape targets: the access virus discovers the
//! most pessimistic (smallest) margins, the UE-only criterion allows larger
//! margins than the no-error criterion, and the no-error margins buy
//! ≈ 17.7 % DRAM / ≈ 8.6 % system energy.

use crate::error::DStressError;
use crate::report::TextTable;
use crate::scale::ExperimentScale;
use crate::search::{DStress, EnvKind, BEST_WORD, WORST_WORD};
use crate::usecases::{find_marginal_trefp, savings_at_margin, SafetyCriterion, SavingsReport};
use dstress_vpl::BoundValue;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One virus family probed by the margin sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VirusFamily {
    /// The worst-case 64-bit data-pattern virus.
    Word64,
    /// The worst-case row-triple (24 KB-class) data-pattern virus.
    RowTriple,
    /// The worst-case neighbour-row access virus.
    RowAccess,
}

impl VirusFamily {
    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            VirusFamily::Word64 => "64-bit data virus",
            VirusFamily::RowTriple => "24KB-class data virus",
            VirusFamily::RowAccess => "access virus",
        }
    }
}

/// One margin measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginPoint {
    /// The virus family.
    pub family: VirusFamily,
    /// DIMM temperature (°C).
    pub temp_c: f64,
    /// The safety criterion.
    pub criterion: SafetyCriterion,
    /// The discovered marginal TREFP (seconds).
    pub marginal_trefp_s: f64,
}

/// The Fig. 14 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig14Report {
    /// Every probed (family × temperature × criterion) point.
    pub points: Vec<MarginPoint>,
    /// Savings at the most pessimistic no-error margin per temperature.
    pub savings: Vec<(f64, SavingsReport)>,
}

/// Runs the Fig. 14 margin sweeps using the canonical worst-case artifacts
/// (the converged forms the searches discover; see EXPERIMENTS.md).
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Fig14Report, DStressError> {
    let mut dstress = DStress::new(scale, seed);
    let temps = [50.0, 60.0, 70.0];
    let grid_points = 10;

    // Victim rows for the neighbourhood viruses, profiled at 60 °C.
    let victims = dstress.profile_victims(60.0, WORST_WORD)?;
    let row_words = scale.row_words() as usize;

    // Canonical artifacts.
    let word64_env = EnvKind::Word64;
    let word64_chromosome: HashMap<String, BoundValue> =
        [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into();

    let triple_env = EnvKind::RowTriple {
        victims: victims.clone(),
    };
    let triple_chromosome: HashMap<String, BoundValue> = [
        (
            "PREV_PATTERN".to_string(),
            BoundValue::Array(vec![BEST_WORD; row_words]),
        ),
        (
            "VICTIM_PATTERN".to_string(),
            BoundValue::Array(vec![WORST_WORD; row_words]),
        ),
        (
            "NEXT_PATTERN".to_string(),
            BoundValue::Array(vec![BEST_WORD; row_words]),
        ),
    ]
    .into();

    let access_env = EnvKind::RowAccess {
        victims: victims.clone(),
        fill: WORST_WORD,
    };
    let access_chromosome: HashMap<String, BoundValue> =
        [("SEL".to_string(), BoundValue::Array(vec![1u64; 64]))].into();

    let families: Vec<(VirusFamily, EnvKind, HashMap<String, BoundValue>)> = vec![
        (VirusFamily::Word64, word64_env, word64_chromosome),
        (VirusFamily::RowTriple, triple_env, triple_chromosome),
        (VirusFamily::RowAccess, access_env, access_chromosome),
    ];

    let mut points = Vec::new();
    for temp in temps {
        for (family, env, chromosome) in &families {
            for criterion in [SafetyCriterion::NoErrors, SafetyCriterion::NoUncorrectable] {
                let margin =
                    find_marginal_trefp(&dstress, env, chromosome, temp, criterion, grid_points)?;
                points.push(MarginPoint {
                    family: *family,
                    temp_c: temp,
                    criterion,
                    marginal_trefp_s: margin.marginal_trefp_s,
                });
            }
        }
    }

    // Savings at the most pessimistic no-error margin per temperature.
    let mut savings = Vec::new();
    for temp in temps {
        let margin = points
            .iter()
            .filter(|p| p.temp_c == temp && p.criterion == SafetyCriterion::NoErrors)
            .map(|p| p.marginal_trefp_s)
            .fold(f64::INFINITY, f64::min);
        savings.push((temp, savings_at_margin(margin, 1.0e6)));
    }

    Ok(Fig14Report { points, savings })
}

impl Fig14Report {
    /// The margin discovered by a family at a temperature/criterion.
    pub fn margin(
        &self,
        family: VirusFamily,
        temp_c: f64,
        criterion: SafetyCriterion,
    ) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.family == family && p.temp_c == temp_c && p.criterion == criterion)
            .map(|p| p.marginal_trefp_s)
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 14 - marginal (safe) TREFP under relaxed VDD\n");
        for criterion in [SafetyCriterion::NoErrors, SafetyCriterion::NoUncorrectable] {
            out.push_str(&format!(
                "\ncriterion: {}\n",
                match criterion {
                    SafetyCriterion::NoErrors => "no errors",
                    SafetyCriterion::NoUncorrectable => "single-bit errors allowed",
                }
            ));
            let mut t = TextTable::new(vec!["virus", "50C", "60C", "70C"]);
            for family in [
                VirusFamily::Word64,
                VirusFamily::RowTriple,
                VirusFamily::RowAccess,
            ] {
                let cells: Vec<String> = [50.0, 60.0, 70.0]
                    .iter()
                    .map(|&temp| {
                        self.margin(family, temp, criterion)
                            .map(|m| format!("{m:.3} s"))
                            .unwrap_or_else(|| "-".into())
                    })
                    .collect();
                t.row(
                    std::iter::once(family.name().to_string())
                        .chain(cells)
                        .collect(),
                );
            }
            out.push_str(&t.render());
        }
        out.push_str("\npower savings at the most pessimistic no-error margin:\n");
        let mut t = TextTable::new(vec!["temp", "margin", "DRAM savings", "system savings"]);
        for (temp, s) in &self.savings {
            t.row(vec![
                format!("{temp:.0}C"),
                format!("{:.3} s", s.marginal_trefp_s),
                format!("{:.1} %", s.dram_savings * 100.0),
                format!("{:.1} %", s.system_savings * 100.0),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_lookup_and_render() {
        let report = Fig14Report {
            points: vec![MarginPoint {
                family: VirusFamily::Word64,
                temp_c: 50.0,
                criterion: SafetyCriterion::NoErrors,
                marginal_trefp_s: 0.5,
            }],
            savings: vec![(50.0, savings_at_margin(0.5, 1.0e6))],
        };
        assert_eq!(
            report.margin(VirusFamily::Word64, 50.0, SafetyCriterion::NoErrors),
            Some(0.5)
        );
        assert_eq!(
            report.margin(VirusFamily::RowAccess, 50.0, SafetyCriterion::NoErrors),
            None
        );
        assert!(report.render().contains("0.500 s"));
    }
}
