//! Fig. 8 — the 64-bit data-pattern searches.
//!
//! * (a) 40 worst-case 64-bit patterns maximizing CEs at 55 °C — the GA
//!   converges (SMF ≈ 0.89) onto patterns dominated by the repeating
//!   `1100` sub-pattern;
//! * (b) the same search at 60 °C converges to the *same* pattern
//!   (cross-temperature SMF ≈ 0.90);
//! * (c) minimizing CEs finds the best-case pattern: ≈ 8× fewer CEs;
//! * (d) at 62 °C a UE-maximizing search triggers UEs in 100 % of runs but
//!   does *not* converge (SMF ≈ 0.58);
//! * (e) the discovered worst-case pattern beats every classic
//!   micro-benchmark by ≥ 45 %, and the best-case pattern undercuts all of
//!   them, on every DIMM/rank.

use crate::error::DStressError;
use crate::evaluate::Metric;
use crate::microbench::Baseline;
use crate::report::{pattern_prefix, percent_delta, TextTable};
use crate::scale::ExperimentScale;
use crate::search::{DStress, EnvKind};
use dstress_ga::Genome;
use dstress_stats::mean_pairwise;
use dstress_vpl::BoundValue;
use serde::{Deserialize, Serialize};

/// One completed 64-bit pattern search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternSearchSummary {
    /// Campaign name.
    pub name: String,
    /// The leaderboard patterns (packed words) with fitness.
    pub leaderboard: Vec<(u64, f64)>,
    /// Best fitness (CEs/run, or UE-runs for the UE search).
    pub best_fitness: f64,
    /// Final leaderboard similarity (SMF).
    pub similarity: f64,
    /// Whether the search converged before the budget.
    pub converged: bool,
    /// Generations executed.
    pub generations: u32,
    /// Fraction of 2-bit-aligned positions of the best pattern that match
    /// the canonical `1100` phase (1.0 = pure repeating `1100`).
    pub best_1100_match: f64,
}

/// The full Fig. 8 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig08Report {
    /// (a) worst-case search at 55 °C.
    pub worst_55c: PatternSearchSummary,
    /// (b) worst-case search at 60 °C.
    pub worst_60c: PatternSearchSummary,
    /// Mean SMF between the 55 °C and 60 °C leaderboards.
    pub cross_temperature_smf: f64,
    /// (c) best-case (minimizing) search at 55 °C.
    pub best_55c: PatternSearchSummary,
    /// Mean SMF between worst-case and best-case leaderboards.
    pub worst_vs_best_smf: f64,
    /// worst-case CEs ÷ best-case CEs (paper: ≈ 8×).
    pub worst_over_best: f64,
    /// (d) UE search at 62 °C.
    pub ue_62c: PatternSearchSummary,
    /// (e) micro-benchmark comparison at 60 °C: (name, CEs/run).
    pub baselines_60c: Vec<(String, f64)>,
    /// GA worst-case CEs/run at 60 °C (same measurement protocol).
    pub ga_worst_ce: f64,
    /// GA best-case CEs/run at 60 °C.
    pub ga_best_ce: f64,
}

fn summarize(campaign: &crate::search::BitCampaign) -> PatternSearchSummary {
    let leaderboard: Vec<(u64, f64)> = campaign
        .result
        .leaderboard
        .iter()
        .map(|(g, f)| (g.to_words()[0], *f))
        .collect();
    let best = campaign.result.best.to_words()[0];
    // Match against the canonical phase-insensitive `1100` tiling: the best
    // of the four phase shifts of 0x3333… .
    let best_1100_match = (0..4)
        .map(|shift| {
            let canon = 0x3333_3333_3333_3333u64.rotate_left(shift as u32);
            (64 - (best ^ canon).count_ones()) as f64 / 64.0
        })
        .fold(0.0f64, f64::max);
    PatternSearchSummary {
        name: campaign.name.clone(),
        leaderboard,
        best_fitness: campaign.result.best_fitness,
        similarity: campaign.result.similarity,
        converged: campaign.result.converged,
        generations: campaign.result.generations,
        best_1100_match,
    }
}

fn cross_smf(a: &crate::search::BitCampaign, b: &crate::search::BitCampaign) -> f64 {
    // Mean similarity over all cross pairs of the two leaderboards.
    let mut sum = 0.0;
    let mut n = 0usize;
    for (ga, _) in &a.result.leaderboard {
        for (gb, _) in &b.result.leaderboard {
            sum += ga.similarity(gb);
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        sum / n as f64
    }
}

/// Runs the full Fig. 8 experiment family.
///
/// # Errors
///
/// Propagates campaign failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Fig08Report, DStressError> {
    let mut dstress = DStress::new(scale, seed);

    // (a) + (b): worst-case CE searches at 55 and 60 °C.
    let worst_55 = dstress.search_word64(55.0, Metric::CeAverage, false)?;
    let worst_60 = dstress.search_word64(60.0, Metric::CeAverage, false)?;
    // (c): best-case search at 55 °C.
    let best_55 = dstress.search_word64(55.0, Metric::CeAverage, true)?;
    // (d): UE search at 62 °C.
    let ue_62 = dstress.search_word64(62.0, Metric::UeRuns, false)?;

    // (e): micro-benchmark comparison at 60 °C, same protocol.
    let mut baselines = Vec::new();
    for b in Baseline::all(seed ^ 0xBA5E) {
        let outcome = dstress.measure(
            &EnvKind::CycleFill { cycle: b.cycle() },
            Default::default(),
            60.0,
            Metric::CeAverage,
        )?;
        baselines.push((b.name().to_string(), outcome.fitness));
    }
    let ga_worst_word = worst_60.result.best.to_words()[0];
    let ga_best_word = best_55.result.best.to_words()[0];
    let ga_worst_ce = dstress
        .measure(
            &EnvKind::Word64,
            [("PATTERN".to_string(), BoundValue::Scalar(ga_worst_word))].into(),
            60.0,
            Metric::CeAverage,
        )?
        .fitness;
    let ga_best_ce = dstress
        .measure(
            &EnvKind::Word64,
            [("PATTERN".to_string(), BoundValue::Scalar(ga_best_word))].into(),
            60.0,
            Metric::CeAverage,
        )?
        .fitness;

    let worst_over_best = if ga_best_ce > 0.0 {
        ga_worst_ce / ga_best_ce
    } else {
        f64::INFINITY
    };
    let report = Fig08Report {
        cross_temperature_smf: cross_smf(&worst_55, &worst_60),
        worst_vs_best_smf: cross_smf(&worst_55, &best_55),
        worst_over_best,
        worst_55c: summarize(&worst_55),
        worst_60c: summarize(&worst_60),
        best_55c: summarize(&best_55),
        ue_62c: summarize(&ue_62),
        baselines_60c: baselines,
        ga_worst_ce,
        ga_best_ce,
    };
    Ok(report)
}

impl Fig08Report {
    /// Renders the whole figure family as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, s) in [
            ("Fig. 8a - worst-case 64-bit patterns, 55C", &self.worst_55c),
            ("Fig. 8b - worst-case 64-bit patterns, 60C", &self.worst_60c),
            ("Fig. 8c - best-case 64-bit patterns, 55C", &self.best_55c),
            ("Fig. 8d - UE-triggering 64-bit patterns, 62C", &self.ue_62c),
        ] {
            out.push_str(&format!(
                "{label}\n  best fitness {:.1}, SMF {:.2}, converged {}, {} generations, 1100-match {:.2}\n",
                s.best_fitness, s.similarity, s.converged, s.generations, s.best_1100_match
            ));
            let mut t = TextTable::new(vec!["#", "pattern (bits 0..31)", "fitness"]);
            for (i, (w, f)) in s.leaderboard.iter().take(8).enumerate() {
                t.row(vec![
                    i.to_string(),
                    pattern_prefix(&[*w], 32),
                    format!("{f:.1}"),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "cross-temperature SMF (55C vs 60C worst boards): {:.2}\n",
            self.cross_temperature_smf
        ));
        out.push_str(&format!(
            "worst-vs-best SMF: {:.2}; worst/best CE ratio: {:.1}x\n\n",
            self.worst_vs_best_smf, self.worst_over_best
        ));
        out.push_str("Fig. 8e - micro-benchmark comparison, 60C\n");
        let mut t = TextTable::new(vec!["pattern", "CEs/run", "vs GA worst"]);
        t.row(vec![
            "GA worst-case".into(),
            format!("{:.1}", self.ga_worst_ce),
            "-".into(),
        ]);
        for (name, ce) in &self.baselines_60c {
            t.row(vec![
                name.clone(),
                format!("{ce:.1}"),
                percent_delta(*ce, self.ga_worst_ce),
            ]);
        }
        t.row(vec![
            "GA best-case".into(),
            format!("{:.1}", self.ga_best_ce),
            percent_delta(self.ga_best_ce, self.ga_worst_ce),
        ]);
        out.push_str(&t.render());
        let strongest_baseline = self
            .baselines_60c
            .iter()
            .map(|(_, ce)| *ce)
            .fold(f64::NEG_INFINITY, f64::max);
        out.push_str(&format!(
            "\nGA worst vs strongest micro-benchmark: {}\n",
            percent_delta(self.ga_worst_ce, strongest_baseline)
        ));
        out
    }

    /// The leaderboard SMF values the paper reports per sub-figure.
    pub fn headline(&self) -> String {
        format!(
            "worst55 SMF {:.2} ({}), worst60 SMF {:.2}, best SMF {:.2}, ue SMF {:.2} ({}), ratio {:.1}x",
            self.worst_55c.similarity,
            if self.worst_55c.converged { "converged" } else { "budget" },
            self.worst_60c.similarity,
            self.best_55c.similarity,
            self.ue_62c.similarity,
            if self.ue_62c.converged { "converged" } else { "not converged" },
            self.worst_over_best,
        )
    }
}

/// Verifies the leaderboard-wide SMF the way the paper computes it (over
/// the 40 worst patterns).
pub fn leaderboard_smf(summary: &PatternSearchSummary) -> f64 {
    let bits: Vec<Vec<bool>> = summary
        .leaderboard
        .iter()
        .map(|(w, _)| (0..64).map(|i| (w >> i) & 1 == 1).collect())
        .collect();
    mean_pairwise(&bits, |a, b| dstress_stats::sokal_michener(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaderboard_smf_matches_search_similarity_shape() {
        let summary = PatternSearchSummary {
            name: "x".into(),
            leaderboard: vec![(0x3333, 10.0), (0x3333, 9.0), (0x3332, 8.0)],
            best_fitness: 10.0,
            similarity: 0.9,
            converged: true,
            generations: 5,
            best_1100_match: 1.0,
        };
        let smf = leaderboard_smf(&summary);
        assert!(smf > 0.9);
    }

    #[test]
    fn canonical_worst_word_scores_full_1100_match() {
        let campaign_best = 0x3333_3333_3333_3333u64;
        let m = (0..4)
            .map(|shift| {
                let canon = 0x3333_3333_3333_3333u64.rotate_left(shift as u32);
                (64 - (campaign_best ^ canon).count_ones()) as f64 / 64.0
            })
            .fold(0.0f64, f64::max);
        assert_eq!(m, 1.0);
        // The complement phase (0xCCCC…) also tiles 1100 shifted by two.
        let complement = 0xCCCC_CCCC_CCCC_CCCCu64;
        let m2 = (0..4)
            .map(|shift| {
                let canon = 0x3333_3333_3333_3333u64.rotate_left(shift as u32);
                (64 - (complement ^ canon).count_ones()) as f64 / 64.0
            })
            .fold(0.0f64, f64::max);
        assert_eq!(m2, 1.0);
    }
}
