//! Fig. 13 — efficiency of the GA search.
//!
//! The paper samples randomized data / access patterns, confirms with the
//! D'Agostino–Pearson test that the CE counts are normally distributed, and
//! integrates the fitted Gaussian's upper tail beyond the GA result to
//! estimate "the probability that there exist patterns that trigger more
//! errors than the patterns discovered by GA". The abstract's summary:
//! DStress finds the worst-case data pattern with probability `1 − 4×10⁻⁷`
//! and the worst-case access pattern with probability `0.95`.

use crate::error::DStressError;
use crate::evaluate::Metric;
use crate::scale::ExperimentScale;
use crate::search::{DStress, EnvKind, WORST_WORD};
use dstress_dram::geometry::RowKey;
use dstress_stats::{
    bootstrap_ci, dagostino_pearson, ConfidenceInterval, DagostinoPearson, Histogram, Moments,
    Normal,
};
use dstress_vpl::BoundValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The distribution summary for one random-virus family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomDistribution {
    /// Sample count.
    pub samples: u64,
    /// Sample mean CEs/run.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// The D'Agostino–Pearson omnibus test result.
    pub normality: DagostinoPearson,
    /// Histogram of the sampled CE counts (20 bins over the data range).
    pub histogram: Histogram,
    /// The GA-discovered best fitness this family is compared against.
    pub ga_best: f64,
    /// Upper-tail probability `P(random > ga_best)` under the fitted
    /// Gaussian — the paper's "probability that a better pattern exists".
    pub p_better_exists: f64,
    /// 95 % percentile-bootstrap interval on `p_better_exists` (the paper
    /// reports a point estimate; the bootstrap quantifies how much the
    /// handful of random samples constrain it).
    pub p_better_ci: ConfidenceInterval,
}

impl RandomDistribution {
    /// The abstract's framing: the probability the GA found the worst case.
    pub fn p_found_worst(&self) -> f64 {
        1.0 - self.p_better_exists
    }
}

/// The Fig. 13 report: random data patterns (a) and random access patterns
/// (b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig13Report {
    /// (a) random 64-bit data patterns vs the GA worst-case data pattern.
    pub data_patterns: RandomDistribution,
    /// (b) random row-bitmap access patterns vs the GA worst-case access
    /// pattern.
    pub access_patterns: RandomDistribution,
}

fn summarize(values: &[f64], ga_best: f64) -> Result<RandomDistribution, DStressError> {
    let moments: Moments = values.iter().copied().collect();
    let normality = dagostino_pearson(&moments)
        .map_err(|e| DStressError::Experiment(format!("normality test failed: {e}")))?;
    let normal = Normal::fit(&moments)
        .map_err(|e| DStressError::Experiment(format!("gaussian fit failed: {e}")))?;
    let histogram = Histogram::from_data(values, 20)
        .map_err(|e| DStressError::Experiment(format!("histogram failed: {e}")))?;
    let tail_stat = move |xs: &[f64]| -> f64 {
        let m: Moments = xs.iter().copied().collect();
        match Normal::fit(&m) {
            Ok(n) => n.sf(ga_best),
            Err(_) => 0.0,
        }
    };
    let p_better_ci = bootstrap_ci(values, tail_stat, 400, 0.95, 0xB007)
        .map_err(|e| DStressError::Experiment(format!("bootstrap failed: {e}")))?;
    Ok(RandomDistribution {
        samples: moments.count(),
        mean: moments.mean(),
        std_dev: moments.sample_std_dev(),
        normality,
        histogram,
        ga_best,
        p_better_exists: normal.sf(ga_best),
        p_better_ci,
    })
}

/// Runs the Fig. 13 experiment.
///
/// `ga_data_best` / `ga_access_best` are the discovered worst-case fitness
/// values (from the Fig. 8 / Fig. 11 campaigns); when absent, the canonical
/// worst word / a dense row selection are measured instead.
///
/// # Errors
///
/// Propagates evaluation and statistics failures.
pub fn run(
    scale: ExperimentScale,
    seed: u64,
    ga_data_best: Option<f64>,
    ga_access_best: Option<f64>,
) -> Result<Fig13Report, DStressError> {
    let mut dstress = DStress::new(scale, seed);
    let temp = 60.0;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1613);

    // (a) random 64-bit data patterns.
    let mut evaluator = dstress.evaluator(&EnvKind::Word64, temp, Metric::CeAverage)?;
    let mut data_values = Vec::with_capacity(scale.random_samples);
    for _ in 0..scale.random_samples {
        let word: u64 = rng.gen();
        let outcome = evaluator
            .evaluate_bindings([("PATTERN".to_string(), BoundValue::Scalar(word))].into())?;
        data_values.push(outcome.fitness);
    }
    let ga_data_best = match ga_data_best {
        Some(v) => v,
        None => {
            evaluator
                .evaluate_bindings(
                    [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into(),
                )?
                .fitness
        }
    };

    // (b) random access patterns over the victim neighbourhood.
    let victims = dstress.profile_victims(temp, WORST_WORD)?;
    let env = EnvKind::RowAccess {
        victims: victims.clone(),
        fill: WORST_WORD,
    };
    let metric = Metric::CeInRows(victims.clone());
    let mut evaluator = dstress.evaluator(&env, temp, metric)?;
    let mut access_values = Vec::with_capacity(scale.random_samples);
    for _ in 0..scale.random_samples {
        let flags: Vec<u64> = (0..64).map(|_| rng.gen_range(0..=1u64)).collect();
        let outcome =
            evaluator.evaluate_bindings([("SEL".to_string(), BoundValue::Array(flags))].into())?;
        access_values.push(outcome.fitness);
    }
    let ga_access_best = match ga_access_best {
        Some(v) => v,
        None => {
            // The canonical strong access pattern: hammer every neighbour.
            let all: Vec<u64> = vec![1; 64];
            evaluator
                .evaluate_bindings([("SEL".to_string(), BoundValue::Array(all))].into())?
                .fitness
        }
    };

    Ok(Fig13Report {
        data_patterns: summarize(&data_values, ga_data_best)?,
        access_patterns: summarize(&access_values, ga_access_best)?,
    })
}

/// The victim rows used by part (b), re-derivable for inspection.
pub fn victims_for(scale: &ExperimentScale, seed: u64) -> Result<Vec<RowKey>, DStressError> {
    let mut dstress = DStress::new(*scale, seed);
    dstress.profile_victims(60.0, WORST_WORD)
}

impl Fig13Report {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, d) in [
            ("Fig. 13a - random data patterns", &self.data_patterns),
            ("Fig. 13b - random access patterns", &self.access_patterns),
        ] {
            out.push_str(&format!(
                "{label}\n  n = {}, mean = {:.1}, sd = {:.1}\n  D'Agostino-Pearson: K2 = {:.2}, p = {:.3} ({})\n",
                d.samples,
                d.mean,
                d.std_dev,
                d.normality.k2,
                d.normality.p_value,
                if d.normality.is_normal(0.05) { "normal" } else { "NOT normal" },
            ));
            out.push_str(&format!(
                "  GA best = {:.1}; P(better pattern exists) = {:.2e} (95% bootstrap CI [{:.2e}, {:.2e}]); P(GA found worst) = {:.6}\n",
                d.ga_best,
                d.p_better_exists,
                d.p_better_ci.lo,
                d.p_better_ci.hi,
                d.p_found_worst(),
            ));
            out.push_str(&d.histogram.render_ascii(40));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_computes_tail_probability() {
        // A clean Gaussian-ish sample via deterministic jitter.
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<f64> = (0..500)
            .map(|_| {
                let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
                100.0 + 10.0 * (s - 6.0)
            })
            .collect();
        let d = summarize(&values, 150.0).unwrap();
        assert!(d.normality.is_normal(0.01));
        assert!(
            d.p_better_exists < 1e-4,
            "5-sigma tail: {}",
            d.p_better_exists
        );
        assert!(d.p_found_worst() > 0.999);
        // A mid-distribution "best" leaves a large tail.
        let weak = summarize(&values, 100.0).unwrap();
        assert!((weak.p_better_exists - 0.5).abs() < 0.1);
    }
}
