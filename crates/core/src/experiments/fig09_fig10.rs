//! Figs. 9 & 10 — the row-triple ("24 KB") and chunk-span ("512 KB")
//! data-pattern searches.
//!
//! Paper observations reproduced here:
//!
//! * the worst-case 24 KB pattern manifests ≈ 16 % more CEs (in the
//!   error-prone rows) than the worst-case 64-bit pattern — inter-row
//!   interference from the neighbouring rows (Fig. 9, SMF 0.89);
//! * the 512 KB pattern gains nothing over the 24 KB one — there is no
//!   cell-to-cell interference across banks, confirming the §II address
//!   mapping (Fig. 10, SMF 0.88).

use crate::error::DStressError;
use crate::evaluate::Metric;
use crate::report::{percent_delta, TextTable};
use crate::scale::ExperimentScale;
use crate::search::{DStress, EnvKind, WORST_WORD};
use dstress_dram::geometry::RowKey;
use dstress_vpl::BoundValue;
use serde::{Deserialize, Serialize};

/// The Figs. 9–10 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig0910Report {
    /// The error-prone rows the experiment centres on.
    pub victims: Vec<RowKey>,
    /// Victim-row CEs/run of the worst-case 64-bit pattern (reference).
    pub word64_ce: f64,
    /// Best victim-row CEs/run of the 24 KB search.
    pub triple_ce: f64,
    /// 24 KB search leaderboard similarity.
    pub triple_smf: f64,
    /// Whether the 24 KB search converged.
    pub triple_converged: bool,
    /// Generations the 24 KB search ran.
    pub triple_generations: u32,
    /// Best victim-row CEs/run of the 512 KB search.
    pub chunks_ce: f64,
    /// 512 KB search leaderboard similarity.
    pub chunks_smf: f64,
    /// Whether the 512 KB search converged.
    pub chunks_converged: bool,
    /// The winning 24 KB chromosome packed as words
    /// (prev-row ++ victim-row ++ next-row patterns).
    pub triple_words: Vec<u64>,
    /// Words per row at this scale (to slice `triple_words`).
    pub row_words: usize,
}

/// Runs the Fig. 9 + Fig. 10 experiments.
///
/// # Errors
///
/// Propagates profiling and campaign failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Fig0910Report, DStressError> {
    let mut dstress = DStress::new(scale, seed);
    let temp = 60.0;
    let victims = dstress.profile_victims(temp, WORST_WORD)?;

    // Reference: the worst 64-bit pattern measured on the same victim rows.
    let word64_ce = dstress
        .measure(
            &EnvKind::Word64,
            [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into(),
            temp,
            Metric::CeInRows(victims.clone()),
        )?
        .fitness;

    let triple = dstress.search_row_triple(temp, victims.clone())?;
    let chunks = dstress.search_chunks(temp, victims.clone())?;

    Ok(Fig0910Report {
        victims,
        word64_ce,
        triple_ce: triple.result.best_fitness,
        triple_smf: triple.result.similarity,
        triple_converged: triple.result.converged,
        triple_generations: triple.result.generations,
        chunks_ce: chunks.result.best_fitness,
        chunks_smf: chunks.result.similarity,
        chunks_converged: chunks.result.converged,
        triple_words: triple.result.best.to_words(),
        row_words: dstress.scale.row_words() as usize,
    })
}

impl Fig0910Report {
    /// Fraction of a word slice's cells that are charged under the TTAA
    /// reading (diagnostic: victim slice should approach 1.0, neighbour
    /// slices should fall well below).
    pub fn charged_fraction(words: &[u64]) -> f64 {
        // Under the TTAA layout, logical bit pattern `1100` (LSB-first) =
        // 0x3 per nibble charges all four cells; count per-nibble matches.
        let mut charged = 0u32;
        let mut total = 0u32;
        for w in words {
            for nibble in 0..16 {
                let n = (w >> (4 * nibble)) & 0xF;
                // Cells: bits 0,1 are true-cells (charged by 1), bits 2,3
                // anti-cells (charged by 0).
                charged += (n & 1) as u32;
                charged += ((n >> 1) & 1) as u32;
                charged += (1 - ((n >> 2) & 1)) as u32;
                charged += (1 - ((n >> 3) & 1)) as u32;
                total += 4;
            }
        }
        charged as f64 / total as f64
    }

    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fig. 9 - worst-case row-triple (24 KB-class) patterns, 60C\n  victims: {:?}\n",
            self.victims
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        ));
        let mut t = TextTable::new(vec!["virus", "victim-row CEs/run", "vs 64-bit worst"]);
        t.row(vec![
            "64-bit worst (reference)".into(),
            format!("{:.1}", self.word64_ce),
            "-".into(),
        ]);
        t.row(vec![
            "24 KB-class GA best".into(),
            format!("{:.1}", self.triple_ce),
            percent_delta(self.triple_ce, self.word64_ce),
        ]);
        t.row(vec![
            "512 KB-class GA best".into(),
            format!("{:.1}", self.chunks_ce),
            percent_delta(self.chunks_ce, self.word64_ce),
        ]);
        out.push_str(&t.render());
        let prev = &self.triple_words[..self.row_words];
        let victim = &self.triple_words[self.row_words..2 * self.row_words];
        let next = &self.triple_words[2 * self.row_words..];
        out.push_str(&format!(
            "\n24 KB winner structure: charged fraction prev {:.2}, victim {:.2}, next {:.2}\n",
            Self::charged_fraction(prev),
            Self::charged_fraction(victim),
            Self::charged_fraction(next),
        ));
        out.push_str(&format!(
            "24 KB search: SMF {:.2}, converged {}, {} generations\n",
            self.triple_smf, self.triple_converged, self.triple_generations
        ));
        out.push_str(&format!(
            "\nFig. 10 - 512 KB-class patterns: SMF {:.2}, converged {}, best {:.1} vs 24 KB {:.1}\n",
            self.chunks_smf, self.chunks_converged, self.chunks_ce, self.triple_ce,
        ));
        out.push_str(
            "  (no gain over the 24 KB pattern: no cell-to-cell interference across banks)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charged_fraction_extremes() {
        assert_eq!(
            Fig0910Report::charged_fraction(&[0x3333_3333_3333_3333]),
            1.0
        );
        assert_eq!(
            Fig0910Report::charged_fraction(&[0xCCCC_CCCC_CCCC_CCCC]),
            0.0
        );
        let half = Fig0910Report::charged_fraction(&[0u64]);
        assert!((half - 0.5).abs() < 1e-12);
        let half1 = Fig0910Report::charged_fraction(&[u64::MAX]);
        assert!((half1 - 0.5).abs() < 1e-12);
    }
}
