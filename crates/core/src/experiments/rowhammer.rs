//! Rowhammer-scenario exploration (paper §VI "Security") — an extension
//! experiment beyond the paper's figures.
//!
//! The paper's own access viruses run *cache-filtered* (no `clflush`,
//! §V-A.4), which is why their Fig. 11 results do not show the classic
//! ±1-row aggressor signature. This experiment contrasts the two regimes
//! on the same victim rows:
//!
//! * **cached** — the paper's regime: ordinary loads, the cache absorbs
//!   most of the access stream;
//! * **flush** — the attacker's regime: every access reaches DRAM
//!   (`clflush` analogue), raising the activation rate by the inverse miss
//!   ratio and pushing the nearest same-bank rows deep into saturation.

use crate::error::DStressError;
use crate::evaluate::Metric;
use crate::report::TextTable;
use crate::scale::ExperimentScale;
use crate::search::{DStress, EnvKind, WORST_WORD};
use dstress_dram::geometry::RowKey;
use dstress_vpl::BoundValue;
use serde::{Deserialize, Serialize};

/// One regime's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeOutcome {
    /// Regime label.
    pub regime: String,
    /// Victim-row CEs per run.
    pub ce_per_run: f64,
    /// Total UEs over the runs.
    pub total_ue: u64,
    /// Runs stopped by a UE.
    pub ue_runs: u32,
}

/// The rowhammer-exploration report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowhammerReport {
    /// Victim rows under attack.
    pub victims: Vec<RowKey>,
    /// Outcomes per regime (data-only, cached hammer, flush hammer).
    pub regimes: Vec<RegimeOutcome>,
}

/// Runs the experiment: data-only baseline, cached hammering, and
/// flush-mode hammering of the nearest same-bank aggressor rows.
///
/// # Errors
///
/// Propagates profiling and evaluation failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<RowhammerReport, DStressError> {
    let temp = 60.0;
    let mut dstress = DStress::new(scale, seed);
    let victims = dstress.profile_victims(temp, WORST_WORD)?;
    let metric = Metric::CeInRows(victims.clone());

    // The classic double-sided aggressor selection: only the immediate
    // same-bank neighbours (chunk offsets ±8 → bits 24 and 39).
    let mut double_sided = vec![0u64; 64];
    double_sided[24] = 1; // chunk offset -8 (same bank, row-1)
    double_sided[39] = 1; // chunk offset +8 (same bank, row+1)

    let mut regimes = Vec::new();

    // Data-only reference.
    let data = dstress.measure(
        &EnvKind::Word64,
        [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into(),
        temp,
        metric.clone(),
    )?;
    regimes.push(RegimeOutcome {
        regime: "data-only".into(),
        ce_per_run: data.fitness,
        total_ue: data.total_ue,
        ue_runs: data.ue_runs,
    });

    // Cached hammering (the paper's regime).
    let env = EnvKind::RowAccess {
        victims: victims.clone(),
        fill: WORST_WORD,
    };
    let cached = dstress.measure(
        &env,
        [("SEL".to_string(), BoundValue::Array(double_sided.clone()))].into(),
        temp,
        metric.clone(),
    )?;
    regimes.push(RegimeOutcome {
        regime: "hammer (cached)".into(),
        ce_per_run: cached.fitness,
        total_ue: cached.total_ue,
        ue_runs: cached.ue_runs,
    });

    // Flush-mode hammering (the attacker's regime): every access reaches
    // DRAM.
    let mut flush_scale = dstress.scale;
    flush_scale.server.access.model_cache = false;
    let flush_dstress = DStress::new(flush_scale, seed);
    let flushed = flush_dstress.measure(
        &env,
        [("SEL".to_string(), BoundValue::Array(double_sided))].into(),
        temp,
        metric,
    )?;
    regimes.push(RegimeOutcome {
        regime: "hammer (clflush)".into(),
        ce_per_run: flushed.fitness,
        total_ue: flushed.total_ue,
        ue_runs: flushed.ue_runs,
    });

    Ok(RowhammerReport { victims, regimes })
}

impl RowhammerReport {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Rowhammer exploration (extension, paper §VI Security)\n  victims: {:?}\n",
            self.victims
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        ));
        let mut t = TextTable::new(vec!["regime", "victim CEs/run", "UEs", "runs stopped"]);
        for r in &self.regimes {
            t.row(vec![
                r.regime.clone(),
                format!("{:.1}", r.ce_per_run),
                r.total_ue.to_string(),
                r.ue_runs.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(
            "\n(double-sided aggressors at chunk offsets ±8 — the same-bank adjacent rows)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_mode_hammers_at_least_as_hard_as_cached_mode() {
        let report = run(ExperimentScale::quick(), 41).unwrap();
        assert_eq!(report.regimes.len(), 3);
        let data = report.regimes[0].ce_per_run;
        let cached = report.regimes[1].ce_per_run;
        let flushed = report.regimes[2].ce_per_run;
        // Stress ordering: hammering >= data-only; flush >= cached (both
        // may saturate at the same plateau).
        assert!(cached >= data, "cached hammer {cached} vs data {data}");
        assert!(
            flushed >= cached * 0.99,
            "flush {flushed} vs cached {cached}"
        );
        assert!(!report.render().is_empty());
    }
}
