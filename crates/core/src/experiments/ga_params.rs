//! GA-parameter calibration (paper §V "Parameters of the GA search").
//!
//! "To find the optimal GA parameters …, we simulated the GA search for the
//! fitness function that counts the number of bits in a 64-bit chromosome
//! equal to '1'. We found that GA finds the 64-bit chromosome where all
//! bits \[are\] set to '1' for the minimum number of generations, which is
//! about 80, when: i) the mutation probability is 0.5; ii) the crossover
//! probability is 0.9 and iii) the size of population is 40."

use crate::report::TextTable;
use dstress_ga::{BitGenome, FnFitness, GaConfig, GaEngine};
use serde::{Deserialize, Serialize};

/// One grid point of the calibration sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaParamPoint {
    /// Per-chromosome mutation probability.
    pub mutation: f64,
    /// Crossover probability.
    pub crossover: f64,
    /// Population size.
    pub population: usize,
    /// Mean generations to reach the all-ones chromosome (capped at the
    /// budget when unsolved).
    pub mean_generations: f64,
    /// Fraction of seeds that found the optimum.
    pub solve_rate: f64,
}

/// The calibration sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaParamsReport {
    /// All probed grid points.
    pub points: Vec<GaParamPoint>,
    /// The best point (fewest mean generations among full-solve-rate
    /// points; ties to lower budget).
    pub best: GaParamPoint,
}

impl GaParamsReport {
    /// Renders the sweep as a text table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "mutation",
            "crossover",
            "population",
            "mean gens",
            "solve rate",
        ]);
        for p in &self.points {
            t.row(vec![
                format!("{:.1}", p.mutation),
                format!("{:.1}", p.crossover),
                p.population.to_string(),
                format!("{:.1}", p.mean_generations),
                format!("{:.0} %", p.solve_rate * 100.0),
            ]);
        }
        format!(
            "GA parameter calibration (popcount fitness, paper §V)\n{}\nbest: mutation {:.1}, crossover {:.1}, population {} -> {:.1} generations\n",
            t.render(),
            self.best.mutation,
            self.best.crossover,
            self.best.population,
            self.best.mean_generations
        )
    }
}

/// Runs the calibration sweep. `seeds` controls averaging depth.
pub fn run(seeds: u64) -> GaParamsReport {
    let mutations = [0.1, 0.3, 0.5, 0.7];
    let crossovers = [0.5, 0.7, 0.9];
    let populations = [20usize, 40, 60];
    let mut points = Vec::new();
    for &mutation in &mutations {
        for &crossover in &crossovers {
            for &population in &populations {
                let mut total_gens = 0.0;
                let mut solved = 0u64;
                for seed in 0..seeds {
                    let mut config = GaConfig::paper_defaults();
                    config.mutation_prob = mutation;
                    config.crossover_prob = crossover;
                    config.population_size = population;
                    config.max_generations = 300;
                    // Stop as soon as the optimum is found: measure
                    // time-to-solution, not time-to-similarity.
                    let mut engine = GaEngine::new(config, seed.wrapping_mul(77) + 5);
                    let mut solved_at: Option<u32> = None;
                    let mut gen_counter = 0u32;
                    let mut fitness = FnFitness::new(|g: &BitGenome| g.count_ones() as f64);
                    let result = engine.run(|rng| BitGenome::random(rng, 64), &mut fitness);
                    for h in &result.history {
                        gen_counter = h.generation;
                        if h.best >= 64.0 {
                            solved_at = Some(h.generation);
                            break;
                        }
                    }
                    match solved_at {
                        Some(g) => {
                            solved += 1;
                            total_gens += g as f64;
                        }
                        None => total_gens += gen_counter.max(300) as f64,
                    }
                }
                points.push(GaParamPoint {
                    mutation,
                    crossover,
                    population,
                    mean_generations: total_gens / seeds as f64,
                    solve_rate: solved as f64 / seeds as f64,
                });
            }
        }
    }
    let best = *points
        .iter()
        .filter(|p| p.solve_rate >= 0.99)
        .min_by(|a, b| {
            a.mean_generations
                .partial_cmp(&b.mean_generations)
                .expect("finite generation counts")
        })
        .unwrap_or(&points[0]);
    GaParamsReport { points, best }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_full_grid_and_plausible_optimum() {
        let report = run(2);
        assert_eq!(report.points.len(), 4 * 3 * 3);
        // The paper's region (mutation >= 0.3, crossover >= 0.7, pop >= 40)
        // should solve reliably.
        let strong = report
            .points
            .iter()
            .find(|p| p.mutation == 0.5 && p.crossover == 0.9 && p.population == 40)
            .expect("grid contains the paper point");
        assert!(
            strong.solve_rate > 0.49,
            "paper point solve rate {}",
            strong.solve_rate
        );
        assert!(!report.render().is_empty());
    }
}
