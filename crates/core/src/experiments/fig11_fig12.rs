//! Figs. 11 & 12 — the memory-access-pattern searches.
//!
//! Paper observations reproduced here:
//!
//! * access template 1 (neighbour-row bitmap) raises victim-row CEs ≈ 71 %
//!   over the worst 24 KB data pattern, but the search does *not* converge
//!   (SMF ≈ 0.5): disturbance saturates, so many row subsets are equally
//!   effective (Fig. 11);
//! * access template 2 (`aᵢ·x + bᵢ` strides over 16 rows) sits ≈ 56 %
//!   below template 1 (fewer aggressor rows) yet ≈ 10 % above the 24 KB
//!   data pattern; weighted-Jaccard similarity stays ≈ 0.45 (Fig. 12).

use crate::error::DStressError;
use crate::evaluate::Metric;
use crate::report::{percent_delta, TextTable};
use crate::scale::ExperimentScale;
use crate::search::{DStress, EnvKind, WORST_WORD};
use dstress_dram::geometry::RowKey;
use dstress_vpl::BoundValue;
use serde::{Deserialize, Serialize};

/// The Figs. 11–12 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1112Report {
    /// The error-prone rows the experiment centres on.
    pub victims: Vec<RowKey>,
    /// Victim-row CEs/run of the 24 KB-class data-pattern reference.
    pub data_pattern_ce: f64,
    /// Best victim-row CEs/run of access template 1.
    pub row_access_ce: f64,
    /// Template 1 leaderboard similarity (SMF).
    pub row_access_smf: f64,
    /// Whether template 1 converged.
    pub row_access_converged: bool,
    /// Per-row selection frequency across the template-1 leaderboard
    /// (index 0..64 ↔ rows −32..−1, +1..+32 of the victims).
    pub selection_frequency: Vec<f64>,
    /// Best victim-row CEs/run of access template 2.
    pub stride_ce: f64,
    /// Template 2 leaderboard similarity (weighted Jaccard).
    pub stride_jw: f64,
    /// Whether template 2 converged.
    pub stride_converged: bool,
    /// The winning stride coefficients (a₁…a₁₆, b₁…b₁₆).
    pub stride_coeffs: Vec<u64>,
}

/// Runs the Fig. 11 + Fig. 12 experiments.
///
/// `data_pattern_ce` is the 24 KB-class reference fitness (from Fig. 9);
/// when absent, the worst 64-bit pattern's victim-row count is used — the
/// 24 KB winner is within ≈ 16 % of it, so the comparison shape survives.
///
/// # Errors
///
/// Propagates profiling and campaign failures.
pub fn run(
    scale: ExperimentScale,
    seed: u64,
    data_pattern_ce: Option<f64>,
) -> Result<Fig1112Report, DStressError> {
    let mut dstress = DStress::new(scale, seed);
    let temp = 60.0;
    let victims = dstress.profile_victims(temp, WORST_WORD)?;

    let reference = match data_pattern_ce {
        Some(ce) => ce,
        None => {
            dstress
                .measure(
                    &EnvKind::Word64,
                    [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into(),
                    temp,
                    Metric::CeInRows(victims.clone()),
                )?
                .fitness
        }
    };

    let row_access = dstress.search_row_access(temp, victims.clone(), WORST_WORD)?;
    let stride = dstress.search_stride_access(temp, victims.clone(), WORST_WORD)?;

    // Per-row selection frequency across the leaderboard (the Fig. 11
    // scatter: which rows the 40 best access patterns touch).
    let mut selection_frequency = vec![0.0; 64];
    for (genome, _) in &row_access.result.leaderboard {
        for (r, freq) in selection_frequency.iter_mut().enumerate() {
            if genome.bit(r) {
                *freq += 1.0;
            }
        }
    }
    let n = row_access.result.leaderboard.len().max(1) as f64;
    for f in &mut selection_frequency {
        *f /= n;
    }

    Ok(Fig1112Report {
        victims,
        data_pattern_ce: reference,
        row_access_ce: row_access.result.best_fitness,
        row_access_smf: row_access.result.similarity,
        row_access_converged: row_access.result.converged,
        selection_frequency,
        stride_ce: stride.result.best_fitness,
        stride_jw: stride.result.similarity,
        stride_converged: stride.result.converged,
        stride_coeffs: stride.result.best.values().to_vec(),
    })
}

impl Fig1112Report {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fig. 11 - access virus (row bitmap), 60C\n  victims: {:?}\n",
            self.victims
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
        ));
        let mut t = TextTable::new(vec!["virus", "victim-row CEs/run", "vs data pattern"]);
        t.row(vec![
            "worst data pattern (reference)".into(),
            format!("{:.1}", self.data_pattern_ce),
            "-".into(),
        ]);
        t.row(vec![
            "access template 1 GA best".into(),
            format!("{:.1}", self.row_access_ce),
            percent_delta(self.row_access_ce, self.data_pattern_ce),
        ]);
        t.row(vec![
            "access template 2 GA best".into(),
            format!("{:.1}", self.stride_ce),
            percent_delta(self.stride_ce, self.data_pattern_ce),
        ]);
        out.push_str(&t.render());
        out.push_str(&format!(
            "\ntemplate 1: SMF {:.2}, converged {} (paper: non-convergent, SMF ~0.5)\n",
            self.row_access_smf, self.row_access_converged
        ));
        out.push_str("row-selection frequency over the leaderboard (rows -32..+32):\n  ");
        for (i, f) in self.selection_frequency.iter().enumerate() {
            if i == 32 {
                out.push_str("| ");
            }
            out.push(match (f * 10.0) as u32 {
                0..=2 => '.',
                3..=5 => 'o',
                6..=8 => 'O',
                _ => '#',
            });
        }
        out.push('\n');
        out.push_str(&format!(
            "\nFig. 12 - access virus (a*x+b strides): JW {:.2}, converged {}, vs template 1 {}\n",
            self.stride_jw,
            self.stride_converged,
            percent_delta(self.stride_ce, self.row_access_ce),
        ));
        out.push_str(&format!(
            "  winning coefficients a = {:?}\n                       b = {:?}\n",
            &self.stride_coeffs[..16],
            &self.stride_coeffs[16..],
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_handles_synthetic_report() {
        let report = Fig1112Report {
            victims: vec![RowKey::new(0, 0, 13)],
            data_pattern_ce: 100.0,
            row_access_ce: 171.0,
            row_access_smf: 0.5,
            row_access_converged: false,
            selection_frequency: vec![0.5; 64],
            stride_ce: 110.0,
            stride_jw: 0.45,
            stride_converged: false,
            stride_coeffs: (0..32).collect(),
        };
        let s = report.render();
        assert!(s.contains("+71.0 %"));
        assert!(s.contains("+10.0 %"));
        assert!(s.contains("JW 0.45"));
    }
}
