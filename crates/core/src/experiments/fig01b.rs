//! Fig. 1b — workload-dependent DRAM error behaviour.
//!
//! The paper's motivating polar plot: single-bit errors per DIMM/rank for
//! *kmeans* vs *memcached* under relaxed parameters at 50 °C; the counts
//! differ by up to 1000× between workloads on one DIMM and 633× between
//! DIMMs under one workload.

use crate::error::DStressError;
use crate::report::TextTable;
use crate::scale::ExperimentScale;
use crate::workloads::Workload;
use dstress_platform::{XGene2Server, MCUS, RANKS};
use serde::{Deserialize, Serialize};

/// CE counts per (DIMM, rank) for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadErrors {
    /// The workload.
    pub workload: Workload,
    /// `counts[mcu][rank]` = CEs summed over the runs.
    pub counts: Vec<[u64; RANKS]>,
}

/// The Fig. 1b report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig01bReport {
    /// Per-workload per-domain counts.
    pub workloads: Vec<WorkloadErrors>,
    /// Largest per-domain ratio between the two workloads.
    pub max_workload_ratio: f64,
    /// Largest cross-DIMM ratio under a single workload.
    pub max_dimm_ratio: f64,
}

/// Runs the Fig. 1b experiment: both workloads deployed across all DIMMs,
/// the whole second domain relaxed, every DIMM held at 50 °C.
///
/// # Errors
///
/// Propagates workload deployment failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Fig01bReport, DStressError> {
    let mut results = Vec::new();
    for workload in [Workload::Kmeans, Workload::Memcached] {
        let mut server = XGene2Server::new(scale.server);
        // Fig. 1b relaxes parameters for the observed DIMMs; apply the
        // §IV configuration and heat every DIMM to 50 °C.
        server.relax_second_domain();
        server.set_trefp(0, dstress_dram::env::MAX_TREFP_S);
        server.set_trefp(1, dstress_dram::env::MAX_TREFP_S);
        server.set_vdd(0, 1.428);
        for mcu in 0..MCUS {
            server
                .set_dimm_temperature(mcu, 50.0)
                .map_err(crate::error::PlatformError::from)?;
        }
        let run = workload
            .deploy(&mut server, seed)
            .map_err(|e| DStressError::Experiment(format!("workload deployment failed: {e}")))?;
        let mut counts = vec![[0u64; RANKS]; MCUS];
        for outcome in server.evaluate_runs(&run, scale.runs_per_virus, seed)? {
            for d in &outcome.per_domain {
                counts[d.mcu][d.rank] += d.counts.ce;
            }
        }
        results.push(WorkloadErrors { workload, counts });
    }

    // Ratios.
    let mut max_workload_ratio: f64 = 1.0;
    for mcu in 0..MCUS {
        for rank in 0..RANKS {
            let a = results[0].counts[mcu][rank].max(1) as f64;
            let b = results[1].counts[mcu][rank].max(1) as f64;
            max_workload_ratio = max_workload_ratio.max(a / b).max(b / a);
        }
    }
    let mut max_dimm_ratio: f64 = 1.0;
    for w in &results {
        let per_dimm: Vec<u64> = w.counts.iter().map(|r| r[0] + r[1]).collect();
        for &a in &per_dimm {
            for &b in &per_dimm {
                if b > 0 && a > 0 {
                    max_dimm_ratio = max_dimm_ratio.max(a as f64 / b as f64);
                }
            }
        }
    }

    Ok(Fig01bReport {
        workloads: results,
        max_workload_ratio,
        max_dimm_ratio,
    })
}

impl Fig01bReport {
    /// Renders the polar data as a table (θ = DIMM/rank, ρ = CE count).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 1b - single-bit errors per DIMM/rank (relaxed parameters, 50C)\n");
        let mut t = TextTable::new(vec!["domain", "kmeans", "memcached"]);
        for mcu in 0..MCUS {
            for rank in 0..RANKS {
                t.row(vec![
                    format!("DIMM{mcu}/rank{rank}"),
                    self.workloads[0].counts[mcu][rank].to_string(),
                    self.workloads[1].counts[mcu][rank].to_string(),
                ]);
            }
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "\nmax workload-to-workload ratio (same domain): {:.0}x\nmax DIMM-to-DIMM ratio (same workload): {:.0}x\n",
            self.max_workload_ratio, self.max_dimm_ratio
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig01b_shows_workload_and_dimm_variation() {
        let report = run(ExperimentScale::quick(), 11).unwrap();
        assert_eq!(report.workloads.len(), 2);
        assert!(
            report.max_workload_ratio > 1.5,
            "workloads should differ: ratio {}",
            report.max_workload_ratio
        );
        assert!(
            report.max_dimm_ratio > 2.0,
            "DIMMs should differ: ratio {}",
            report.max_dimm_ratio
        );
        let s = report.render();
        assert!(s.contains("DIMM2/rank0"));
    }
}
