//! MARCH-test comparison (extension; paper §II/§VII).
//!
//! "Vendors test reliability of DRAM chips using MARCH and MATS tests …
//! Nonetheless, these tests are not effective for revealing some types of
//! DRAM errors, such as neighbourhood pattern-sensitive faults induced by
//! the data in adjacent cells." This experiment runs the standard MARCH
//! algorithms as stress workloads on the simulated DIMM and compares the
//! errors they manifest against the synthesized worst-case virus.

use crate::error::DStressError;
use crate::evaluate::Metric;
use crate::march::{measure_march, MarchTest};
use crate::report::{percent_delta, TextTable};
use crate::scale::ExperimentScale;
use crate::search::{DStress, EnvKind, WORST_WORD};
use dstress_vpl::BoundValue;
use serde::{Deserialize, Serialize};

/// One row of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarchRow {
    /// Test name.
    pub name: String,
    /// Conventional complexity (operations per word).
    pub ops_per_word: usize,
    /// CEs per run the test manifested as a stress workload.
    pub ce_per_run: f64,
    /// Read-verify mismatches the test itself observed.
    pub mismatches: u64,
}

/// The comparison report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarchReport {
    /// One row per MARCH algorithm.
    pub tests: Vec<MarchRow>,
    /// The synthesized worst-case virus's CEs per run.
    pub virus_ce: f64,
}

/// Runs the comparison at 60 °C.
///
/// # Errors
///
/// Propagates execution failures.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<MarchReport, DStressError> {
    let temp = 60.0;
    let dstress = DStress::new(scale, seed);
    let mut tests = Vec::new();
    for test in MarchTest::all() {
        let (outcome, report) = measure_march(&dstress, &test, temp)?;
        tests.push(MarchRow {
            name: test.name.clone(),
            ops_per_word: test.ops_per_word(),
            ce_per_run: outcome.fitness,
            mismatches: report.mismatches,
        });
    }
    let virus_ce = dstress
        .measure(
            &EnvKind::Word64,
            [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into(),
            temp,
            Metric::CeAverage,
        )?
        .fitness;
    Ok(MarchReport { tests, virus_ce })
}

impl MarchReport {
    /// Renders the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("MARCH-test comparison (extension, paper §II/§VII), 60C\n");
        let mut t = TextTable::new(vec![
            "test",
            "complexity",
            "CEs/run",
            "vs synthesized virus",
        ]);
        for row in &self.tests {
            t.row(vec![
                row.name.clone(),
                format!("{}N", row.ops_per_word),
                format!("{:.1}", row.ce_per_run),
                percent_delta(row.ce_per_run, self.virus_ce),
            ]);
        }
        t.row(vec![
            "synthesized virus".into(),
            "2N".into(),
            format!("{:.1}", self.virus_ce),
            "-".into(),
        ]);
        out.push_str(&t.render());
        out.push_str(
            "\n(every MARCH background is a uniform 0/1 word: none reaches the pattern-sensitive \
             cells the 1100-family virus charges)\n",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virus_dominates_every_march_algorithm() {
        let report = run(ExperimentScale::quick(), 51).unwrap();
        assert_eq!(report.tests.len(), 4);
        for row in &report.tests {
            assert!(
                report.virus_ce > row.ce_per_run,
                "{}: {} vs virus {}",
                row.name,
                row.ce_per_run,
                report.virus_ce
            );
            assert_eq!(row.mismatches, 0, "{} saw no logical mismatches", row.name);
        }
    }
}
