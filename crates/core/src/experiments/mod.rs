//! Experiment drivers: one module per table/figure of the paper's
//! evaluation section (see DESIGN.md §5 for the index and EXPERIMENTS.md
//! for paper-vs-measured results).

pub mod ablation;
pub mod efficiency;
pub mod fig01b;
pub mod fig08;
pub mod fig09_fig10;
pub mod fig11_fig12;
pub mod fig14;
pub mod ga_params;
pub mod march_comparison;
pub mod rowhammer;
pub mod sdc;
