//! The `dstress` command-line tool: synthesize, measure and exploit DRAM
//! stress viruses on the simulated experimental platform.
//!
//! ```text
//! dstress search-word64 [--temp C] [--minimize] [--ue] [--scale quick|paper] [--seed N] [--db FILE] [--resume] [--workers N] [--max-retries N] [--quarantine-after N]
//! dstress measure --pattern HEX [--temp C]
//! dstress baselines [--temp C]
//! dstress victims [--temp C]
//! dstress margins [--temp C] [--ce-tolerated]
//! dstress march
//! dstress disasm [--pattern HEX] [--opt none|full]
//! dstress info
//! dstress serve --dir DIR [--addr HOST:PORT] [--workers N] [--exit-when-idle]
//! dstress submit --addr HOST:PORT [--temp C] [--ue] [--minimize] [--scale S] [--seed N] [--step-budget N]
//! dstress status --addr HOST:PORT [--campaign N]
//! dstress watch --addr HOST:PORT --campaign N
//! dstress pause|resume|cancel --addr HOST:PORT --campaign N
//! ```

use dstress::search::BitCampaign;
use dstress::service::{
    campaign_db_paths, read_frame, run_word64_campaigns_journaled, CampaignSpec, DaemonConfig,
    Dstressd, Event, Request, Response, SeqEvent, StatusReport,
};
use dstress::usecases::{find_marginal_trefp, savings_at_margin, SafetyCriterion};
use dstress::{
    Baseline, CampaignJournal, DStress, DiskStorage, EnvKind, ExperimentScale, Metric,
    SupervisionPolicy, WORST_WORD,
};
use dstress_vpl::{compile_staged, BoundValue, PassConfig};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::process::ExitCode;

/// Minimal flag parser: `--name value` and boolean `--name`.
struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                flags.insert(name.to_string(), value);
            } else {
                positional.push(arg);
            }
        }
        Ok(Args { positional, flags })
    }

    fn f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }

    fn u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => {
                if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).map_err(|e| format!("--{name}: {e}"))
                } else {
                    v.parse().map_err(|e| format!("--{name}: {e}"))
                }
            }
        }
    }

    fn bool(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

/// Rejects flags the command does not know. A typo like `--tmep 80` would
/// otherwise be silently ignored and the search run at the default
/// temperature.
fn check_flags(args: &Args, allowed: &[&str]) -> Result<(), String> {
    let mut unknown: Vec<&str> = args
        .flags
        .keys()
        .map(String::as_str)
        .filter(|name| !allowed.contains(name))
        .collect();
    unknown.sort_unstable();
    match unknown.first() {
        Some(name) => Err(format!("unknown flag --{name}")),
        None => Ok(()),
    }
}

fn scale_from(args: &Args) -> Result<ExperimentScale, String> {
    match args.str("scale") {
        None | Some("paper") => Ok(ExperimentScale::paper()),
        Some("quick") => Ok(ExperimentScale::quick()),
        Some(other) => Err(format!("unknown scale `{other}` (quick|paper)")),
    }
}

/// Builds the evaluation-supervision policy from `--max-retries` and
/// `--quarantine-after`. Malformed values are rejected here so they reach
/// the usage-and-exit-1 path instead of panicking deep in the engine.
fn supervision_from(args: &Args) -> Result<SupervisionPolicy, String> {
    let max_retries = args.u64(
        "max-retries",
        u64::from(SupervisionPolicy::default().max_retries),
    )?;
    let quarantine_after = args.u64(
        "quarantine-after",
        u64::from(SupervisionPolicy::default().quarantine_after),
    )?;
    let policy = SupervisionPolicy {
        max_retries: u32::try_from(max_retries)
            .map_err(|_| format!("--max-retries: {max_retries} does not fit in 32 bits"))?,
        quarantine_after: u32::try_from(quarantine_after).map_err(|_| {
            format!("--quarantine-after: {quarantine_after} does not fit in 32 bits")
        })?,
        ..SupervisionPolicy::default()
    };
    policy
        .validate()
        .map_err(|e| format!("--quarantine-after: {e}"))?;
    Ok(policy)
}

fn usage() -> &'static str {
    "dstress - automatic synthesis of DRAM reliability stress viruses\n\
     \n\
     USAGE:\n\
       dstress <command> [flags]\n\
     \n\
     COMMANDS:\n\
       search-word64   GA search for the worst 64-bit data pattern\n\
                       [--temp C] [--minimize] [--ue] [--scale quick|paper]\n\
                       [--seed N] [--db FILE] [--resume] [--workers N]\n\
                       [--campaigns N] [--max-retries N] [--quarantine-after N]\n\
                       --campaigns N >= 2 runs N independent searches\n\
                       concurrently, fair-share scheduled over one\n\
                       persistent worker pool (results identical to\n\
                       running each alone). Combined with --db FILE,\n\
                       campaign i journals into its own FILE-derived\n\
                       `-ci` sibling and --resume continues every\n\
                       interrupted campaign bit-identically.\n\
                       With --db the campaign is crash-safe: every virus is\n\
                       journaled and --resume continues an interrupted\n\
                       search bit-identically. Faulting evaluations are\n\
                       retried up to --max-retries times (default 3) and\n\
                       the candidate quarantined after --quarantine-after\n\
                       faults (default 4); resume a supervised campaign\n\
                       with the same flags.\n\
       measure         Measure one data pattern  --pattern HEX [--temp C]\n\
       baselines       Measure the classic micro-benchmarks [--temp C]\n\
       victims         Profile the error-prone rows [--temp C]\n\
       margins         Find the safe TREFP margin [--temp C] [--ce-tolerated]\n\
       march           Compare MARCH tests against the synthesized virus\n\
       disasm          Dump the word64 virus bytecode before/after each\n\
                       optimization pass  [--pattern HEX] [--opt none|full]\n\
                       [--scale quick|paper]\n\
       info            Show the platform configuration\n\
       serve           Run the dstressd campaign daemon  --dir DIR\n\
                       [--addr HOST:PORT] [--workers N] [--event-capacity N]\n\
                       [--exit-when-idle]  (resumes every unfinished\n\
                       campaign in DIR bit-identically, then serves\n\
                       line-delimited JSON on the printed address)\n\
       submit          Submit a campaign to a daemon  --addr HOST:PORT\n\
                       [--temp C] [--ue] [--minimize] [--scale quick|paper]\n\
                       [--seed N] [--step-budget N]\n\
       status          Show one campaign or all  --addr HOST:PORT\n\
                       [--campaign N]\n\
       watch           Stream a campaign's progress events until it\n\
                       finishes  --addr HOST:PORT --campaign N\n\
                       [--from-seq N]  (reconnects with exponential\n\
                       backoff after a connection drop, resuming from\n\
                       the last event it saw)\n\
       pause           Pause a running campaign   --addr HOST:PORT --campaign N\n\
       resume          Resume a paused campaign   --addr HOST:PORT --campaign N\n\
       cancel          Cancel a campaign          --addr HOST:PORT --campaign N\n"
}

fn print_word64_campaign(campaign: &BitCampaign) {
    println!(
        "best pattern {:#018x}  fitness {:.1}  ({} generations, SMF {:.2}, converged {})",
        campaign.result.best.to_words()[0],
        campaign.result.best_fitness,
        campaign.result.generations,
        campaign.result.similarity,
        campaign.result.converged,
    );
    println!("top of the leaderboard:");
    for (genome, fitness) in campaign.result.leaderboard.iter().take(5) {
        println!("  {:#018x}  {fitness:.1}", genome.to_words()[0]);
    }
    let stats = &campaign.result.eval_stats;
    println!(
        "evaluations: {} run, {} served from cache, {} worker{} ({:.2} s evaluating)",
        stats.evaluations,
        stats.cache_hits,
        stats.workers,
        if stats.workers == 1 { "" } else { "s" },
        stats.eval_seconds(),
    );
    println!(
        "compiles: {} programs reused from the compile cache",
        stats.compile_hits,
    );
    print_pool_stats(stats);
}

/// Pool observability: printed only when the campaign actually ran on the
/// persistent work-stealing pool (the serial engine path leaves the
/// per-worker task counts empty).
fn print_pool_stats(stats: &dstress::EvalStats) {
    if stats.worker_tasks.is_empty() {
        return;
    }
    let tasks: Vec<String> = stats.worker_tasks.iter().map(u64::to_string).collect();
    println!(
        "pool: {} steal{}, max worker idle {:.3} s, tasks per worker [{}]",
        stats.steals,
        if stats.steals == 1 { "" } else { "s" },
        stats.max_worker_idle_ns as f64 / 1e9,
        tasks.join(", "),
    );
    println!(
        "replica caches: {} warm hits, {} cold misses",
        stats.replica_warm_hits, stats.replica_cold_misses,
    );
}

fn require_addr(args: &Args) -> Result<&str, String> {
    args.str("addr")
        .ok_or_else(|| "this command requires --addr HOST:PORT (printed by `dstress serve`)".into())
}

fn campaign_arg(args: &Args) -> Result<u64, String> {
    if args.str("campaign").is_none() {
        return Err("this command requires --campaign N (see `dstress status`)".into());
    }
    args.u64("campaign", 0)
}

fn send_line<T: serde::Serialize>(stream: &mut TcpStream, value: &T) -> Result<(), String> {
    let mut line = serde_json::to_string(value).map_err(|e| e.to_string())?;
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("sending to daemon: {e}"))
}

fn read_reply<R: std::io::BufRead>(reader: &mut R) -> Result<Response, String> {
    let frame = read_frame(reader).map_err(|e| format!("reading daemon reply: {e:?}"))?;
    serde_json::from_str(&frame).map_err(|e| format!("malformed daemon reply: {e}"))
}

/// One request/response round trip on a fresh connection.
fn service_request(addr: &str, request: &Request) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    send_line(&mut stream, request)?;
    let mut reader = std::io::BufReader::new(stream);
    read_reply(&mut reader)
}

fn print_report(report: &StatusReport) {
    let best = report
        .best
        .as_ref()
        .map(|b| {
            format!(
                "{:#018x} ({:.1})",
                b.genes.first().copied().unwrap_or(0),
                b.fitness
            )
        })
        .unwrap_or_else(|| "-".into());
    println!(
        "campaign {:>3}  {:<20} {:<13} gen {:>4}  best {best}  \
         {} evaluations ({} cached), {} incidents",
        report.campaign,
        report.name,
        report.state,
        report.generation,
        report.evaluations,
        report.cache_hits,
        report.incidents,
    );
    if let Some(error) = &report.error {
        println!("             quarantined: {error} (resume to retry recovery)");
    }
}

fn print_event(event: &Event) {
    match event {
        Event::Generation {
            campaign,
            generation,
            best,
            leaderboard_delta,
            stats,
            incidents,
        } => {
            let best = best
                .as_ref()
                .map(|b| {
                    format!(
                        "{:#018x} ({:.1})",
                        b.genes.first().copied().unwrap_or(0),
                        b.fitness
                    )
                })
                .unwrap_or_else(|| "-".into());
            println!(
                "campaign {campaign} gen {generation}: best {best}, +{} leaderboard entries, \
                 {} evaluations ({} cached), {} incidents this round",
                leaderboard_delta.len(),
                stats.evaluations,
                stats.cache_hits,
                incidents.len(),
            );
        }
        Event::Completed {
            campaign,
            generations,
            converged,
            leaderboard,
        } => {
            println!(
                "campaign {campaign} finished after {generations} generations \
                 (converged: {converged}); final leaderboard:"
            );
            for entry in leaderboard.iter().take(5) {
                println!(
                    "  {:#018x}  {:.1}",
                    entry.genes.first().copied().unwrap_or(0),
                    entry.fitness
                );
            }
        }
        Event::Cancelled { campaign } => println!("campaign {campaign} cancelled"),
        Event::Failed {
            campaign,
            error,
            at_seq,
            resume_backoff_ms,
        } => {
            println!(
                "campaign {campaign} FAILED at seq {at_seq}: {error} \
                 (quarantined; `dstress resume` retries recovery, \
                 suggested backoff {resume_backoff_ms} ms)"
            );
        }
        Event::Lagged { missed } => {
            println!("(fell behind the event stream; {missed} events dropped)")
        }
    }
}

/// How one watch connection ended: the daemon sent its end-of-stream
/// marker (the campaign settled — done, cancelled, or quarantined with
/// its bus still open but drained), or the connection dropped mid-stream
/// (daemon restart, network fault) and the client should reconnect.
enum WatchOutcome {
    Settled,
    Dropped,
}

/// One watch connection: subscribe from `from_seq`, print events, and
/// bump `next_from` past every sequenced event so a reconnect resumes
/// exactly where this connection left off (seq-0 lines are
/// connection-local and never advance the cursor).
fn watch_once(addr: &str, campaign: u64, next_from: &mut u64) -> Result<WatchOutcome, String> {
    let mut stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(_) => return Ok(WatchOutcome::Dropped),
    };
    let request = Request::Watch {
        campaign,
        from_seq: *next_from,
    };
    if send_line(&mut stream, &request).is_err() {
        return Ok(WatchOutcome::Dropped);
    }
    let reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(e) => return Err(format!("connecting to {addr}: {e}")),
    };
    let mut reader = std::io::BufReader::new(reader);
    // The handshake must answer Watching; a typed daemon error (unknown
    // campaign…) is fatal, not a reconnect cue.
    match read_reply(&mut reader) {
        Ok(Response::Watching { .. }) => {}
        Ok(Response::Error { message }) => return Err(format!("daemon: {message}")),
        Ok(other) => return Err(format!("unexpected reply to watch: {other:?}")),
        Err(_) => return Ok(WatchOutcome::Dropped),
    }
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(_) => return Ok(WatchOutcome::Dropped),
        };
        match serde_json::from_str::<SeqEvent>(&frame) {
            Ok(stamped) => {
                print_event(&stamped.event);
                if stamped.seq > 0 {
                    *next_from = (*next_from).max(stamped.seq + 1);
                }
            }
            // Anything that is not an event is the daemon's
            // end-of-stream marker: the campaign settled.
            Err(_) => return Ok(WatchOutcome::Settled),
        }
    }
}

/// `dstress watch`: stream a campaign's events, surviving daemon
/// restarts. A dropped connection is retried with exponential backoff
/// (200 ms doubling, at most [`WATCH_MAX_ATTEMPTS`] consecutive
/// failures); any received event proves the daemon is back and resets
/// the attempt counter. Each reconnect asks for `--from-seq
/// last_seen + 1`, so the resumed stream replays no duplicate and drops
/// nothing the daemon retained.
fn watch_campaign(addr: &str, campaign: u64, from_seq: u64) -> Result<(), String> {
    const WATCH_MAX_ATTEMPTS: u32 = 5;
    let mut next_from = from_seq;
    let mut attempts: u32 = 0;
    loop {
        let before = next_from;
        match watch_once(addr, campaign, &mut next_from)? {
            WatchOutcome::Settled => return Ok(()),
            WatchOutcome::Dropped => {
                if next_from > before {
                    // The connection made progress before dropping, so
                    // the daemon was alive: start the backoff over.
                    attempts = 0;
                }
                attempts += 1;
                if attempts > WATCH_MAX_ATTEMPTS {
                    return Err(format!(
                        "watch: lost the daemon at {addr} \
                         ({WATCH_MAX_ATTEMPTS} reconnect attempts failed); \
                         rerun with --from-seq {next_from} to resume"
                    ));
                }
                let backoff_ms = 200u64 << (attempts - 1);
                eprintln!(
                    "watch: connection lost; reconnecting from seq {next_from} \
                     in {backoff_ms} ms (attempt {attempts}/{WATCH_MAX_ATTEMPTS})"
                );
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
            }
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw)?;
    let command = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    let allowed: &[&str] = match command {
        "help" | "--help" | "-h" => &[],
        "info" => &["scale"],
        "search-word64" => &[
            "temp",
            "minimize",
            "ue",
            "scale",
            "seed",
            "db",
            "resume",
            "workers",
            "campaigns",
            "max-retries",
            "quarantine-after",
        ],
        "measure" => &["pattern", "temp", "scale", "seed"],
        "baselines" | "victims" => &["temp", "scale", "seed"],
        "margins" => &["temp", "ce-tolerated", "scale", "seed"],
        "march" => &["scale", "seed"],
        "disasm" => &["pattern", "opt", "scale"],
        "serve" => &["dir", "addr", "workers", "event-capacity", "exit-when-idle"],
        "submit" => &[
            "addr",
            "temp",
            "ue",
            "minimize",
            "scale",
            "seed",
            "step-budget",
        ],
        "status" => &["addr", "campaign"],
        "watch" => &["addr", "campaign", "from-seq"],
        "pause" | "resume" | "cancel" => &["addr", "campaign"],
        other => return Err(format!("unknown command `{other}`")),
    };
    check_flags(&args, allowed)?;
    let scale = scale_from(&args)?;
    let seed = args.u64("seed", 42)?;
    let temp = args.f64("temp", 60.0)?;
    match command {
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        "info" => {
            let geo = scale.server.dimm.geometry;
            println!("scale           : {}", scale.name);
            println!(
                "DIMM geometry   : {} ranks x {} banks x {} rows x {} B rows ({} KiB)",
                geo.ranks,
                geo.banks,
                geo.rows_per_bank,
                geo.row_bytes,
                geo.capacity_bytes() / 1024
            );
            println!("windows per run : {}", scale.server.windows_per_run);
            println!("runs per virus  : {}", scale.runs_per_virus);
            println!(
                "GA              : population {}, mutation {}, crossover {}, budget {} generations",
                scale.ga.population_size,
                scale.ga.mutation_prob,
                scale.ga.crossover_prob,
                scale.ga.max_generations
            );
            Ok(())
        }
        "search-word64" => {
            let workers = args.u64("workers", 1)?.max(1) as usize;
            let campaigns = args.u64("campaigns", 1)?;
            if campaigns == 0 {
                return Err("--campaigns: must be at least 1".into());
            }
            let campaigns = usize::try_from(campaigns)
                .map_err(|_| format!("--campaigns: {campaigns} does not fit in usize"))?;
            let supervision = supervision_from(&args)?;
            let mut dstress = DStress::new(scale, seed);
            dstress.set_workers(workers);
            dstress.set_supervision(supervision);
            let metric = if args.bool("ue") {
                Metric::UeRuns
            } else {
                Metric::CeAverage
            };
            let minimize = args.bool("minimize");
            let resume = args.bool("resume");
            if resume && args.str("db").is_none() {
                return Err("--resume requires --db FILE (the journal to continue from)".into());
            }
            if campaigns > 1 {
                if let Some(db) = args.str("db") {
                    let paths = campaign_db_paths(db, campaigns)?;
                    for path in &paths {
                        if resume {
                            if !path.exists() {
                                return Err(format!(
                                    "--resume: per-campaign journal `{}` is missing; \
                                     rerun with the original --campaigns/--db flags",
                                    path.display()
                                ));
                            }
                        } else if path.exists() {
                            let journal = CampaignJournal::open(DiskStorage::new(), path)
                                .map_err(|e| format!("opening {}: {e}", path.display()))?;
                            if let Some(cp) = journal.checkpoint() {
                                return Err(format!(
                                    "{} holds an interrupted search for campaign `{}`; \
                                     pass --resume to continue it",
                                    path.display(),
                                    cp.campaign
                                ));
                            }
                        }
                    }
                    println!(
                        "scheduling {campaigns} journaled 64-bit pattern searches at {temp} C \
                         over one {workers}-worker pool ..."
                    );
                    let results = run_word64_campaigns_journaled(
                        scale,
                        seed,
                        workers,
                        supervision,
                        temp,
                        metric,
                        minimize,
                        &paths,
                    )
                    .map_err(|e| e.to_string())?;
                    for (campaign, path) in results.iter().zip(&paths) {
                        println!("\n== campaign {} ==", campaign.name);
                        print_word64_campaign(campaign);
                        println!("virus database written to {}", path.display());
                    }
                    return Ok(());
                }
                println!(
                    "scheduling {campaigns} concurrent 64-bit pattern searches at {temp} C \
                     over one {workers}-worker pool ..."
                );
                let results = dstress
                    .search_word64_concurrent(campaigns, temp, metric, minimize)
                    .map_err(|e| e.to_string())?;
                for campaign in &results {
                    println!("\n== campaign {} ==", campaign.name);
                    print_word64_campaign(campaign);
                }
                let mut merged = dstress::EvalStats::default();
                for campaign in &results {
                    merged.merge(&campaign.result.eval_stats);
                }
                println!(
                    "\npool-wide: {} evaluations, {} cache hits across {} campaigns",
                    merged.evaluations,
                    merged.cache_hits,
                    results.len(),
                );
                print_pool_stats(&merged);
                return Ok(());
            }
            println!(
                "searching 64-bit patterns at {temp} C ({}, {}) ...",
                if args.bool("ue") { "UE runs" } else { "CEs" },
                if minimize { "minimizing" } else { "maximizing" }
            );
            let campaign = match args.str("db") {
                Some(path) => {
                    let mut journal = CampaignJournal::open(DiskStorage::new(), path)
                        .map_err(|e| format!("opening {path}: {e}"))?;
                    let name = DStress::word64_campaign_name(temp, &metric, minimize);
                    match journal.checkpoint() {
                        Some(cp) if !resume => {
                            return Err(format!(
                                "{path} holds an interrupted search for campaign `{}`; \
                                 pass --resume to continue it",
                                cp.campaign
                            ));
                        }
                        Some(cp) if cp.campaign != name => {
                            return Err(format!(
                                "--resume: the interrupted campaign is `{}` but these flags \
                                 select `{name}`; rerun with the original flags",
                                cp.campaign
                            ));
                        }
                        Some(_) => println!("resuming interrupted campaign `{name}` from {path}"),
                        None if resume => {
                            println!("no interrupted search in {path}; starting fresh")
                        }
                        None => {}
                    }
                    let campaign = dstress
                        .search_word64_journaled(&mut journal, temp, metric, minimize)
                        .map_err(|e| e.to_string())?;
                    println!("virus database written to {path}");
                    campaign
                }
                None => dstress
                    .search_word64(temp, metric, minimize)
                    .map_err(|e| e.to_string())?,
            };
            print_word64_campaign(&campaign);
            Ok(())
        }
        "measure" => {
            let pattern = args.u64("pattern", WORST_WORD)?;
            let dstress = DStress::new(scale, seed);
            let outcome = dstress
                .measure(
                    &EnvKind::Word64,
                    [("PATTERN".to_string(), BoundValue::Scalar(pattern))].into(),
                    temp,
                    Metric::CeAverage,
                )
                .map_err(|e| e.to_string())?;
            println!(
                "pattern {pattern:#018x} at {temp} C: {:.1} CEs/run, {} UEs total, {} runs stopped",
                outcome.fitness, outcome.total_ue, outcome.ue_runs
            );
            Ok(())
        }
        "baselines" => {
            let dstress = DStress::new(scale, seed);
            println!("classic micro-benchmarks at {temp} C:");
            for baseline in Baseline::all(seed) {
                let outcome = dstress
                    .measure(
                        &EnvKind::CycleFill {
                            cycle: baseline.cycle(),
                        },
                        HashMap::new(),
                        temp,
                        Metric::CeAverage,
                    )
                    .map_err(|e| e.to_string())?;
                println!(
                    "  {:<14} {:>10.1} CEs/run",
                    baseline.name(),
                    outcome.fitness
                );
            }
            let worst = dstress
                .measure(
                    &EnvKind::Word64,
                    [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into(),
                    temp,
                    Metric::CeAverage,
                )
                .map_err(|e| e.to_string())?;
            println!("  {:<14} {:>10.1} CEs/run", "worst virus", worst.fitness);
            Ok(())
        }
        "victims" => {
            let mut dstress = DStress::new(scale, seed);
            let victims = dstress
                .profile_victims(temp, WORST_WORD)
                .map_err(|e| e.to_string())?;
            println!("error-prone rows at {temp} C (worst-case fill):");
            for v in victims {
                println!("  {v}");
            }
            Ok(())
        }
        "margins" => {
            let dstress = DStress::new(scale, seed);
            let criterion = if args.bool("ce-tolerated") {
                SafetyCriterion::NoUncorrectable
            } else {
                SafetyCriterion::NoErrors
            };
            let chromosome: HashMap<String, BoundValue> =
                [("PATTERN".to_string(), BoundValue::Scalar(WORST_WORD))].into();
            let margin =
                find_marginal_trefp(&dstress, &EnvKind::Word64, &chromosome, temp, criterion, 10)
                    .map_err(|e| e.to_string())?;
            let savings = savings_at_margin(margin.marginal_trefp_s, 1.0e6);
            println!(
                "marginal TREFP at {temp} C: {:.3} s (criterion: {})",
                margin.marginal_trefp_s,
                if args.bool("ce-tolerated") {
                    "CEs tolerated"
                } else {
                    "no errors"
                }
            );
            println!(
                "power savings: {:.1} % DRAM, {:.1} % system",
                savings.dram_savings * 100.0,
                savings.system_savings * 100.0
            );
            Ok(())
        }
        "march" => {
            let report = dstress::experiments::march_comparison::run(scale, seed)
                .map_err(|e| e.to_string())?;
            println!("{}", report.render());
            Ok(())
        }
        "disasm" => {
            let pattern = args.u64("pattern", WORST_WORD)?;
            let config = match args.str("opt") {
                None | Some("full") => PassConfig::all(),
                Some("none") => PassConfig::none(),
                Some(other) => return Err(format!("unknown opt level `{other}` (none|full)")),
            };
            let env = EnvKind::Word64;
            let template = dstress::templates::process(env.template_source(), &scale)
                .map_err(|e| e.to_string())?;
            let mut bindings = env.bindings(&scale).map_err(|e| e.to_string())?;
            bindings.insert("PATTERN".into(), BoundValue::Scalar(pattern));
            let program = template.instantiate(&bindings).map_err(|e| e.to_string())?;
            let (_, stages) = compile_staged(&program, &config).map_err(|e| e.to_string())?;
            println!(
                "word64 virus, pattern {pattern:#018x}, passes: {}",
                if config.any() {
                    config.enabled().join(", ")
                } else {
                    "(none)".to_string()
                }
            );
            for (name, listing) in &stages {
                println!("\n==== after {name} ====");
                print!("{listing}");
            }
            Ok(())
        }
        "serve" => {
            let dir = args
                .str("dir")
                .ok_or("serve requires --dir DIR (the campaign registry directory)")?;
            let config = DaemonConfig {
                addr: args.str("addr").unwrap_or("127.0.0.1:0").to_string(),
                dir: dir.into(),
                workers: args.u64("workers", 2)?.max(1) as usize,
                event_capacity: args.u64("event-capacity", 256)?.max(1) as usize,
                ..DaemonConfig::default()
            };
            let exit_when_idle = args.bool("exit-when-idle");
            let daemon = Dstressd::start(config).map_err(|e| format!("starting dstressd: {e}"))?;
            println!("dstressd listening on {}", daemon.addr());
            let addr = daemon.addr().to_string();
            if !exit_when_idle {
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            // --exit-when-idle: poll our own list endpoint and drain out
            // once at least one campaign exists and none is running.
            loop {
                std::thread::sleep(std::time::Duration::from_millis(200));
                let campaigns = match service_request(&addr, &Request::List)? {
                    Response::List { campaigns } => campaigns,
                    other => return Err(format!("unexpected reply to list: {other:?}")),
                };
                if !campaigns.is_empty() && campaigns.iter().all(|c| c.state != "running") {
                    break;
                }
            }
            daemon
                .shutdown()
                .map_err(|e| format!("stopping dstressd: {e}"))?;
            println!("dstressd idle; all campaigns settled");
            Ok(())
        }
        "submit" => {
            let addr = require_addr(&args)?;
            let spec = CampaignSpec {
                scale: args.str("scale").unwrap_or("").to_string(),
                temp_c: temp,
                ue: args.bool("ue"),
                minimize: args.bool("minimize"),
                seed: args.u64("seed", 0)?,
                step_budget: args.u64("step-budget", 0)?,
            };
            match service_request(addr, &Request::Submit { spec })? {
                Response::Submitted { campaign, name } => {
                    println!("submitted campaign {campaign} ({name})");
                    Ok(())
                }
                Response::Error { message } => Err(format!("daemon: {message}")),
                other => Err(format!("unexpected reply to submit: {other:?}")),
            }
        }
        "status" => {
            let addr = require_addr(&args)?;
            match args.str("campaign") {
                Some(_) => {
                    let campaign = args.u64("campaign", 0)?;
                    match service_request(addr, &Request::Status { campaign })? {
                        Response::Status { report } => {
                            print_report(&report);
                            Ok(())
                        }
                        Response::Error { message } => Err(format!("daemon: {message}")),
                        other => Err(format!("unexpected reply to status: {other:?}")),
                    }
                }
                None => match service_request(addr, &Request::List)? {
                    Response::List { campaigns } => {
                        if campaigns.is_empty() {
                            println!("no campaigns");
                        }
                        for report in &campaigns {
                            print_report(report);
                        }
                        Ok(())
                    }
                    Response::Error { message } => Err(format!("daemon: {message}")),
                    other => Err(format!("unexpected reply to list: {other:?}")),
                },
            }
        }
        "watch" => {
            let addr = require_addr(&args)?;
            let campaign = campaign_arg(&args)?;
            let from_seq = args.u64("from-seq", 0)?;
            watch_campaign(addr, campaign, from_seq)
        }
        "pause" | "resume" | "cancel" => {
            let addr = require_addr(&args)?;
            let campaign = campaign_arg(&args)?;
            let request = match command {
                "pause" => Request::Pause { campaign },
                "resume" => Request::Resume { campaign },
                _ => Request::Cancel { campaign },
            };
            match service_request(addr, &request)? {
                Response::Ok => {
                    println!("campaign {campaign}: {command} acknowledged");
                    Ok(())
                }
                Response::Error { message } => Err(format!("daemon: {message}")),
                other => Err(format!("unexpected reply to {command}: {other:?}")),
            }
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_flags_are_rejected_per_command() {
        let err = run(strings(&["info", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag --bogus"), "{err}");
        // The check runs before the search starts: a typo'd flag cannot
        // silently launch a campaign at default settings.
        let err = run(strings(&["search-word64", "--tmep", "80"])).unwrap_err();
        assert!(err.contains("unknown flag --tmep"), "{err}");
        // Flags valid for one command are still rejected for another.
        let err = run(strings(&["measure", "--workers", "4"])).unwrap_err();
        assert!(err.contains("unknown flag --workers"), "{err}");
    }

    #[test]
    fn malformed_supervision_flags_are_rejected_before_the_search_starts() {
        // Non-numeric values surface as parse errors → usage + exit 1.
        let err = run(strings(&["search-word64", "--max-retries", "abc"])).unwrap_err();
        assert!(err.contains("--max-retries"), "{err}");
        let err = run(strings(&["search-word64", "--quarantine-after", "-1"])).unwrap_err();
        assert!(err.contains("--quarantine-after"), "{err}");
        // A zero quarantine threshold could never score a candidate; the
        // policy's own validation rejects it at the CLI boundary.
        let err = run(strings(&["search-word64", "--quarantine-after", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        // Values beyond u32 are rejected rather than silently truncated.
        let err = run(strings(&["search-word64", "--max-retries", "4294967296"])).unwrap_err();
        assert!(err.contains("does not fit"), "{err}");
    }

    #[test]
    fn supervision_flags_parse_into_a_policy() {
        let args = Args::parse(strings(&[
            "search-word64",
            "--max-retries",
            "7",
            "--quarantine-after",
            "9",
        ]))
        .unwrap();
        let policy = supervision_from(&args).unwrap();
        assert_eq!(policy.max_retries, 7);
        assert_eq!(policy.quarantine_after, 9);
        // Unset flags fall back to the documented defaults.
        let args = Args::parse(strings(&["search-word64"])).unwrap();
        assert_eq!(
            supervision_from(&args).unwrap(),
            SupervisionPolicy::default()
        );
    }

    #[test]
    fn disasm_rejects_bad_opt_levels_and_unknown_flags() {
        let err = run(strings(&["disasm", "--opt", "aggressive"])).unwrap_err();
        assert!(err.contains("unknown opt level"), "{err}");
        let err = run(strings(&["disasm", "--temp", "60"])).unwrap_err();
        assert!(err.contains("unknown flag --temp"), "{err}");
        // The happy path runs end to end on the quick scale.
        run(strings(&["disasm", "--scale", "quick", "--opt", "none"])).unwrap();
        run(strings(&["disasm", "--scale", "quick"])).unwrap();
    }

    #[test]
    fn malformed_campaign_counts_are_rejected_before_the_search_starts() {
        // Non-numeric, zero and out-of-range values all surface as errors
        // → usage + exit 1, before any pool is spawned.
        let err = run(strings(&["search-word64", "--campaigns", "two"])).unwrap_err();
        assert!(err.contains("--campaigns"), "{err}");
        let err = run(strings(&["search-word64", "--campaigns", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = run(strings(&["search-word64", "--campaigns", "-3"])).unwrap_err();
        assert!(err.contains("--campaigns"), "{err}");
        // A --db base whose derived per-campaign paths cannot be formed
        // is rejected before any journal is opened.
        let err = run(strings(&[
            "search-word64",
            "--campaigns",
            "2",
            "--db",
            "..",
        ]))
        .unwrap_err();
        assert!(err.contains("no file name"), "{err}");
        // Resuming a multi-campaign batch requires every per-campaign
        // journal that the base path derives.
        let err = run(strings(&[
            "search-word64",
            "--campaigns",
            "2",
            "--db",
            "does-not-exist/x.json",
            "--resume",
        ]))
        .unwrap_err();
        assert!(err.contains("x-c0.json"), "{err}");
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn service_commands_validate_their_flags_before_connecting() {
        let err = run(strings(&["serve"])).unwrap_err();
        assert!(err.contains("--dir"), "{err}");
        let err = run(strings(&["submit", "--temp", "60"])).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let err = run(strings(&["watch", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("--campaign"), "{err}");
        let err = run(strings(&["cancel", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("--campaign"), "{err}");
        // Unknown flags are still rejected per command.
        let err = run(strings(&["serve", "--dir", "d", "--temp", "60"])).unwrap_err();
        assert!(err.contains("unknown flag --temp"), "{err}");
        let err = run(strings(&["status", "--workers", "2"])).unwrap_err();
        assert!(err.contains("unknown flag --workers"), "{err}");
    }

    #[test]
    fn resume_requires_a_database() {
        let err = run(strings(&["search-word64", "--resume", "--scale", "quick"])).unwrap_err();
        assert!(err.contains("--resume requires --db"), "{err}");
    }

    #[test]
    fn known_flags_pass_the_allowlists() {
        for (command, allowed) in [
            ("info", vec!["scale"]),
            (
                "search-word64",
                vec![
                    "temp",
                    "minimize",
                    "ue",
                    "scale",
                    "seed",
                    "db",
                    "resume",
                    "workers",
                    "campaigns",
                    "max-retries",
                    "quarantine-after",
                ],
            ),
            ("measure", vec!["pattern", "temp", "scale", "seed"]),
            ("margins", vec!["temp", "ce-tolerated", "scale", "seed"]),
        ] {
            let mut raw = vec![command.to_string()];
            for flag in &allowed {
                raw.push(format!("--{flag}"));
                raw.push("1".to_string());
            }
            let args = Args::parse(raw).unwrap();
            assert!(
                check_flags(&args, &allowed.iter().map(|s| &**s).collect::<Vec<_>>()).is_ok(),
                "{command} rejected its own flags"
            );
        }
    }
}
