//! The classic data-pattern micro-benchmarks used for DRAM characterization
//! (paper §V-A.1, Fig. 8e): MSCAN all-0s/all-1s, checkerboard, walking 0s,
//! walking 1s, and a randomized pattern.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A traditional DRAM-test data pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Baseline {
    /// MSCAN: every bit `0`.
    All0s,
    /// MSCAN: every bit `1`.
    All1s,
    /// Alternating `0101…` (bit-level checkerboard).
    Checkerboard,
    /// A single `0` walking through a field of `1`s, one position per word.
    Walking0s,
    /// A single `1` walking through a field of `0`s.
    Walking1s,
    /// Uniformly random data (seeded).
    Random {
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

impl Baseline {
    /// All baselines the paper compares against, in Fig. 8e order.
    pub fn all(random_seed: u64) -> Vec<Baseline> {
        vec![
            Baseline::All0s,
            Baseline::All1s,
            Baseline::Checkerboard,
            Baseline::Walking0s,
            Baseline::Walking1s,
            Baseline::Random { seed: random_seed },
        ]
    }

    /// Human-readable name (matches the paper's figure labels).
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::All0s => "all0s",
            Baseline::All1s => "all1s",
            Baseline::Checkerboard => "checkerboard",
            Baseline::Walking0s => "walking0s",
            Baseline::Walking1s => "walking1s",
            Baseline::Random { .. } => "random",
        }
    }

    /// The 64-word cycle this micro-benchmark fills memory with.
    pub fn cycle(&self) -> Vec<u64> {
        match self {
            Baseline::All0s => vec![0; 64],
            Baseline::All1s => vec![u64::MAX; 64],
            Baseline::Checkerboard => vec![0x5555_5555_5555_5555; 64],
            Baseline::Walking0s => (0..64).map(|i| !(1u64 << i)).collect(),
            Baseline::Walking1s => (0..64).map(|i| 1u64 << i).collect(),
            Baseline::Random { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..64).map(|_| rng.gen()).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_six_baselines() {
        let all = Baseline::all(1);
        assert_eq!(all.len(), 6);
        let names: Vec<&str> = all.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "all0s",
                "all1s",
                "checkerboard",
                "walking0s",
                "walking1s",
                "random"
            ]
        );
    }

    #[test]
    fn cycles_have_64_words() {
        for b in Baseline::all(2) {
            assert_eq!(b.cycle().len(), 64, "{}", b.name());
        }
    }

    #[test]
    fn walking_patterns_walk() {
        let w0 = Baseline::Walking0s.cycle();
        assert_eq!(w0[0], !1u64);
        assert_eq!(w0[63], !(1u64 << 63));
        for (i, w) in w0.iter().enumerate() {
            assert_eq!(w.count_ones(), 63, "word {i}");
        }
        let w1 = Baseline::Walking1s.cycle();
        for w in &w1 {
            assert_eq!(w.count_ones(), 1);
        }
        assert_eq!(w1[5], 1 << 5);
    }

    #[test]
    fn random_is_seeded_and_reproducible() {
        assert_eq!(
            Baseline::Random { seed: 9 }.cycle(),
            Baseline::Random { seed: 9 }.cycle()
        );
        assert_ne!(
            Baseline::Random { seed: 9 }.cycle(),
            Baseline::Random { seed: 10 }.cycle()
        );
    }

    #[test]
    fn uniform_patterns_are_uniform() {
        assert!(Baseline::All0s.cycle().iter().all(|&w| w == 0));
        assert!(Baseline::All1s.cycle().iter().all(|&w| w == u64::MAX));
        assert!(Baseline::Checkerboard
            .cycle()
            .iter()
            .all(|&w| w == 0x5555_5555_5555_5555));
    }
}
