//! Per-row retention-time profiling (paper §I/§VII context).
//!
//! The refresh-optimization literature the paper builds on (RAIDR — Liu et
//! al.; REAPER — Patel et al.) profiles the retention time of rows so that
//! strong rows can be refreshed less often. DStress's stress viruses make
//! such profiles trustworthy: profiling under the worst-case data pattern
//! bounds the true retention from below, whereas profiling with a benign
//! pattern overestimates it (the paper's §I critique of retention-profiling
//! micro-benchmarks).

use crate::error::DStressError;
use crate::evaluate::Metric;
use crate::search::{DStress, EnvKind};
use crate::usecases::trefp_grid;
use dstress_dram::geometry::RowKey;
use dstress_vpl::BoundValue;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The retention profile of one DIMM under a given fill pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetentionProfile {
    /// The fill pattern the profile was taken under.
    pub fill: u64,
    /// The probed refresh-period grid (ascending).
    pub grid: Vec<f64>,
    /// Per-row largest safe refresh period: `(row, trefp_s)`. Rows absent
    /// from the map were safe even at the largest probed period.
    pub weak_rows: Vec<(RowKey, f64)>,
    /// Rows safe at every probed period.
    pub strong_rows: u64,
    /// Total rows on the DIMM.
    pub total_rows: u64,
}

impl RetentionProfile {
    /// RAIDR-style bin counts: how many rows need refresh at ≤ each grid
    /// period (cumulative).
    pub fn bins(&self) -> Vec<(f64, u64)> {
        self.grid
            .iter()
            .map(|&t| {
                let rows = self.weak_rows.iter().filter(|(_, m)| *m <= t).count() as u64;
                (t, rows)
            })
            .collect()
    }

    /// The fraction of rows that can tolerate a refresh period of at least
    /// `trefp_s` — the quantity refresh-reduction schemes bank on.
    pub fn strong_fraction_at(&self, trefp_s: f64) -> f64 {
        let weak = self.weak_rows.iter().filter(|(_, m)| *m < trefp_s).count() as u64;
        (self.total_rows - weak) as f64 / self.total_rows as f64
    }
}

/// Profiles per-row retention on DIMM2: sweeps the refresh-period grid
/// under the given fill pattern and records, per row, the largest period at
/// which the row stayed error-free.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn profile_retention(
    dstress: &DStress,
    fill: u64,
    temp_c: f64,
    grid_points: usize,
) -> Result<RetentionProfile, DStressError> {
    let grid = trefp_grid(grid_points);
    let geo = dstress.scale.server.dimm.geometry;
    let total_rows = geo.ranks as u64 * geo.banks as u64 * geo.rows_per_bank as u64;
    // For each row, the smallest probed TREFP at which it erred; its safe
    // margin is one grid step below.
    let mut first_failing: HashMap<RowKey, f64> = HashMap::new();
    for (i, &trefp) in grid.iter().enumerate() {
        if i == 0 {
            // The nominal period is the reference "always safe" floor.
            continue;
        }
        let mut evaluator = dstress.evaluator(&EnvKind::Word64, temp_c, Metric::CeAverage)?;
        let server = evaluator.server_mut();
        server.set_trefp(2, trefp);
        server.set_trefp(3, trefp);
        evaluator.evaluate_bindings([("PATTERN".to_string(), BoundValue::Scalar(fill))].into())?;
        // Re-run once more to capture rows (VRT may blink rows in/out; the
        // union over runs is what a profiler would record).
        let counters_rows: Vec<RowKey> = {
            let template = crate::templates::process(crate::templates::WORD64, &dstress.scale)?;
            let mut bindings = EnvKind::Word64.bindings(&dstress.scale)?;
            bindings.insert("PATTERN".into(), BoundValue::Scalar(fill));
            let program = template.instantiate(&bindings)?;
            let server = evaluator.server_mut();
            server.reset_memory();
            let mut session = server.session(2);
            let compiled = dstress_vpl::compile(&program).map_err(DStressError::from)?;
            dstress_vpl::Vm::new(dstress_vpl::ExecLimits::default())
                .run(&compiled, &mut session)
                .map_err(DStressError::from)?;
            let run = session.finish();
            server
                .evaluate_runs(&run, dstress.scale.runs_per_virus, 0x6E7E)?
                .iter()
                .flat_map(|o| o.row_errors.iter())
                .filter(|e| e.mcu == 2)
                .map(|e| e.row)
                .collect()
        };
        for row in counters_rows {
            first_failing.entry(row).or_insert(trefp);
        }
    }
    let weak_rows: Vec<(RowKey, f64)> = {
        let mut rows: Vec<(RowKey, f64)> = first_failing
            .into_iter()
            .map(|(row, failing)| {
                // Safe margin = the grid point below the first failing one.
                let idx = grid.iter().position(|&g| g == failing).unwrap_or(1);
                (row, grid[idx.saturating_sub(1)])
            })
            .collect();
        rows.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite margins")
                .then(a.0.cmp(&b.0))
        });
        rows
    };
    let strong_rows = total_rows - weak_rows.len() as u64;
    Ok(RetentionProfile {
        fill,
        grid,
        weak_rows,
        strong_rows,
        total_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;
    use crate::search::{BEST_WORD, WORST_WORD};

    #[test]
    fn worst_pattern_profile_is_more_pessimistic_than_best_pattern() {
        // The paper's §I point: retention profiles depend on the data
        // pattern; profiling with a benign pattern overestimates margins.
        let dstress = DStress::new(ExperimentScale::quick(), 31);
        let worst = profile_retention(&dstress, WORST_WORD, 60.0, 6).unwrap();
        let best = profile_retention(&dstress, BEST_WORD, 60.0, 6).unwrap();
        assert!(
            worst.weak_rows.len() > best.weak_rows.len(),
            "worst-pattern profile ({} weak rows) must find more weak rows than the benign \
             profile ({})",
            worst.weak_rows.len(),
            best.weak_rows.len()
        );
        assert_eq!(worst.total_rows, 2 * 8 * 16);
        assert_eq!(
            worst.strong_rows + worst.weak_rows.len() as u64,
            worst.total_rows
        );
    }

    #[test]
    fn bins_are_cumulative_and_strong_fraction_is_monotone() {
        let dstress = DStress::new(ExperimentScale::quick(), 32);
        let profile = profile_retention(&dstress, WORST_WORD, 60.0, 6).unwrap();
        let bins = profile.bins();
        for w in bins.windows(2) {
            assert!(w[1].1 >= w[0].1, "bins must be cumulative");
        }
        let f_nominal = profile.strong_fraction_at(0.064);
        let f_max = profile.strong_fraction_at(2.283);
        assert!(f_nominal >= f_max);
        assert!((0.0..=1.0).contains(&f_max));
        // Most rows tolerate far more than the nominal period (RAIDR's
        // premise).
        assert!(
            f_nominal > 0.99,
            "nominal refresh must be safe for ~all rows"
        );
    }
}
