//! Search campaigns: the synthesis phase wired to the evaluation phase
//! (paper Fig. 4).

use crate::error::{DStressError, PlatformError};
use crate::evaluate::{Metric, ParallelBitFitness, ParallelIntFitness, VirusEvaluator};
use crate::patterns::{BitCodec, IntCodec};
use crate::scale::ExperimentScale;
use crate::templates;
use dstress_dram::geometry::RowKey;
use dstress_ga::journal::{run_journaled, CampaignJournal, Storage};
use dstress_ga::{
    BitGenome, CampaignScheduler, EvalPool, GaEngine, Genome, HazardPlan, IntGenome,
    ParallelFitness, SearchResult, SearchSession, SupervisionPolicy, VirusDatabase, VirusRecord,
};
use dstress_platform::{RowErrors, XGene2Server};
use dstress_vpl::BoundValue;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The 64-bit word the TTAA cell layout is most stressed by — repeating
/// `1100` in bit order, the paper's headline discovery (§V-A.1). The GA is
/// expected to *find* this; experiments verify it does.
pub const WORST_WORD: u64 = 0x3333_3333_3333_3333;

/// The opposite phase: discharges nearly every cell (the best-case pattern
/// of Fig. 8c).
pub const BEST_WORD: u64 = 0xCCCC_CCCC_CCCC_CCCC;

/// The environment a virus template runs in: which template it is and the
/// campaign-fixed inputs it needs (victim rows, fill word…). Bindings are
/// recomputed from the scale so the same artifact can be re-run under
/// different operating parameters (the Fig. 14 margin sweeps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EnvKind {
    /// The 64-bit data-pattern virus (whole-memory fill).
    Word64,
    /// The row-triple ("24 KB") data-pattern virus around victim rows.
    RowTriple {
        /// The error-prone rows the patterns centre on.
        victims: Vec<RowKey>,
    },
    /// The chunk-span ("512 KB") data-pattern virus around victim rows.
    Chunks {
        /// The error-prone rows the spans cover.
        victims: Vec<RowKey>,
    },
    /// Access template 1 (neighbour-row bitmap), memory pre-filled with
    /// `fill`.
    RowAccess {
        /// The error-prone rows whose neighbours are hammered.
        victims: Vec<RowKey>,
        /// The data pattern the memory is filled with first.
        fill: u64,
    },
    /// Access template 2 (per-row strides), memory pre-filled with `fill`.
    StrideAccess {
        /// The error-prone rows whose neighbours are accessed.
        victims: Vec<RowKey>,
        /// The data pattern the memory is filled with first.
        fill: u64,
    },
    /// A classic micro-benchmark fill cycling 64 words.
    CycleFill {
        /// The 64-word cycle written across memory.
        cycle: Vec<u64>,
    },
}

impl EnvKind {
    /// The template source this environment belongs to.
    pub fn template_source(&self) -> &'static str {
        match self {
            EnvKind::Word64 => templates::WORD64,
            EnvKind::RowTriple { .. } => templates::ROW_TRIPLE,
            EnvKind::Chunks { .. } => templates::CHUNKS,
            EnvKind::RowAccess { .. } => templates::ROW_ACCESS,
            EnvKind::StrideAccess { .. } => templates::STRIDE_ACCESS,
            EnvKind::CycleFill { .. } => templates::CYCLE_FILL,
        }
    }

    /// Rows the template's `global_data` occupies before the big buffer.
    fn globals_rows(&self, scale: &ExperimentScale) -> u64 {
        let row_words = scale.row_words();
        let rows_for = |words: u64| words.div_ceil(row_words);
        match self {
            EnvKind::Word64 => 0,
            EnvKind::RowTriple { victims } => {
                3 * rows_for(row_words) + rows_for(victims.len() as u64)
            }
            EnvKind::Chunks { victims } => {
                rows_for(64 * row_words) + rows_for(victims.len() as u64)
            }
            EnvKind::RowAccess { victims, .. } => {
                rows_for(64) + rows_for(victims.len() as u64 * 64)
            }
            EnvKind::StrideAccess { victims, .. } => {
                rows_for(32) + rows_for(victims.len() as u64 * 16)
            }
            EnvKind::CycleFill { .. } => rows_for(64),
        }
    }

    /// The victim rows, if this environment has any.
    pub fn victims(&self) -> &[RowKey] {
        match self {
            EnvKind::RowTriple { victims }
            | EnvKind::Chunks { victims }
            | EnvKind::RowAccess { victims, .. }
            | EnvKind::StrideAccess { victims, .. } => victims,
            _ => &[],
        }
    }

    /// Builds the environment bindings for a scale.
    ///
    /// # Errors
    ///
    /// Returns [`DStressError::Config`] when a victim row cannot host the
    /// template's neighbourhood inside the buffer.
    pub fn bindings(
        &self,
        scale: &ExperimentScale,
    ) -> Result<HashMap<String, BoundValue>, DStressError> {
        let row_words = scale.row_words();
        let globals_rows = self.globals_rows(scale);
        let buf_base_words = globals_rows * row_words;
        let total_words = scale.dimm_words();
        let mem_words = total_words - buf_base_words;
        let mut env: HashMap<String, BoundValue> = [
            ("MEM_BYTES".to_string(), BoundValue::Scalar(mem_words * 8)),
            ("MEM_WORDS".to_string(), BoundValue::Scalar(mem_words)),
            ("ROW_WORDS".to_string(), BoundValue::Scalar(row_words)),
        ]
        .into_iter()
        .collect();

        let chunk_of = |row: &RowKey| -> u64 {
            let geo = &scale.server.dimm.geometry;
            (row.rank as u64 * geo.rows_per_bank as u64 + row.row as u64) * geo.banks as u64
                + row.bank as u64
        };
        let offset_of = |chunk: u64| -> Result<u64, DStressError> {
            let words = chunk * row_words;
            if words < buf_base_words {
                return Err(DStressError::Config(format!(
                    "chunk {chunk} lies inside the template's global data"
                )));
            }
            Ok(words - buf_base_words)
        };
        let total_chunks = total_words / row_words;

        match self {
            EnvKind::Word64 => {}
            EnvKind::RowTriple { victims } => {
                let stride_chunks = scale.server.dimm.geometry.banks as u64;
                let mut offs = Vec::with_capacity(victims.len());
                for v in victims {
                    let c = chunk_of(v);
                    if c < stride_chunks + globals_rows || c + stride_chunks >= total_chunks {
                        return Err(DStressError::Config(format!(
                            "victim {v} has no same-bank neighbours inside the buffer"
                        )));
                    }
                    offs.push(offset_of(c)?);
                }
                env.insert("VICTIM_OFFS".into(), BoundValue::Array(offs));
                env.insert("NV".into(), BoundValue::Scalar(victims.len() as u64));
                env.insert(
                    "BANK_STRIDE".into(),
                    BoundValue::Scalar(scale.bank_stride_words()),
                );
                env.insert("FILL".into(), BoundValue::Scalar(0));
            }
            EnvKind::Chunks { victims } => {
                let mut starts = Vec::with_capacity(victims.len());
                for v in victims {
                    let c = chunk_of(v);
                    let start = c.saturating_sub(32).max(globals_rows);
                    if start + 64 > total_chunks {
                        return Err(DStressError::Config(format!(
                            "victim {v} has no 64-chunk span inside the buffer"
                        )));
                    }
                    starts.push(offset_of(start)?);
                }
                env.insert("CHUNK_STARTS".into(), BoundValue::Array(starts));
                env.insert("NV".into(), BoundValue::Scalar(victims.len() as u64));
                env.insert("SPAN_WORDS".into(), BoundValue::Scalar(64 * row_words));
                env.insert("FILL".into(), BoundValue::Scalar(0));
            }
            EnvKind::RowAccess { victims, fill } => {
                let mut neigh = Vec::with_capacity(victims.len() * 64);
                for v in victims {
                    let c = chunk_of(v);
                    if c < 32 + globals_rows || c + 32 >= total_chunks {
                        return Err(DStressError::Config(format!(
                            "victim {v} has no +-32-chunk neighbourhood inside the buffer"
                        )));
                    }
                    // r = 0..32 -> predecessors c-32 .. c-1;
                    // r = 32..64 -> successors c+1 .. c+32.
                    for r in 0..64u64 {
                        let chunk = if r < 32 { c - 32 + r } else { c + (r - 31) };
                        neigh.push(offset_of(chunk)?);
                    }
                }
                env.insert("NEIGH_OFFS".into(), BoundValue::Array(neigh));
                env.insert("NV".into(), BoundValue::Scalar(victims.len() as u64));
                env.insert("FILL".into(), BoundValue::Scalar(*fill));
                env.insert("REPS".into(), BoundValue::Scalar(64));
            }
            EnvKind::StrideAccess { victims, fill } => {
                let mut neigh = Vec::with_capacity(victims.len() * 16);
                for v in victims {
                    let c = chunk_of(v);
                    if c < 8 + globals_rows || c + 8 >= total_chunks {
                        return Err(DStressError::Config(format!(
                            "victim {v} has no +-8-chunk neighbourhood inside the buffer"
                        )));
                    }
                    for r in 0..16u64 {
                        let chunk = if r < 8 { c - 8 + r } else { c + (r - 7) };
                        neigh.push(offset_of(chunk)?);
                    }
                }
                env.insert("NEIGH16_OFFS".into(), BoundValue::Array(neigh));
                env.insert("NV".into(), BoundValue::Scalar(victims.len() as u64));
                env.insert("FILL".into(), BoundValue::Scalar(*fill));
                env.insert("X_ITERS".into(), BoundValue::Scalar(scale.stride_iters));
            }
            EnvKind::CycleFill { cycle } => {
                if cycle.len() != 64 {
                    return Err(DStressError::Config(format!(
                        "cycle fill needs exactly 64 words, got {}",
                        cycle.len()
                    )));
                }
                env.insert("CYCLE".into(), BoundValue::Array(cycle.clone()));
            }
        }
        Ok(env)
    }
}

/// Picks victim (error-prone) rows for the neighbour-row experiments from a
/// profiling run's per-row error tallies, enforcing the buffer-margin
/// constraints of every template and a minimum spacing so neighbourhoods do
/// not overlap.
pub fn pick_victims(
    row_errors: &[RowErrors],
    scale: &ExperimentScale,
    target_mcu: usize,
    wanted: usize,
) -> Vec<RowKey> {
    let geo = &scale.server.dimm.geometry;
    let total_chunks = scale.dimm_words() / scale.row_words();
    // The chunk-span template has the largest global-data prefix (65 rows).
    let min_chunk = 65 + 32;
    let chunk_of = |row: &RowKey| -> u64 {
        (row.rank as u64 * geo.rows_per_bank as u64 + row.row as u64) * geo.banks as u64
            + row.bank as u64
    };
    let mut victims: Vec<RowKey> = Vec::new();
    for e in row_errors {
        if e.mcu != target_mcu {
            continue;
        }
        let c = chunk_of(&e.row);
        if c < min_chunk || c + 33 > total_chunks {
            continue;
        }
        if victims.iter().any(|v| chunk_of(v).abs_diff(c) < 80) {
            continue;
        }
        victims.push(e.row);
        if victims.len() == wanted {
            break;
        }
    }
    victims
}

/// How a bit-genome campaign's initial population is drawn (paper §III-E:
/// "the chromosomes from the first offspring are generated randomly";
/// §III-F: continuation searches start from the discovered worst-case
/// viruses in the database).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seeding {
    /// Fully random initial population.
    Random,
    /// A slice of the chromosome (64-bit words `[start, start+len)`) is
    /// seeded with a known word in every member; the rest stays random.
    /// The neighbour-row pattern searches use this to start from the
    /// already-discovered worst 64-bit pattern *in the victim rows* while
    /// exploring the surrounding rows freely.
    WordSlice {
        /// The known word.
        word: u64,
        /// First seeded word index.
        start: usize,
        /// Seeded length in words.
        len: usize,
    },
}

impl Seeding {
    pub(crate) fn initial_genome(&self, rng: &mut rand::rngs::StdRng, bits: usize) -> BitGenome {
        match self {
            Seeding::Random => BitGenome::random(rng, bits),
            Seeding::WordSlice { word, start, len } => {
                let mut g = BitGenome::random(rng, bits);
                for w in *start..(*start + *len) {
                    for b in 0..64 {
                        let idx = w * 64 + b;
                        if idx < bits {
                            g.set_bit(idx, (word >> b) & 1 == 1);
                        }
                    }
                }
                g
            }
        }
    }
}

/// A finished search campaign over bit genomes.
#[derive(Debug, Clone)]
pub struct BitCampaign {
    /// Campaign identifier (database key).
    pub name: String,
    /// The GA outcome.
    pub result: SearchResult<BitGenome>,
    /// The environment the viruses ran in.
    pub env: EnvKind,
    /// Evaluations that failed at runtime.
    pub failed_evaluations: u64,
}

/// A finished search campaign over integer genomes.
#[derive(Debug, Clone)]
pub struct IntCampaign {
    /// Campaign identifier (database key).
    pub name: String,
    /// The GA outcome.
    pub result: SearchResult<IntGenome>,
    /// The environment the viruses ran in.
    pub env: EnvKind,
    /// Evaluations that failed at runtime.
    pub failed_evaluations: u64,
}

/// The DStress framework facade: processing + synthesis + evaluation phases
/// over a simulated experimental server (paper Fig. 4).
#[derive(Debug)]
pub struct DStress {
    /// The campaign scale.
    pub scale: ExperimentScale,
    /// The virus database (§III-F).
    pub db: VirusDatabase,
    seed: u64,
    campaign_seq: u64,
    workers: usize,
    supervision: SupervisionPolicy,
    hazards: Option<HazardPlan>,
    step_budget: Option<u64>,
}

impl DStress {
    /// Creates a framework instance (single evaluation worker).
    pub fn new(scale: ExperimentScale, seed: u64) -> Self {
        DStress {
            scale,
            db: VirusDatabase::new(),
            seed,
            campaign_seq: 0,
            workers: 1,
            supervision: SupervisionPolicy::default(),
            hazards: None,
            step_budget: None,
        }
    }

    /// Sets the number of evaluation worker threads campaigns use. Each
    /// worker owns an independent replica of the evaluation substrate, and
    /// results are bit-identical for any worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn set_workers(&mut self, workers: usize) {
        assert!(workers >= 1, "at least one evaluation worker is required");
        self.workers = workers;
    }

    /// The configured evaluation worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets the supervision policy (retry / quarantine limits) campaigns
    /// run under.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (`quarantine_after` of zero).
    pub fn set_supervision(&mut self, policy: SupervisionPolicy) {
        policy.validate().expect("invalid supervision policy");
        self.supervision = policy;
    }

    /// The supervision policy campaigns run under.
    pub fn supervision(&self) -> SupervisionPolicy {
        self.supervision
    }

    /// Injects a hazard plan into subsequent campaigns (`None` clears it).
    /// Test-harness machinery: hazards fire at scheduled evaluation
    /// indices, mirroring `MemStorage`'s op-counted storage faults.
    pub fn set_hazard_plan(&mut self, hazards: Option<HazardPlan>) {
        self.hazards = hazards;
    }

    /// Overrides the VM step budget evaluators run with (`None` restores
    /// the default). The budget is the supervised runtime's deterministic
    /// watchdog against non-terminating candidates.
    pub fn set_step_budget(&mut self, max_steps: Option<u64>) {
        self.step_budget = max_steps;
    }

    /// Boots the experimental server: the paper's §IV memory configuration
    /// (second domain relaxed) with DIMM2 heated to `temp_c`.
    ///
    /// # Errors
    ///
    /// [`DStressError::Platform`] when the thermal rig rejects the channel
    /// or runs to its timeout without holding the setpoint
    /// ([`PlatformError::ThermalUnsettled`], carrying the full settling
    /// report) — a campaign must not start on an unstable thermal platform.
    pub fn server_at(&self, temp_c: f64) -> Result<XGene2Server, DStressError> {
        let mut server = XGene2Server::new(self.scale.server);
        server.relax_second_domain();
        let report = server
            .set_dimm_temperature(2, temp_c)
            .map_err(PlatformError::from)?;
        if !report.settled {
            return Err(PlatformError::ThermalUnsettled {
                mcu: 2,
                setpoint_c: temp_c,
                report,
            }
            .into());
        }
        Ok(server)
    }

    /// Builds an evaluator for an environment.
    ///
    /// # Errors
    ///
    /// Propagates template processing, environment-binding and platform
    /// setup failures.
    pub fn evaluator(
        &self,
        env: &EnvKind,
        temp_c: f64,
        metric: Metric,
    ) -> Result<VirusEvaluator, DStressError> {
        let template = templates::process(env.template_source(), &self.scale)?;
        let bindings = env.bindings(&self.scale)?;
        let mut evaluator = VirusEvaluator::new(
            self.server_at(temp_c)?,
            template,
            bindings,
            metric,
            self.scale.runs_per_virus,
            2,
        );
        if let Some(max_steps) = self.step_budget {
            evaluator.set_step_budget(max_steps);
        }
        Ok(evaluator)
    }

    /// The engine seed of the `seq`-th campaign (1-based) started on a
    /// framework seeded with `framework_seed` — the derivation every
    /// campaign entry point shares. Exposed so external drivers (the
    /// `dstressd` service, differential tests) can reproduce a solo
    /// campaign's seed exactly.
    pub fn campaign_seed(framework_seed: u64, seq: u64) -> u64 {
        framework_seed.wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn next_campaign_seed(&mut self) -> u64 {
        self.campaign_seq += 1;
        DStress::campaign_seed(self.seed, self.campaign_seq)
    }

    fn record_bit_leaderboard(&mut self, name: &str, result: &SearchResult<BitGenome>) {
        for (genome, fitness) in &result.leaderboard {
            self.db.record(VirusRecord {
                campaign: name.to_string(),
                genes: genome.to_words(),
                gene_len: genome.len(),
                fitness: *fitness,
                ce: fitness.max(0.0) as u64,
                ue: 0,
                sequence: 0,
            });
        }
    }

    /// Runs a bit-genome campaign: GA search with the given codec over the
    /// given environment, recording the leaderboard in the database.
    ///
    /// # Errors
    ///
    /// Propagates evaluator construction failures.
    #[allow(clippy::too_many_arguments)] // campaign knobs mirror the paper's experiment table
    pub fn run_bit_campaign(
        &mut self,
        name: &str,
        env: EnvKind,
        codec: BitCodec,
        temp_c: f64,
        metric: Metric,
        minimize: bool,
        seeding: Seeding,
    ) -> Result<BitCampaign, DStressError> {
        let evaluator = self.evaluator(&env, temp_c, metric)?;
        let mut ga_config = self.scale.ga;
        ga_config.minimize = minimize;
        let bits = codec.genome_bits();
        if bits > 1024 {
            // Large pattern chromosomes: only a sparse subset of bits moves
            // the fitness (the weak cells and their coupled neighbours), so
            // give mutation more reach and the stagnation check more
            // patience — the paper's large-pattern searches ran for two
            // weeks where the 64-bit ones took one.
            ga_config.gene_rate = Some(4.0 / bits as f64);
            ga_config.stagnation_window = ga_config.stagnation_window.max(40);
        }
        let seed = self.next_campaign_seed();
        let mut engine = GaEngine::new(ga_config, seed);
        engine.set_supervision(self.supervision);
        engine.set_hazards(self.hazards.clone());
        let mut fitness = ParallelBitFitness {
            evaluator,
            codec: codec.clone(),
        };
        let mut result = engine.run_parallel(
            self.workers,
            |rng| seeding.initial_genome(rng, bits),
            &mut fitness,
        );
        result.eval_stats.compile_hits = fitness.evaluator.compile_hits;
        let failed = fitness.evaluator.failed_evaluations;
        self.record_bit_leaderboard(name, &result);
        Ok(BitCampaign {
            name: name.to_string(),
            result,
            env,
            failed_evaluations: failed,
        })
    }

    /// Runs an integer-genome campaign (the stride access search).
    ///
    /// # Errors
    ///
    /// Propagates evaluator construction failures.
    #[allow(clippy::too_many_arguments)] // campaign knobs mirror the paper's experiment table
    pub fn run_int_campaign(
        &mut self,
        name: &str,
        env: EnvKind,
        codec: IntCodec,
        temp_c: f64,
        metric: Metric,
        genes: usize,
        lo: u64,
        hi: u64,
    ) -> Result<IntCampaign, DStressError> {
        let evaluator = self.evaluator(&env, temp_c, metric)?;
        let ga_config = self.scale.ga;
        let seed = self.next_campaign_seed();
        let mut engine = GaEngine::new(ga_config, seed);
        engine.set_supervision(self.supervision);
        engine.set_hazards(self.hazards.clone());
        let mut fitness = ParallelIntFitness { evaluator, codec };
        let mut result = engine.run_parallel(
            self.workers,
            |rng| IntGenome::random(rng, genes, lo, hi),
            &mut fitness,
        );
        result.eval_stats.compile_hits = fitness.evaluator.compile_hits;
        for (genome, fit) in &result.leaderboard {
            self.db.record(VirusRecord {
                campaign: name.to_string(),
                genes: genome.values().to_vec(),
                gene_len: genome.len(),
                fitness: *fit,
                ce: fit.max(0.0) as u64,
                ue: 0,
                sequence: 0,
            });
        }
        let failed = fitness.evaluator.failed_evaluations;
        Ok(IntCampaign {
            name: name.to_string(),
            result,
            env,
            failed_evaluations: failed,
        })
    }

    /// The 64-bit data-pattern search (Fig. 8a/b: maximize CEs; Fig. 8c:
    /// minimize; Fig. 8d: maximize UE runs).
    ///
    /// # Errors
    ///
    /// Propagates campaign failures.
    pub fn search_word64(
        &mut self,
        temp_c: f64,
        metric: Metric,
        minimize: bool,
    ) -> Result<BitCampaign, DStressError> {
        let name = DStress::word64_campaign_name(temp_c, &metric, minimize);
        self.run_bit_campaign(
            &name,
            EnvKind::Word64,
            BitCodec::Word64 {
                param: "PATTERN".into(),
            },
            temp_c,
            metric,
            minimize,
            Seeding::Random,
        )
    }

    /// The campaign name [`search_word64`](DStress::search_word64) and its
    /// journaled variant use for the given metric/direction/temperature.
    pub fn word64_campaign_name(temp_c: f64, metric: &Metric, minimize: bool) -> String {
        format!(
            "word64-{}-{}C",
            match (metric, minimize) {
                (Metric::UeRuns, _) => "ue",
                (_, true) => "ce-min",
                (_, false) => "ce-max",
            },
            temp_c as i64
        )
    }

    /// Runs `campaigns` independent 64-bit data-pattern searches
    /// concurrently, multiplexed over **one** persistent evaluation pool by
    /// a fair-share [`CampaignScheduler`] — the scheduling core of the
    /// planned multi-tenant `dstressd` daemon. Each campaign draws its own
    /// seed from the engine stream (so campaign `i` here matches the
    /// `i`-th solo [`search_word64`](DStress::search_word64) on a fresh
    /// framework) and keeps its own session state, so every campaign's
    /// result and leaderboard is bit-identical to running it alone; names
    /// are suffixed `-c0`, `-c1`, … to keep database keys distinct.
    ///
    /// # Errors
    ///
    /// Propagates evaluator construction failures.
    ///
    /// # Panics
    ///
    /// Panics if `campaigns` is zero.
    pub fn search_word64_concurrent(
        &mut self,
        campaigns: usize,
        temp_c: f64,
        metric: Metric,
        minimize: bool,
    ) -> Result<Vec<BitCampaign>, DStressError> {
        assert!(campaigns >= 1, "at least one campaign is required");
        let base = DStress::word64_campaign_name(temp_c, &metric, minimize);
        let codec = BitCodec::Word64 {
            param: "PATTERN".into(),
        };
        let bits = codec.genome_bits();
        let mut ga_config = self.scale.ga;
        ga_config.minimize = minimize;
        let mut fitness = ParallelBitFitness {
            evaluator: self.evaluator(&EnvKind::Word64, temp_c, metric)?,
            codec: codec.clone(),
        };
        let mut scheduler = CampaignScheduler::new(EvalPool::new(&fitness, self.workers));
        let mut names = Vec::with_capacity(campaigns);
        for i in 0..campaigns {
            let seed = self.next_campaign_seed();
            let mut session = SearchSession::start(ga_config, seed, |rng| {
                Seeding::Random.initial_genome(rng, bits)
            });
            session.set_supervision(self.supervision);
            session.set_hazards(self.hazards.clone());
            scheduler.add(session, None);
            names.push(format!("{base}-c{i}"));
        }
        scheduler.run();
        let (sessions, replicas) = scheduler.finish();
        for replica in replicas {
            fitness.absorb(replica);
        }
        // The pool's replicas did all the evaluating, so the absorbed
        // master counters are the exact campaign-wide compile statistics;
        // every campaign of the batch shares the one substrate.
        let compile_hits = fitness.evaluator.compile_hits;
        let failed = fitness.evaluator.failed_evaluations;
        let mut finished = Vec::with_capacity(campaigns);
        for (session, name) in sessions.into_iter().zip(names) {
            let mut result = session.finish();
            result.eval_stats.compile_hits = compile_hits;
            self.record_bit_leaderboard(&name, &result);
            finished.push(BitCampaign {
                name,
                result,
                env: EnvKind::Word64,
                failed_evaluations: failed,
            });
        }
        Ok(finished)
    }

    /// The crash-safe 64-bit data-pattern search: like
    /// [`search_word64`](DStress::search_word64) but with every evaluated
    /// virus write-ahead journaled through `journal` and a checkpoint per
    /// generation, so an interrupted campaign resumes **bit-identically**.
    /// If `journal` holds a checkpoint for this campaign, the search
    /// continues from it instead of starting over.
    ///
    /// # Errors
    ///
    /// Propagates evaluator construction and journal I/O failures.
    pub fn search_word64_journaled<S: Storage>(
        &mut self,
        journal: &mut CampaignJournal<S>,
        temp_c: f64,
        metric: Metric,
        minimize: bool,
    ) -> Result<BitCampaign, DStressError> {
        Ok(self
            .search_word64_journaled_budget(journal, temp_c, metric, minimize, None)?
            .expect("an unbounded journaled search always finishes"))
    }

    /// [`search_word64_journaled`](DStress::search_word64_journaled) with a
    /// step budget: runs at most `max_steps` engine steps (each is one
    /// generation), returning `Ok(None)` when the budget expires before the
    /// search finishes — the checkpoint is journaled, ready to resume. The
    /// differential crash tests use this to interrupt a search at an exact
    /// generation boundary.
    ///
    /// # Errors
    ///
    /// Propagates evaluator construction and journal I/O failures.
    pub fn search_word64_journaled_budget<S: Storage>(
        &mut self,
        journal: &mut CampaignJournal<S>,
        temp_c: f64,
        metric: Metric,
        minimize: bool,
        max_steps: Option<u32>,
    ) -> Result<Option<BitCampaign>, DStressError> {
        let name = DStress::word64_campaign_name(temp_c, &metric, minimize);
        let env = EnvKind::Word64;
        let codec = BitCodec::Word64 {
            param: "PATTERN".into(),
        };
        let evaluator = self.evaluator(&env, temp_c, metric)?;
        let mut ga_config = self.scale.ga;
        ga_config.minimize = minimize;
        let bits = codec.genome_bits();
        // Same seed derivation as the non-journaled campaign: a fresh
        // journaled run is bit-identical to `search_word64`.
        let seed = self.next_campaign_seed();
        let mut fitness = ParallelBitFitness {
            evaluator,
            codec: codec.clone(),
        };
        let seeding = Seeding::Random;
        let result = run_journaled(
            journal,
            &name,
            ga_config,
            seed,
            |rng| seeding.initial_genome(rng, bits),
            &mut fitness,
            self.workers,
            |genome, value| VirusRecord {
                campaign: name.clone(),
                genes: genome.to_words(),
                gene_len: genome.len(),
                fitness: value,
                ce: value.max(0.0) as u64,
                ue: 0,
                sequence: 0,
            },
            max_steps,
            self.supervision,
            self.hazards.clone(),
        )?;
        let failed = fitness.evaluator.failed_evaluations;
        let compile_hits = fitness.evaluator.compile_hits;
        Ok(result.map(|mut result| {
            result.eval_stats.compile_hits = compile_hits;
            BitCampaign {
                name,
                result,
                env,
                failed_evaluations: failed,
            }
        }))
    }

    /// Profiles error-prone rows: runs the given 64-bit fill word and
    /// aggregates per-row CE counts over several runs (the paper collected
    /// error addresses from all prior experiments, §V-A.2).
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures; fails if no rows erred.
    pub fn profile_victims(&mut self, temp_c: f64, fill: u64) -> Result<Vec<RowKey>, DStressError> {
        let mut evaluator = self.evaluator(&EnvKind::Word64, temp_c, Metric::CeAverage)?;
        evaluator.evaluate_bindings([("PATTERN".to_string(), BoundValue::Scalar(fill))].into())?;
        // Re-run directly to gather row errors across several nonces.
        let mut tallies: HashMap<RowKey, u64> = HashMap::new();
        let template = templates::process(templates::WORD64, &self.scale)?;
        let mut bindings = EnvKind::Word64.bindings(&self.scale)?;
        bindings.insert("PATTERN".into(), BoundValue::Scalar(fill));
        let program = template.instantiate(&bindings)?;
        let server = evaluator.server_mut();
        server.reset_memory();
        let mut session = server.session(2);
        let compiled = dstress_vpl::compile(&program).map_err(DStressError::from)?;
        dstress_vpl::Vm::new(dstress_vpl::ExecLimits::default())
            .run(&compiled, &mut session)
            .map_err(DStressError::from)?;
        let run = session.finish();
        for outcome in server.evaluate_runs(&run, self.scale.runs_per_virus, 0xF00D)? {
            for e in &outcome.row_errors {
                if e.mcu == 2 {
                    *tallies.entry(e.row).or_insert(0) += e.ce;
                }
            }
        }
        if tallies.is_empty() {
            return Err(DStressError::Experiment(
                "no error-prone rows manifested during profiling".into(),
            ));
        }
        let mut rows: Vec<RowErrors> = tallies
            .into_iter()
            .map(|(row, ce)| RowErrors {
                mcu: 2,
                row,
                ce,
                ue: 0,
            })
            .collect();
        rows.sort_by(|a, b| b.ce.cmp(&a.ce).then(a.row.cmp(&b.row)));
        let victims = pick_victims(&rows, &self.scale, 2, self.scale.victims);
        if victims.is_empty() {
            return Err(DStressError::Experiment(
                "no victim rows satisfy the neighbourhood margins".into(),
            ));
        }
        Ok(victims)
    }

    /// The row-triple ("24 KB") data-pattern search (Fig. 9).
    ///
    /// # Errors
    ///
    /// Propagates campaign failures.
    pub fn search_row_triple(
        &mut self,
        temp_c: f64,
        victims: Vec<RowKey>,
    ) -> Result<BitCampaign, DStressError> {
        let row_words = self.scale.row_words() as usize;
        let metric = Metric::CeInRows(victims.clone());
        self.run_bit_campaign(
            &format!("row-triple-ce-{}C", temp_c as i64),
            EnvKind::RowTriple { victims },
            BitCodec::WordArrays {
                segments: vec![
                    ("PREV_PATTERN".into(), row_words),
                    ("VICTIM_PATTERN".into(), row_words),
                    ("NEXT_PATTERN".into(), row_words),
                ],
            },
            temp_c,
            metric,
            false,
            // Victim slice starts from the known worst word (§III-F);
            // neighbour rows explore freely.
            Seeding::WordSlice {
                word: WORST_WORD,
                start: row_words,
                len: row_words,
            },
        )
    }

    /// The chunk-span ("512 KB") data-pattern search (Fig. 10).
    ///
    /// # Errors
    ///
    /// Propagates campaign failures.
    pub fn search_chunks(
        &mut self,
        temp_c: f64,
        victims: Vec<RowKey>,
    ) -> Result<BitCampaign, DStressError> {
        let row_words = self.scale.row_words() as usize;
        let metric = Metric::CeInRows(victims.clone());
        self.run_bit_campaign(
            &format!("chunks-ce-{}C", temp_c as i64),
            EnvKind::Chunks { victims },
            BitCodec::WordArrays {
                segments: vec![("CHUNK_PATTERN".into(), 64 * row_words)],
            },
            temp_c,
            metric,
            false,
            // The victim row sits 32 chunks into the span.
            Seeding::WordSlice {
                word: WORST_WORD,
                start: 32 * row_words,
                len: row_words,
            },
        )
    }

    /// Access-pattern search, template 1 (Fig. 11): which neighbour rows to
    /// stream, memory pre-filled with the worst 64-bit pattern.
    ///
    /// # Errors
    ///
    /// Propagates campaign failures.
    pub fn search_row_access(
        &mut self,
        temp_c: f64,
        victims: Vec<RowKey>,
        fill: u64,
    ) -> Result<BitCampaign, DStressError> {
        let metric = Metric::CeInRows(victims.clone());
        self.run_bit_campaign(
            &format!("row-access-ce-{}C", temp_c as i64),
            EnvKind::RowAccess { victims, fill },
            BitCodec::BitFlags {
                param: "SEL".into(),
            },
            temp_c,
            metric,
            false,
            Seeding::Random,
        )
    }

    /// Access-pattern search, template 2 (Fig. 12): per-row stride
    /// coefficients `aᵢ·x + bᵢ` with `aᵢ, bᵢ ∈ [0, 20]`.
    ///
    /// # Errors
    ///
    /// Propagates campaign failures.
    pub fn search_stride_access(
        &mut self,
        temp_c: f64,
        victims: Vec<RowKey>,
        fill: u64,
    ) -> Result<IntCampaign, DStressError> {
        let metric = Metric::CeInRows(victims.clone());
        self.run_int_campaign(
            &format!("stride-access-ce-{}C", temp_c as i64),
            EnvKind::StrideAccess { victims, fill },
            IntCodec {
                param: "COEFFS".into(),
            },
            temp_c,
            metric,
            32,
            0,
            20,
        )
    }

    /// Measures a single concrete virus (no search): used for baselines and
    /// cross-experiment comparisons.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn measure(
        &self,
        env: &EnvKind,
        chromosome: HashMap<String, BoundValue>,
        temp_c: f64,
        metric: Metric,
    ) -> Result<crate::evaluate::EvalOutcome, DStressError> {
        let mut evaluator = self.evaluator(env, temp_c, metric)?;
        evaluator.evaluate_bindings(chromosome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ExperimentScale {
        ExperimentScale::quick()
    }

    #[test]
    fn word64_env_has_no_globals() {
        let s = scale();
        let env = EnvKind::Word64.bindings(&s).unwrap();
        assert_eq!(env["MEM_WORDS"], BoundValue::Scalar(s.dimm_words()));
    }

    #[test]
    fn row_triple_env_accounts_for_globals() {
        let s = scale();
        let victims = vec![RowKey::new(0, 0, 13)];
        let kind = EnvKind::RowTriple { victims };
        let env = kind.bindings(&s).unwrap();
        // 3 pattern rows + 1 victims row before the buffer.
        let expected_words = s.dimm_words() - 4 * s.row_words();
        assert_eq!(env["MEM_WORDS"], BoundValue::Scalar(expected_words));
        match &env["VICTIM_OFFS"] {
            BoundValue::Array(offs) => {
                // Victim (rank0, bank0, row13): chunk 13*8 = 104; offset
                // = 104 rows - 4 globals rows, in words.
                assert_eq!(offs[0], (104 - 4) * s.row_words());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn row_triple_rejects_edge_victims() {
        let s = scale();
        let kind = EnvKind::RowTriple {
            victims: vec![RowKey::new(0, 0, 0)],
        };
        assert!(matches!(kind.bindings(&s), Err(DStressError::Config(_))));
    }

    #[test]
    fn row_access_neighbourhood_layout() {
        let s = scale();
        let victim = RowKey::new(0, 0, 13); // chunk 104
        let kind = EnvKind::RowAccess {
            victims: vec![victim],
            fill: WORST_WORD,
        };
        let env = kind.bindings(&s).unwrap();
        let globals_rows = 2;
        match &env["NEIGH_OFFS"] {
            BoundValue::Array(offs) => {
                assert_eq!(offs.len(), 64);
                // r=31 is the immediate predecessor chunk 103.
                assert_eq!(offs[31], (103 - globals_rows) * s.row_words());
                // r=32 is the immediate successor chunk 105.
                assert_eq!(offs[32], (105 - globals_rows) * s.row_words());
                // r=0 is chunk 104-32 = 72.
                assert_eq!(offs[0], (72 - globals_rows) * s.row_words());
                // r=63 is chunk 104+32 = 136.
                assert_eq!(offs[63], (136 - globals_rows) * s.row_words());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cycle_fill_validates_length() {
        let s = scale();
        assert!(EnvKind::CycleFill { cycle: vec![0; 63] }
            .bindings(&s)
            .is_err());
        assert!(EnvKind::CycleFill { cycle: vec![0; 64] }
            .bindings(&s)
            .is_ok());
    }

    #[test]
    fn pick_victims_respects_margins_and_spacing() {
        let s = scale();
        // Synthesize row errors over many rows of mcu 2.
        let mut rows = Vec::new();
        for bank in 0..8u8 {
            for row in 0..16u32 {
                rows.push(RowErrors {
                    mcu: 2,
                    row: RowKey::new(1, bank, row),
                    ce: (bank as u64 + 1) * (row as u64 + 1),
                    ue: 0,
                });
            }
        }
        rows.sort_by_key(|r| std::cmp::Reverse(r.ce));
        let victims = pick_victims(&rows, &s, 2, 4);
        assert!(!victims.is_empty());
        let chunk_of = |r: &RowKey| (r.rank as u64 * 16 + r.row as u64) * 8 + r.bank as u64;
        for v in &victims {
            let c = chunk_of(v);
            assert!(c >= 97, "victim chunk {c} violates the global-data margin");
            assert!(c + 33 <= 256);
        }
        for (i, a) in victims.iter().enumerate() {
            for b in &victims[i + 1..] {
                assert!(chunk_of(a).abs_diff(chunk_of(b)) >= 80);
            }
        }
        // Rows from other MCUs are ignored.
        let foreign = vec![RowErrors {
            mcu: 1,
            row: RowKey::new(1, 4, 8),
            ce: 999,
            ue: 0,
        }];
        assert!(pick_victims(&foreign, &s, 2, 2).is_empty());
    }

    #[test]
    fn word64_quick_search_finds_a_strong_pattern() {
        // An end-to-end miniature of the Fig. 8a campaign: the GA must beat
        // the all-zeros baseline clearly within a tiny budget.
        let mut dstress = DStress::new(scale(), 7);
        let campaign = dstress
            .search_word64(60.0, Metric::CeAverage, false)
            .unwrap();
        let baseline = dstress
            .measure(
                &EnvKind::Word64,
                [("PATTERN".to_string(), BoundValue::Scalar(0u64))].into(),
                60.0,
                Metric::CeAverage,
            )
            .unwrap();
        assert!(
            campaign.result.best_fitness > baseline.fitness,
            "GA best {} vs all-zeros {}",
            campaign.result.best_fitness,
            baseline.fitness
        );
        assert_eq!(campaign.failed_evaluations, 0);
        // The leaderboard was recorded in the database.
        assert!(dstress.db.best(&campaign.name).is_some());
    }
}

#[cfg(test)]
mod env_tests {
    use super::*;
    use crate::scale::ExperimentScale;

    fn scale() -> ExperimentScale {
        ExperimentScale::quick()
    }

    #[test]
    fn chunks_env_spans_64_chunks_inside_the_buffer() {
        let s = scale();
        // Victim at chunk 104 (rank0, bank0, row13).
        let kind = EnvKind::Chunks {
            victims: vec![RowKey::new(0, 0, 13)],
        };
        let env = kind.bindings(&s).unwrap();
        assert_eq!(env["SPAN_WORDS"], BoundValue::Scalar(64 * s.row_words()));
        match &env["CHUNK_STARTS"] {
            BoundValue::Array(starts) => {
                assert_eq!(starts.len(), 1);
                // globals = 65 rows; span start = max(104-32, 65) = 72.
                assert_eq!(starts[0], (72 - 65) * s.row_words());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stride_env_lists_16_neighbours_per_victim() {
        let s = scale();
        let kind = EnvKind::StrideAccess {
            victims: vec![RowKey::new(0, 0, 13), RowKey::new(1, 0, 5)],
            fill: WORST_WORD,
        };
        let env = kind.bindings(&s).unwrap();
        assert_eq!(env["X_ITERS"], BoundValue::Scalar(s.stride_iters));
        assert_eq!(env["FILL"], BoundValue::Scalar(WORST_WORD));
        match &env["NEIGH16_OFFS"] {
            BoundValue::Array(offs) => {
                assert_eq!(offs.len(), 32);
                // First victim chunk 104, globals 2 rows: r=7 is chunk 103.
                assert_eq!(offs[7], (103 - 2) * s.row_words());
                // r=8 is chunk 105.
                assert_eq!(offs[8], (105 - 2) * s.row_words());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn victims_accessor_reflects_the_environment() {
        let v = vec![RowKey::new(0, 1, 9)];
        assert_eq!(EnvKind::Word64.victims(), &[] as &[RowKey]);
        assert_eq!(
            EnvKind::RowTriple { victims: v.clone() }.victims(),
            v.as_slice()
        );
        assert_eq!(
            EnvKind::RowAccess {
                victims: v.clone(),
                fill: 0
            }
            .victims(),
            v.as_slice()
        );
        assert_eq!(
            EnvKind::CycleFill { cycle: vec![0; 64] }.victims(),
            &[] as &[RowKey]
        );
    }

    #[test]
    fn template_sources_match_kinds() {
        assert!(EnvKind::Word64.template_source().contains("PATTERN"));
        assert!(EnvKind::Chunks { victims: vec![] }
            .template_source()
            .contains("CHUNK_PATTERN"));
        assert!(EnvKind::StrideAccess {
            victims: vec![],
            fill: 0
        }
        .template_source()
        .contains("COEFFS"));
    }

    #[test]
    fn server_at_heats_only_dimm2() {
        let dstress = DStress::new(scale(), 1);
        let server = dstress.server_at(65.0).unwrap();
        assert!((server.dimm_temperature(2) - 65.0).abs() < 0.5);
        assert!((server.dimm_temperature(0) - scale().server.ambient_c).abs() < 0.5);
        assert_eq!(server.trefp(2), dstress_dram::env::MAX_TREFP_S);
        assert_eq!(server.trefp(0), dstress_dram::env::NOMINAL_TREFP_S);
    }

    #[test]
    fn server_at_rejects_an_unreachable_setpoint_with_the_settle_report() {
        // The heater tops out ~145 °C over a 45 °C ambient; 250 °C can
        // never settle, and campaign setup must fail with the evidence
        // instead of silently starting on an unstable platform.
        let dstress = DStress::new(scale(), 1);
        let err = dstress.server_at(250.0).unwrap_err();
        match err {
            DStressError::Platform(PlatformError::ThermalUnsettled {
                mcu,
                setpoint_c,
                report,
            }) => {
                assert_eq!(mcu, 2);
                assert_eq!(setpoint_c, 250.0);
                assert!(!report.settled);
                assert!(report.final_temp_c < 250.0);
            }
            other => panic!("expected ThermalUnsettled, got {other:?}"),
        }
        // The evaluator constructor propagates the same failure.
        let err = dstress
            .evaluator(&EnvKind::Word64, 250.0, Metric::CeAverage)
            .unwrap_err();
        assert!(matches!(
            err,
            DStressError::Platform(PlatformError::ThermalUnsettled { .. })
        ));
    }

    #[test]
    fn chunks_span_rejects_victims_too_close_to_the_end() {
        let s = scale();
        // Last chunk index is 255; a victim at chunk 255 has no room for a
        // 64-chunk span starting at 223 (255-32) since 223+64 > 256.
        let kind = EnvKind::Chunks {
            victims: vec![RowKey::new(1, 7, 15)],
        };
        assert!(matches!(kind.bindings(&s), Err(DStressError::Config(_))));
    }
}
