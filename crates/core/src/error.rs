//! Framework-level errors.

use dstress_vpl::VplError;

/// Any error raised by the DStress framework.
#[derive(Debug, Clone, PartialEq)]
pub enum DStressError {
    /// Template processing or execution failed.
    Vpl(VplError),
    /// A search was configured inconsistently (bad victim rows, impossible
    /// geometry…).
    Config(String),
    /// An experiment could not produce its result (e.g. no error-prone rows
    /// found to centre the neighbour-row experiments on).
    Experiment(String),
    /// The campaign journal or database could not be read or written (the
    /// message keeps the variant comparable in tests).
    Io(String),
}

impl std::fmt::Display for DStressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DStressError::Vpl(e) => write!(f, "virus template error: {e}"),
            DStressError::Config(m) => write!(f, "configuration error: {m}"),
            DStressError::Experiment(m) => write!(f, "experiment error: {m}"),
            DStressError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for DStressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DStressError::Vpl(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VplError> for DStressError {
    fn from(e: VplError) -> Self {
        DStressError::Vpl(e)
    }
}

impl From<std::io::Error> for DStressError {
    fn from(e: std::io::Error) -> Self {
        DStressError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: DStressError = VplError::Template("x".into()).into();
        assert!(e.to_string().contains("template"));
        assert!(DStressError::Config("bad".into())
            .to_string()
            .contains("bad"));
        assert!(DStressError::Experiment("no rows".into())
            .to_string()
            .contains("no rows"));
        let io: DStressError = std::io::Error::other("disk on fire").into();
        assert_eq!(io, DStressError::Io("disk on fire".into()));
        assert!(io.to_string().contains("disk on fire"));
    }
}
