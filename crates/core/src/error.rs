//! Framework-level errors.

use dstress_platform::thermal::{SettleReport, ThermalError};
use dstress_vpl::VplError;

/// An experimental-platform failure at campaign setup: the physical rig
/// could not be brought to (or asked about) the requested operating point.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The thermal testbed ran its PID loop to the timeout without holding
    /// the DIMM at the setpoint. Carries the full [`SettleReport`] so the
    /// operator can see how close the rig got and how long it tried.
    ThermalUnsettled {
        /// The MCU whose DIMM was being heated.
        mcu: usize,
        /// The setpoint that could not be held (°C).
        setpoint_c: f64,
        /// The full settling report (final temperature, trajectory…).
        report: SettleReport,
    },
    /// The thermal rig rejected the request outright (bad channel index).
    Thermal(ThermalError),
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::ThermalUnsettled {
                mcu,
                setpoint_c,
                report,
            } => write!(
                f,
                "DIMM {mcu} did not settle at {setpoint_c} °C: reached {:.1} °C after {:.0} s",
                report.final_temp_c, report.settle_time_s
            ),
            PlatformError::Thermal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<ThermalError> for PlatformError {
    fn from(e: ThermalError) -> Self {
        PlatformError::Thermal(e)
    }
}

/// Any error raised by the DStress framework.
#[derive(Debug, Clone, PartialEq)]
pub enum DStressError {
    /// Template processing or execution failed.
    Vpl(VplError),
    /// A search was configured inconsistently (bad victim rows, impossible
    /// geometry…).
    Config(String),
    /// An experiment could not produce its result (e.g. no error-prone rows
    /// found to centre the neighbour-row experiments on).
    Experiment(String),
    /// The campaign journal or database could not be read or written (the
    /// message keeps the variant comparable in tests).
    Io(String),
    /// The experimental platform could not reach the requested operating
    /// point at campaign setup.
    Platform(PlatformError),
    /// A prepared run plan was misused (evaluated against superseded DIMM
    /// contents, or the weak-cell population overflowed the plan layout).
    /// This is a programming error in the evaluation pipeline, never a
    /// property of the virus being evaluated — supervisors must classify it
    /// as permanent rather than retry it.
    Plan(dstress_dram::PlanError),
    /// The campaign service failed an operation (rendered from the typed
    /// [`ServiceError`](crate::service::ServiceError); the message keeps
    /// the variant comparable in tests).
    Service(String),
}

impl std::fmt::Display for DStressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DStressError::Vpl(e) => write!(f, "virus template error: {e}"),
            DStressError::Config(m) => write!(f, "configuration error: {m}"),
            DStressError::Experiment(m) => write!(f, "experiment error: {m}"),
            DStressError::Io(m) => write!(f, "I/O error: {m}"),
            DStressError::Platform(e) => write!(f, "platform error: {e}"),
            DStressError::Plan(e) => write!(f, "run plan error: {e}"),
            DStressError::Service(m) => write!(f, "service error: {m}"),
        }
    }
}

impl std::error::Error for DStressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DStressError::Vpl(e) => Some(e),
            DStressError::Platform(e) => Some(e),
            DStressError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VplError> for DStressError {
    fn from(e: VplError) -> Self {
        DStressError::Vpl(e)
    }
}

impl From<PlatformError> for DStressError {
    fn from(e: PlatformError) -> Self {
        DStressError::Platform(e)
    }
}

impl From<ThermalError> for DStressError {
    fn from(e: ThermalError) -> Self {
        DStressError::Platform(PlatformError::Thermal(e))
    }
}

impl From<dstress_dram::PlanError> for DStressError {
    fn from(e: dstress_dram::PlanError) -> Self {
        DStressError::Plan(e)
    }
}

impl From<std::io::Error> for DStressError {
    fn from(e: std::io::Error) -> Self {
        DStressError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: DStressError = VplError::Template("x".into()).into();
        assert!(e.to_string().contains("template"));
        assert!(DStressError::Config("bad".into())
            .to_string()
            .contains("bad"));
        assert!(DStressError::Experiment("no rows".into())
            .to_string()
            .contains("no rows"));
        let io: DStressError = std::io::Error::other("disk on fire").into();
        assert_eq!(io, DStressError::Io("disk on fire".into()));
        assert!(io.to_string().contains("disk on fire"));
    }

    #[test]
    fn platform_errors_carry_their_evidence() {
        let unsettled = PlatformError::ThermalUnsettled {
            mcu: 2,
            setpoint_c: 250.0,
            report: SettleReport {
                final_temp_c: 144.9,
                settle_time_s: 3600.0,
                settled: false,
                trajectory: vec![45.0, 144.9],
            },
        };
        let msg = unsettled.to_string();
        assert!(msg.contains("DIMM 2") && msg.contains("250") && msg.contains("144.9"));
        let wrapped: DStressError = unsettled.into();
        assert!(wrapped.to_string().starts_with("platform error:"));
        let bad_channel: DStressError = ThermalError::ChannelOutOfRange {
            channel: 7,
            channels: 4,
        }
        .into();
        assert_eq!(
            bad_channel,
            DStressError::Platform(PlatformError::Thermal(ThermalError::ChannelOutOfRange {
                channel: 7,
                channels: 4,
            }))
        );
    }
}
