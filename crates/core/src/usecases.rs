//! Use cases (paper §VI): operating-parameter margin discovery and the
//! resulting power savings.
//!
//! "We use the discovered viruses to find the maximum TREFP (or the
//! marginal TREFP) under relaxed VDD that do not trigger DRAM errors …
//! By setting such a TREFP under relaxed VDD, we can reduce the DRAM power
//! without compromising reliability." (Fig. 14; 17.7 % DRAM / 8.6 % system
//! energy savings.)

use crate::error::DStressError;
use crate::evaluate::Metric;
use crate::search::{DStress, EnvKind};
use dstress_dram::env::{MAX_TREFP_S, NOMINAL_TREFP_S, NOMINAL_VDD_V};
use dstress_platform::PowerModel;
use dstress_vpl::BoundValue;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What "safe" means for a margin search (Fig. 14 reports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SafetyCriterion {
    /// No errors at all (neither CEs nor UEs) — Fig. 14 "No errors".
    NoErrors,
    /// Only correctable errors tolerated; no UEs — Fig. 14 "Single-bit
    /// errors".
    NoUncorrectable,
}

impl SafetyCriterion {
    fn is_safe(&self, ce: u64, ue: u64) -> bool {
        match self {
            SafetyCriterion::NoErrors => ce == 0 && ue == 0,
            SafetyCriterion::NoUncorrectable => ue == 0,
        }
    }
}

/// The outcome of one margin search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarginResult {
    /// The largest safe refresh period found (seconds).
    pub marginal_trefp_s: f64,
    /// The refresh periods probed, descending.
    pub probed: Vec<f64>,
    /// CE totals observed at each probed point.
    pub ce_at: Vec<u64>,
    /// UE totals observed at each probed point.
    pub ue_at: Vec<u64>,
}

/// The refresh-period grid probed by margin searches: nominal 64 ms up to
/// the platform maximum 2.283 s, log-spaced.
pub fn trefp_grid(points: usize) -> Vec<f64> {
    assert!(points >= 2, "a margin sweep needs at least two grid points");
    let lo = NOMINAL_TREFP_S.ln();
    let hi = MAX_TREFP_S.ln();
    (0..points)
        .map(|i| {
            // Pin the endpoints: exp(ln(x)) can round one ulp below x, and
            // margin results are compared exactly against the nominal bound.
            if i == 0 {
                NOMINAL_TREFP_S
            } else if i == points - 1 {
                MAX_TREFP_S
            } else {
                (lo + (hi - lo) * i as f64 / (points - 1) as f64).exp()
            }
        })
        .collect()
}

/// Finds the marginal TREFP for one virus at one temperature: the largest
/// grid point at which the virus manifests no (disqualifying) errors under
/// relaxed VDD.
///
/// The virus is the `(env, chromosome)` pair — typically the worst-case
/// artifact a search campaign discovered.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn find_marginal_trefp(
    dstress: &DStress,
    env: &EnvKind,
    chromosome: &HashMap<String, BoundValue>,
    temp_c: f64,
    criterion: SafetyCriterion,
    grid_points: usize,
) -> Result<MarginResult, DStressError> {
    let grid = trefp_grid(grid_points);
    let mut probed = Vec::new();
    let mut ce_at = Vec::new();
    let mut ue_at = Vec::new();
    let mut marginal = NOMINAL_TREFP_S;
    // Descend from the most aggressive setting; the first safe point is the
    // margin (error counts increase monotonically with TREFP).
    for &trefp in grid.iter().rev() {
        let mut evaluator = dstress.evaluator(env, temp_c, Metric::CeAverage)?;
        let server = evaluator.server_mut();
        server.set_trefp(2, trefp);
        server.set_trefp(3, trefp);
        let outcome = evaluator.evaluate_bindings(chromosome.clone())?;
        probed.push(trefp);
        ce_at.push(outcome.total_ce);
        ue_at.push(outcome.total_ue);
        if criterion.is_safe(outcome.total_ce, outcome.total_ue) {
            marginal = trefp;
            break;
        }
    }
    if probed.len() == grid.len()
        && !criterion.is_safe(
            *ce_at.last().expect("probed"),
            *ue_at.last().expect("probed"),
        )
    {
        // Even the nominal point errs — report nominal as the floor.
        marginal = NOMINAL_TREFP_S;
    }
    Ok(MarginResult {
        marginal_trefp_s: marginal,
        probed,
        ce_at,
        ue_at,
    })
}

/// Power savings from running the second memory domain at a discovered
/// margin instead of nominal parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavingsReport {
    /// The margin applied to DIMM2/DIMM3 (seconds).
    pub marginal_trefp_s: f64,
    /// DRAM power at nominal parameters (W).
    pub dram_nominal_w: f64,
    /// DRAM power at the margin (W).
    pub dram_margin_w: f64,
    /// Relative DRAM savings.
    pub dram_savings: f64,
    /// Relative whole-system savings.
    pub system_savings: f64,
}

/// Computes the savings of applying `marginal_trefp_s` (with relaxed VDD)
/// to the second memory domain, as Fig. 14's accompanying text does.
pub fn savings_at_margin(marginal_trefp_s: f64, dram_access_rate: f64) -> SavingsReport {
    let model = PowerModel::default();
    let nominal = model.report((0..4).map(|_| (NOMINAL_TREFP_S, NOMINAL_VDD_V, dram_access_rate)));
    let margin = model.report((0..4).map(|mcu| {
        if mcu >= 2 {
            (marginal_trefp_s, 1.428, dram_access_rate)
        } else {
            (NOMINAL_TREFP_S, NOMINAL_VDD_V, dram_access_rate)
        }
    }));
    SavingsReport {
        marginal_trefp_s,
        dram_nominal_w: nominal.dram_w,
        dram_margin_w: margin.dram_w,
        dram_savings: PowerModel::dram_savings(&nominal, &margin),
        system_savings: PowerModel::system_savings(&nominal, &margin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExperimentScale;

    #[test]
    fn grid_is_log_spaced_and_bounded() {
        let grid = trefp_grid(8);
        assert_eq!(grid.len(), 8);
        assert!((grid[0] - NOMINAL_TREFP_S).abs() < 1e-12);
        assert!((grid[7] - MAX_TREFP_S).abs() < 1e-9);
        for w in grid.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Log spacing: constant ratio.
        let r0 = grid[1] / grid[0];
        let r1 = grid[7] / grid[6];
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn criteria_differ_on_ce_only_points() {
        assert!(SafetyCriterion::NoErrors.is_safe(0, 0));
        assert!(!SafetyCriterion::NoErrors.is_safe(3, 0));
        assert!(SafetyCriterion::NoUncorrectable.is_safe(3, 0));
        assert!(!SafetyCriterion::NoUncorrectable.is_safe(0, 1));
    }

    #[test]
    fn margin_search_finds_a_mid_grid_point() {
        let dstress = DStress::new(ExperimentScale::quick(), 3);
        let chromosome: HashMap<String, BoundValue> = [(
            "PATTERN".to_string(),
            BoundValue::Scalar(crate::search::WORST_WORD),
        )]
        .into();
        let result = find_marginal_trefp(
            &dstress,
            &EnvKind::Word64,
            &chromosome,
            60.0,
            SafetyCriterion::NoErrors,
            8,
        )
        .unwrap();
        // At 60 °C the max TREFP errs and the nominal one doesn't, so the
        // margin lies strictly inside the grid.
        assert!(result.marginal_trefp_s < MAX_TREFP_S);
        assert!(result.marginal_trefp_s >= NOMINAL_TREFP_S);
        assert!(result.ce_at[0] > 0, "the most aggressive point must err");
    }

    #[test]
    fn ue_criterion_gives_higher_margin_than_no_errors() {
        let dstress = DStress::new(ExperimentScale::quick(), 3);
        let chromosome: HashMap<String, BoundValue> = [(
            "PATTERN".to_string(),
            BoundValue::Scalar(crate::search::WORST_WORD),
        )]
        .into();
        let strict = find_marginal_trefp(
            &dstress,
            &EnvKind::Word64,
            &chromosome,
            60.0,
            SafetyCriterion::NoErrors,
            8,
        )
        .unwrap();
        let lenient = find_marginal_trefp(
            &dstress,
            &EnvKind::Word64,
            &chromosome,
            60.0,
            SafetyCriterion::NoUncorrectable,
            8,
        )
        .unwrap();
        assert!(
            lenient.marginal_trefp_s >= strict.marginal_trefp_s,
            "CE-tolerant margin {} must be >= no-error margin {}",
            lenient.marginal_trefp_s,
            strict.marginal_trefp_s
        );
    }

    #[test]
    fn savings_are_positive_and_double_digit_at_good_margins() {
        let report = savings_at_margin(1.0, 1.0e6);
        assert!(
            report.dram_savings > 0.05,
            "DRAM savings {}",
            report.dram_savings
        );
        assert!(report.system_savings > 0.0);
        assert!(report.system_savings < report.dram_savings);
        assert!(report.dram_margin_w < report.dram_nominal_w);
    }
}
