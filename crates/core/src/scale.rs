//! Experiment scales.
//!
//! The paper's campaign ran for seven months on 8 GB modules; the
//! reproduction compresses both time (refresh windows instead of 2-hour
//! exposures) and space (a scaled DIMM with proportionally dense weak
//! cells). Two presets are provided:
//!
//! * [`ExperimentScale::paper`] — the scale the figure-regeneration
//!   binaries use. Rows are 2 KB (¼ of the real 8 KB), so the paper's
//!   "24 KB pattern" (one victim row + both same-bank neighbours) is a
//!   6 KB chromosome here and the "512 KB pattern" (64 consecutive chunks)
//!   is 128 KB. All structural relationships are preserved; EXPERIMENTS.md
//!   records the scale next to every figure.
//! * [`ExperimentScale::quick`] — a miniature for unit/integration tests.

use dstress_dram::DimmGeometry;
use dstress_ga::GaConfig;
use dstress_platform::ServerConfig;
use serde::{Deserialize, Serialize};

/// Everything that sizes an experimental campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Human-readable scale name (appears in reports).
    pub name: &'static str,
    /// The server (and DIMM physics) configuration.
    pub server: ServerConfig,
    /// Base GA configuration (searches tweak genome-specific fields).
    pub ga: GaConfig,
    /// Virus runs averaged per fitness evaluation (paper: 10).
    pub runs_per_virus: u32,
    /// Victim (error-prone) rows the neighbour-row experiments centre on.
    pub victims: usize,
    /// Iterations of the stride loop in access template 2 (paper: 65536;
    /// scaled so one trace pass stays small — replay supplies intensity).
    pub stride_iters: u64,
    /// Random viruses sampled by the efficiency experiment (Fig. 13).
    pub random_samples: usize,
}

impl ExperimentScale {
    /// The figure-regeneration scale (see module docs).
    pub fn paper() -> Self {
        let mut server = ServerConfig::default();
        server.dimm.geometry = DimmGeometry {
            ranks: 2,
            banks: 8,
            rows_per_bank: 32,
            row_bytes: 2048,
        };
        server.windows_per_run = 12;
        // The DIMM is scaled 4x down from 8 KB rows, so scale the cache the
        // same way (the paper's viruses are cache-filtered, not cache-free).
        server.access.cache_bytes = 64 * 1024;
        // The DIMM capacity is scaled down ~4000x from 8 GB, so the load
        // rate is scaled too: per-row activation rates (the quantity the
        // disturbance physics consumes) stay realistic.
        server.access.accesses_per_s = 150.0e3;
        // Quiescent (scrubbed) content outside the virus footprint.
        server.dimm.default_fill = 0xCCCC_CCCC_CCCC_CCCC;
        server.density_multipliers = [0.5, 0.25, 1.0, 0.02];
        let mut ga = GaConfig::paper_defaults();
        // The popcount calibration converges in ~60-90 generations; 150
        // caps the non-convergent searches (the stand-in for the paper's
        // two-week wall-clock limit).
        ga.max_generations = 150;
        ExperimentScale {
            name: "paper",
            server,
            ga,
            runs_per_virus: 10,
            victims: 4,
            stride_iters: 512,
            random_samples: 400,
        }
    }

    /// A miniature scale for tests: tiny DIMMs, small populations, few
    /// generations — seconds instead of minutes.
    pub fn quick() -> Self {
        let mut server = ServerConfig::default();
        server.dimm.geometry = DimmGeometry {
            ranks: 2,
            banks: 8,
            rows_per_bank: 16,
            row_bytes: 1024,
        };
        server.dimm.weak.singles_per_rank = 800;
        server.dimm.weak.pairs_per_rank = 30;
        server.windows_per_run = 4;
        server.access.cache_bytes = 16 * 1024;
        server.access.accesses_per_s = 150.0e3;
        server.dimm.default_fill = 0xCCCC_CCCC_CCCC_CCCC;
        server.density_multipliers = [0.5, 0.25, 1.0, 0.02];
        let mut ga = GaConfig::paper_defaults();
        ga.population_size = 12;
        ga.max_generations = 12;
        ga.stagnation_window = 4;
        ExperimentScale {
            name: "quick",
            server,
            ga,
            runs_per_virus: 3,
            victims: 2,
            stride_iters: 64,
            random_samples: 40,
        }
    }

    /// Reads the scale from the `DSTRESS_SCALE` environment variable
    /// (`paper` default, `quick` for smoke runs).
    pub fn from_env() -> Self {
        match std::env::var("DSTRESS_SCALE").as_deref() {
            Ok("quick") => ExperimentScale::quick(),
            _ => ExperimentScale::paper(),
        }
    }

    /// 64-bit words per DRAM row at this scale.
    pub fn row_words(&self) -> u64 {
        self.server.dimm.geometry.row_bytes as u64 / 8
    }

    /// Chunk stride (in words) between same-bank adjacent rows — 8 KB
    /// chunks stripe across the banks (paper Fig. 1a), so consecutive rows
    /// of one bank sit `banks × row_words` words apart in the address
    /// space.
    pub fn bank_stride_words(&self) -> u64 {
        self.server.dimm.geometry.banks as u64 * self.row_words()
    }

    /// Total 64-bit words per DIMM.
    pub fn dimm_words(&self) -> u64 {
        self.server.dimm.geometry.capacity_bytes() / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_consistent() {
        let s = ExperimentScale::paper();
        assert_eq!(s.row_words(), 256);
        assert_eq!(s.bank_stride_words(), 8 * 256);
        assert_eq!(s.dimm_words(), 2 * 8 * 32 * 256);
        assert_eq!(s.ga.population_size, 40);
    }

    #[test]
    fn quick_scale_is_smaller() {
        let q = ExperimentScale::quick();
        let p = ExperimentScale::paper();
        assert!(q.dimm_words() < p.dimm_words());
        assert!(q.ga.population_size < p.ga.population_size);
        assert!(q.runs_per_virus < p.runs_per_virus);
    }
}
