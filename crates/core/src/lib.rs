//! # DStress — automatic synthesis of DRAM reliability stress viruses
//!
//! A full-system reproduction of *DStress: Automatic Synthesis of DRAM
//! Reliability Stress Viruses using Genetic Algorithms* (Mukhanov,
//! Nikolopoulos, Karakonstantis — MICRO 2020) on a simulated experimental
//! platform.
//!
//! DStress searches for the data patterns and memory access patterns that
//! maximize the number of DRAM errors a server's ECC hardware observes,
//! *without any knowledge of the DRAM internal design*. The search engine
//! is a genetic algorithm over virus templates written in a small C-like
//! template language.
//!
//! ## Architecture (paper Fig. 4)
//!
//! 1. **Processing phase** — [`templates`] + `dstress-vpl`: lexical, syntax
//!    and semantic analysis of virus templates; extraction of the searched
//!    parameters.
//! 2. **Synthesis phase** — [`search`] + `dstress-ga`: GA over chromosomes
//!    encoding data / access patterns, with Sokal–Michener / weighted
//!    Jaccard convergence on the top-40 leaderboard and a virus database
//!    for resuming interrupted campaigns.
//! 3. **Evaluation phase** — [`evaluate`] + `dstress-platform` +
//!    `dstress-dram`: each candidate virus runs on a simulated X-Gene 2
//!    server with four DIMMs under relaxed refresh period and supply
//!    voltage at controlled temperature; fitness is the CE / UE count from
//!    the SECDED ECC model.
//!
//! ## Quickstart
//!
//! ```no_run
//! use dstress::{DStress, ExperimentScale, Metric};
//!
//! let mut dstress = DStress::new(ExperimentScale::quick(), 42);
//! let campaign = dstress.search_word64(60.0, Metric::CeAverage, false)?;
//! println!(
//!     "worst 64-bit pattern: {:#018x} ({} CEs/run)",
//!     campaign.result.best.to_words()[0],
//!     campaign.result.best_fitness,
//! );
//! # Ok::<(), dstress::DStressError>(())
//! ```
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's evaluation section; see EXPERIMENTS.md for paper-vs-measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod evaluate;
pub mod experiments;
pub mod march;
pub mod microbench;
pub mod patterns;
pub mod report;
pub mod scale;
pub mod search;
pub mod service;
pub mod templates;
pub mod usecases;
pub mod usecases_retention;
pub mod workloads;

pub use dstress_ga::journal::{CampaignJournal, DiskStorage, MemStorage, SharedStorage, Storage};
pub use dstress_ga::pool::{CampaignScheduler, EvalPool};
pub use dstress_ga::supervise::{Hazard, HazardPlan, Incident, IncidentKind, SupervisionPolicy};
pub use dstress_ga::EvalStats;
pub use error::{DStressError, PlatformError};
pub use evaluate::{EvalOutcome, Metric, ParallelBitFitness, ParallelIntFitness, VirusEvaluator};
pub use microbench::Baseline;
pub use scale::ExperimentScale;
pub use search::{DStress, EnvKind, BEST_WORD, WORST_WORD};
pub use workloads::Workload;
