//! The built-in virus templates (paper §III-A/§III-B).
//!
//! Five template families drive the paper's evaluation:
//!
//! 1. [`WORD64`] — the 64-bit data-pattern virus: fill all allocatable
//!    memory with one searched 64-bit word, then keep it under read
//!    pressure (Fig. 8a–d);
//! 2. [`ROW_TRIPLE`] — the "24 KB" pattern: three per-row patterns written
//!    to each error-prone row and its two same-bank neighbours (Fig. 9);
//! 3. [`CHUNKS`] — the "512 KB" pattern: one pattern spanning 64
//!    consecutive 8 KB chunks around each error-prone row (Fig. 10);
//! 4. [`ROW_ACCESS`] — access template 1: a 64-bit bitmap selecting which
//!    of the 32 predecessor / 32 successor rows of each error-prone row to
//!    stream repeatedly (Fig. 11);
//! 5. [`STRIDE_ACCESS`] — access template 2: per-row stride coefficients
//!    `aᵢ·x + bᵢ` with `aᵢ, bᵢ ∈ [0, 20]` over the 16 neighbouring rows
//!    (Fig. 12, Eq. 1).
//!
//! Placeholders in ALL-CAPS with a leading searched parameter section are
//! explored by the GA; the remaining placeholders (`MEM_BYTES`,
//! `VICTIM_OFFS`, `FILL`, …) are *environment inputs* the framework binds
//! from the known address mapping — exactly how the paper computes target
//! rows "using the mapping function discussed in Section II".

use crate::error::DStressError;
use crate::scale::ExperimentScale;
use dstress_vpl::{ProcessedTemplate, Template};
use std::collections::HashMap;

/// Template 1 — the 64-bit data-pattern virus (paper Fig. 3 is this shape).
pub const WORD64: &str = r#"
->parameters
$$$_PATTERN_$$$ [0,18446744073709551615]

->local_data
unsigned long long i = 0;
unsigned long long acc = 0;

->body
volatile unsigned long long* buf = (unsigned long long*)(malloc($$$_MEM_BYTES_$$$));
/* data pattern */
for (i = 0; i < $$$_MEM_WORDS_$$$; i += 1) {
    buf[i] = $$$_PATTERN_$$$;
}
/* memory access pattern: keep the filled memory under read pressure */
for (i = 0; i < $$$_MEM_WORDS_$$$; i += 1) {
    acc += buf[i];
}
"#;

/// Template 2 — the row-triple ("24 KB") data-pattern virus: a searched
/// pattern for each error-prone row and for the rows preceding/following it
/// in the same bank (paper §III-B, Fig. 9).
pub const ROW_TRIPLE: &str = r#"
->parameters
$$$_PREV_PATTERN_$$$ [ROW_WORDS][0,18446744073709551615]
$$$_VICTIM_PATTERN_$$$ [ROW_WORDS][0,18446744073709551615]
$$$_NEXT_PATTERN_$$$ [ROW_WORDS][0,18446744073709551615]

->global_data
volatile unsigned long long prev_pat[] = $$$_PREV_PATTERN_$$$;
volatile unsigned long long victim_pat[] = $$$_VICTIM_PATTERN_$$$;
volatile unsigned long long next_pat[] = $$$_NEXT_PATTERN_$$$;
volatile unsigned long long victims[] = $$$_VICTIM_OFFS_$$$;

->local_data
unsigned long long i = 0;
unsigned long long v = 0;
unsigned long long base = 0;
unsigned long long acc = 0;

->body
volatile unsigned long long* buf = (unsigned long long*)(malloc($$$_MEM_BYTES_$$$));
/* background fill */
for (i = 0; i < $$$_MEM_WORDS_$$$; i += 1) {
    buf[i] = $$$_FILL_$$$;
}
/* per-row patterns around each error-prone row */
for (v = 0; v < $$$_NV_$$$; v += 1) {
    base = victims[v];
    for (i = 0; i < $$$_ROW_WORDS_$$$; i += 1) {
        buf[base - $$$_BANK_STRIDE_$$$ + i] = prev_pat[i];
        buf[base + i] = victim_pat[i];
        buf[base + $$$_BANK_STRIDE_$$$ + i] = next_pat[i];
    }
}
/* read pressure over the victim neighbourhoods */
for (v = 0; v < $$$_NV_$$$; v += 1) {
    base = victims[v];
    for (i = 0; i < $$$_ROW_WORDS_$$$; i += 1) {
        acc += buf[base - $$$_BANK_STRIDE_$$$ + i];
        acc += buf[base + i];
        acc += buf[base + $$$_BANK_STRIDE_$$$ + i];
    }
}
"#;

/// Template 3 — the chunk-span ("512 KB") data-pattern virus: one searched
/// pattern across 64 consecutive chunks around each error-prone row
/// (paper §V-A.3, Fig. 10).
pub const CHUNKS: &str = r#"
->parameters
$$$_CHUNK_PATTERN_$$$ [SPAN_WORDS][0,18446744073709551615]

->global_data
volatile unsigned long long cpat[] = $$$_CHUNK_PATTERN_$$$;
volatile unsigned long long starts[] = $$$_CHUNK_STARTS_$$$;

->local_data
unsigned long long i = 0;
unsigned long long v = 0;
unsigned long long s = 0;
unsigned long long acc = 0;

->body
volatile unsigned long long* buf = (unsigned long long*)(malloc($$$_MEM_BYTES_$$$));
for (i = 0; i < $$$_MEM_WORDS_$$$; i += 1) {
    buf[i] = $$$_FILL_$$$;
}
for (v = 0; v < $$$_NV_$$$; v += 1) {
    s = starts[v];
    for (i = 0; i < $$$_SPAN_WORDS_$$$; i += 1) {
        buf[s + i] = cpat[i];
    }
}
for (v = 0; v < $$$_NV_$$$; v += 1) {
    s = starts[v];
    for (i = 0; i < $$$_SPAN_WORDS_$$$; i += 1) {
        acc += buf[s + i];
    }
}
"#;

/// Template 4 — memory-access virus, first scheme: a binary vector over the
/// 32 predecessor and 32 successor rows of each error-prone row; selected
/// rows are streamed whole, repeatedly (paper §III-B/§V-A.4, Fig. 11).
pub const ROW_ACCESS: &str = r#"
->parameters
$$$_SEL_$$$ [64][0,1]

->global_data
volatile unsigned long long sel[] = $$$_SEL_$$$;
volatile unsigned long long neigh[] = $$$_NEIGH_OFFS_$$$;

->local_data
unsigned long long i = 0;
unsigned long long r = 0;
unsigned long long v = 0;
unsigned long long x = 0;
unsigned long long base = 0;
unsigned long long acc = 0;

->body
volatile unsigned long long* buf = (unsigned long long*)(malloc($$$_MEM_BYTES_$$$));
/* the paper fills memory with the worst-case 64-bit data pattern first */
for (i = 0; i < $$$_MEM_WORDS_$$$; i += 1) {
    buf[i] = $$$_FILL_$$$;
}
for (x = 0; x < $$$_REPS_$$$; x += 1) {
    for (r = 0; r < 64; r += 1) {
        if (sel[r]) {
            for (v = 0; v < $$$_NV_$$$; v += 1) {
                base = neigh[v * 64 + r];
                /* single-word reads with a rotating offset: each visit
                   re-activates the row (the paper's viruses hammer through
                   ordinary loads; the cache cannot hold the rotating set) */
                acc += buf[base + (x * 9) % $$$_ROW_WORDS_$$$];
            }
        }
    }
}
"#;

/// Template 5 — memory-access virus, second scheme: per-neighbour-row
/// stride coefficients `aᵢ·x + bᵢ` (paper Eq. 1) over the 16 rows adjacent
/// to each error-prone row, with `aᵢ, bᵢ ∈ [0, 20]` (Fig. 12).
pub const STRIDE_ACCESS: &str = r#"
->parameters
$$$_COEFFS_$$$ [32][0,20]

->global_data
volatile unsigned long long coeffs[] = $$$_COEFFS_$$$;
volatile unsigned long long neigh16[] = $$$_NEIGH16_OFFS_$$$;

->local_data
unsigned long long x = 0;
unsigned long long r = 0;
unsigned long long v = 0;
unsigned long long i = 0;
unsigned long long base = 0;
unsigned long long acc = 0;

->body
volatile unsigned long long* buf = (unsigned long long*)(malloc($$$_MEM_BYTES_$$$));
for (i = 0; i < $$$_MEM_WORDS_$$$; i += 1) {
    buf[i] = $$$_FILL_$$$;
}
for (x = 0; x < $$$_X_ITERS_$$$; x += 1) {
    for (r = 0; r < 16; r += 1) {
        for (v = 0; v < $$$_NV_$$$; v += 1) {
            base = neigh16[v * 16 + r];
            acc += buf[base + (coeffs[r] * x + coeffs[16 + r]) % $$$_ROW_WORDS_$$$];
        }
    }
}
"#;

/// Template 6 — the classic data-pattern micro-benchmarks (MSCAN,
/// checkerboard, walking 0s/1s, random): fill memory by cycling a 64-word
/// environment-supplied pattern vector, then sweep-read (paper §V-A.1's
/// baselines).
pub const CYCLE_FILL: &str = r#"
->parameters

->global_data
volatile unsigned long long cycle[] = $$$_CYCLE_$$$;

->local_data
unsigned long long i = 0;
unsigned long long acc = 0;

->body
volatile unsigned long long* buf = (unsigned long long*)(malloc($$$_MEM_BYTES_$$$));
for (i = 0; i < $$$_MEM_WORDS_$$$; i += 1) {
    buf[i] = cycle[i % 64];
}
for (i = 0; i < $$$_MEM_WORDS_$$$; i += 1) {
    acc += buf[i];
}
"#;

/// Processes a built-in template at a given scale (resolving the
/// `ROW_WORDS`/`SPAN_WORDS` constants used in parameter declarations).
///
/// # Errors
///
/// Propagates template processing failures.
pub fn process(source: &str, scale: &ExperimentScale) -> Result<ProcessedTemplate, DStressError> {
    let constants: HashMap<String, u64> = [
        ("ROW_WORDS".to_string(), scale.row_words()),
        ("SPAN_WORDS".to_string(), 64 * scale.row_words()),
    ]
    .into_iter()
    .collect();
    Ok(Template::parse(source)?.process(&constants)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_vpl::ParamShape;

    fn scale() -> ExperimentScale {
        ExperimentScale::quick()
    }

    #[test]
    fn word64_template_processes() {
        let t = process(WORD64, &scale()).unwrap();
        assert_eq!(t.params().len(), 1);
        assert_eq!(t.params()[0].name, "PATTERN");
        assert_eq!(
            t.params()[0].shape,
            ParamShape::Scalar {
                lo: 0,
                hi: u64::MAX
            }
        );
    }

    #[test]
    fn row_triple_template_processes() {
        let s = scale();
        let t = process(ROW_TRIPLE, &s).unwrap();
        assert_eq!(t.params().len(), 3);
        for p in t.params() {
            assert_eq!(
                p.shape,
                ParamShape::Array {
                    len: s.row_words(),
                    lo: 0,
                    hi: u64::MAX
                },
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn chunks_template_processes() {
        let s = scale();
        let t = process(CHUNKS, &s).unwrap();
        assert_eq!(t.params().len(), 1);
        assert_eq!(
            t.params()[0].shape,
            ParamShape::Array {
                len: 64 * s.row_words(),
                lo: 0,
                hi: u64::MAX
            }
        );
    }

    #[test]
    fn row_access_template_processes() {
        let t = process(ROW_ACCESS, &scale()).unwrap();
        assert_eq!(
            t.params()[0].shape,
            ParamShape::Array {
                len: 64,
                lo: 0,
                hi: 1
            }
        );
    }

    #[test]
    fn stride_access_template_processes() {
        let t = process(STRIDE_ACCESS, &scale()).unwrap();
        assert_eq!(
            t.params()[0].shape,
            ParamShape::Array {
                len: 32,
                lo: 0,
                hi: 20
            }
        );
    }

    #[test]
    fn cycle_fill_template_has_no_searched_params() {
        let t = process(CYCLE_FILL, &scale()).unwrap();
        assert!(t.params().is_empty());
    }
}
