//! The `dstressd` wire protocol: newline-delimited JSON frames.
//!
//! Every frame is one JSON document on one line. Clients send a
//! [`Request`] per line; the daemon answers each with exactly one
//! [`Response`] line — except `watch`, which answers with a
//! [`Response::Watching`] acknowledgement followed by a stream of
//! [`Event`] lines until the campaign reaches a terminal state.
//!
//! The grammar is deliberately tiny and self-describing (externally
//! tagged enums), e.g.:
//!
//! ```text
//! -> {"Submit":{"spec":{"temp_c":60.0,"seed":42,"scale":"quick"}}}
//! <- {"Submitted":{"campaign":0,"name":"word64-ce-max-60C"}}
//! -> {"Watch":{"campaign":0}}
//! <- {"Watching":{"campaign":0}}
//! <- {"Generation":{"campaign":0,"generation":1,...}}
//! ```
//!
//! Malformed input never kills the daemon: a torn or unparseable frame, a
//! frame longer than [`MAX_FRAME_BYTES`], or an unknown command all
//! produce a typed [`Response::Error`] and the connection stays usable.

use dstress_ga::{EvalStats, Incident};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead};

/// The longest frame the daemon will buffer; longer lines are discarded
/// and answered with a typed error (a client cannot balloon daemon memory
/// by never sending a newline).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Everything a client must say to launch a campaign. Fields mirror the
/// `search-word64` CLI flags; every field has a default so a minimal
/// submit is `{"Submit":{"spec":{}}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Experiment scale: `"quick"` or `"paper"`.
    #[serde(default)]
    pub scale: String,
    /// DIMM2 temperature in °C (0 means the 60 °C default).
    #[serde(default)]
    pub temp_c: f64,
    /// Optimize for uncorrectable-error runs instead of average CEs.
    #[serde(default)]
    pub ue: bool,
    /// Minimize the metric instead of maximizing it.
    #[serde(default)]
    pub minimize: bool,
    /// Framework seed; the engine seed is derived exactly as a solo
    /// `search_word64` run would derive its first campaign seed.
    #[serde(default)]
    pub seed: u64,
    /// Generation-step budget; `0` = unbounded. A campaign that exhausts
    /// its budget pauses (checkpointed, resumable), it does not finish.
    #[serde(default)]
    pub step_budget: u64,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            scale: String::new(),
            temp_c: 0.0,
            ue: false,
            minimize: false,
            seed: 0,
            step_budget: 0,
        }
    }
}

impl CampaignSpec {
    /// The temperature with the unset-default applied.
    pub fn temperature(&self) -> f64 {
        if self.temp_c == 0.0 {
            60.0
        } else {
            self.temp_c
        }
    }

    /// The seed with the unset-default applied.
    pub fn framework_seed(&self) -> u64 {
        if self.seed == 0 {
            42
        } else {
            self.seed
        }
    }
}

/// One client request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Launch a campaign; answered with [`Response::Submitted`].
    Submit {
        /// What to search for.
        spec: CampaignSpec,
    },
    /// One campaign's progress; answered with [`Response::Status`].
    Status {
        /// The campaign id [`Response::Submitted`] returned.
        campaign: u64,
    },
    /// Every campaign's progress; answered with [`Response::List`].
    List,
    /// Stop scheduling a campaign (state is kept, resumable).
    Pause {
        /// The campaign to pause.
        campaign: u64,
    },
    /// Resume a paused campaign exactly where it stopped.
    Resume {
        /// The campaign to resume.
        campaign: u64,
    },
    /// Cancel a campaign: it stops permanently (journal retained).
    Cancel {
        /// The campaign to cancel.
        campaign: u64,
    },
    /// Subscribe to a campaign's live event stream.
    Watch {
        /// The campaign to watch.
        campaign: u64,
        /// Resume the stream from this sequence number: every retained
        /// event with `seq >= from_seq` is replayed before live ones.
        /// `0` (the default) streams the retained backlog and then live
        /// events, which is also the right value for a first watch.
        #[serde(default)]
        from_seq: u64,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
}

/// One entry of a campaign leaderboard, wire-encoded as the genome's
/// 64-bit words plus its fitness (user orientation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaderboardEntry {
    /// The chromosome as 64-bit words.
    pub genes: Vec<u64>,
    /// Its fitness in user orientation.
    pub fitness: f64,
}

/// A point-in-time progress report for one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// The campaign id.
    pub campaign: u64,
    /// The campaign's database key (e.g. `word64-ce-max-60C`).
    pub name: String,
    /// `running`, `paused`, `budget-paused`, `failed`, `done` or
    /// `cancelled`.
    pub state: String,
    /// Completed generations.
    pub generation: u32,
    /// Best fitness so far (absent before the first evaluation).
    pub best: Option<LeaderboardEntry>,
    /// Distinct evaluations run so far.
    pub evaluations: u64,
    /// Evaluations served from the campaign's cache.
    pub cache_hits: u64,
    /// Supervision incidents so far.
    pub incidents: u64,
    /// Whether the similarity criterion has been met.
    pub converged: bool,
    /// The storage error that quarantined the campaign, when `state` is
    /// `failed` (absent otherwise).
    #[serde(default)]
    pub error: Option<String>,
}

/// One daemon response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A campaign was registered and scheduled.
    Submitted {
        /// Its id (use with status / watch / pause / cancel).
        campaign: u64,
        /// Its database key.
        name: String,
    },
    /// One campaign's progress.
    Status {
        /// The report.
        report: StatusReport,
    },
    /// Every campaign's progress, in id order.
    List {
        /// One report per campaign ever submitted.
        campaigns: Vec<StatusReport>,
    },
    /// A pause / resume / cancel took effect.
    Ok,
    /// The event stream for this campaign follows on this connection.
    Watching {
        /// The watched campaign.
        campaign: u64,
    },
    /// Liveness answer.
    Pong,
    /// The request could not be served; the connection stays usable.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// One live progress event on a `watch` stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A campaign advanced one generation.
    Generation {
        /// The campaign id.
        campaign: u64,
        /// Completed generations after this step.
        generation: u32,
        /// Best entry so far.
        best: Option<LeaderboardEntry>,
        /// Leaderboard entries that are new since the previous event.
        leaderboard_delta: Vec<LeaderboardEntry>,
        /// Cumulative evaluation statistics, including pool counters.
        stats: EvalStats,
        /// Supervision incidents this generation.
        incidents: Vec<Incident>,
    },
    /// A campaign finished (converged or exhausted its generations).
    Completed {
        /// The campaign id.
        campaign: u64,
        /// Total generations.
        generations: u32,
        /// Whether the similarity criterion was met.
        converged: bool,
        /// The final leaderboard, best first.
        leaderboard: Vec<LeaderboardEntry>,
    },
    /// A campaign was cancelled by a client.
    Cancelled {
        /// The campaign id.
        campaign: u64,
    },
    /// A campaign hit a journal/registry storage fault and was
    /// quarantined: its scheduler slot was released, its on-disk journal
    /// is intact, and a `resume` will retry recovery.
    Failed {
        /// The campaign id.
        campaign: u64,
        /// The storage error that quarantined it.
        error: String,
        /// The sequence number of the last event published before the
        /// failure.
        at_seq: u64,
        /// The deterministic backoff (recorded, not slept) a client
        /// should wait before the next `resume` attempt.
        resume_backoff_ms: u64,
    },
    /// This subscriber fell behind and `missed` events were dropped
    /// (bounded-buffer lagging-client semantics).
    Lagged {
        /// How many events were dropped since the last delivery.
        missed: u64,
    },
}

/// One event on the wire, stamped with its per-campaign sequence number.
///
/// Sequence numbers start at 1 and increase by one per published event;
/// they survive daemon restarts (a revived campaign continues its
/// numbering), which is what makes `watch --from-seq` reconnects exact:
/// a client that saw seq `n` asks for `from_seq = n + 1` and receives no
/// duplicate and no gap (within the retained ring). Connection-local
/// notifications ([`Event::Lagged`]) carry seq `0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqEvent {
    /// The per-campaign sequence number (`0` for connection-local
    /// notifications).
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection (clean end of stream).
    Eof,
    /// The line exceeded [`MAX_FRAME_BYTES`]; the overflow was discarded
    /// up to the next newline, so the connection is still usable.
    TooLong,
    /// Transport failure.
    Io(io::Error),
}

/// Reads one newline-delimited frame, enforcing [`MAX_FRAME_BYTES`].
///
/// On [`FrameError::TooLong`] the oversized line is consumed to its
/// terminating newline (or EOF), so the caller can reply with a typed
/// error and keep serving the connection.
///
/// # Errors
///
/// [`FrameError::Eof`] at end of stream, [`FrameError::TooLong`] for an
/// oversized line, [`FrameError::Io`] on transport failures.
pub fn read_frame<R: BufRead>(reader: &mut R) -> Result<String, FrameError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        };
        if available.is_empty() {
            return if line.is_empty() {
                Err(FrameError::Eof)
            } else {
                // A torn final frame (no newline): surface what arrived;
                // the parse layer will answer it with a typed error.
                Ok(String::from_utf8_lossy(&line).into_owned())
            };
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |n| n + 1);
        if line.len() + take > MAX_FRAME_BYTES + 1 {
            // Too long: consume to the end of the line, then report.
            let mut consumed = take;
            let done = newline.is_some();
            reader.consume(consumed);
            if !done {
                loop {
                    let buf = match reader.fill_buf() {
                        Ok(buf) => buf,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(FrameError::Io(e)),
                    };
                    if buf.is_empty() {
                        break;
                    }
                    consumed = match buf.iter().position(|&b| b == b'\n') {
                        Some(n) => n + 1,
                        None => buf.len(),
                    };
                    let terminated = buf[..consumed].contains(&b'\n');
                    reader.consume(consumed);
                    if terminated {
                        break;
                    }
                }
            }
            return Err(FrameError::TooLong);
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(String::from_utf8_lossy(&line).into_owned());
        }
    }
}

/// A stateful frame reader for sockets with a read timeout.
///
/// [`read_frame`] assumes a blocking reader: a timeout mid-line would
/// lose the bytes already buffered. `FrameReader` instead keeps the
/// partial line across timeouts — [`read`](FrameReader::read) returns
/// `Ok(None)` when the underlying read times out ([`io::ErrorKind::WouldBlock`]
/// or [`io::ErrorKind::TimedOut`]) and resumes the same frame on the
/// next call. This is what lets the daemon poll a per-client deadline
/// (reaping idle and slow-loris connections) without ever tearing a
/// legitimate slow frame.
#[derive(Debug, Default)]
pub struct FrameReader {
    partial: Vec<u8>,
    /// Mid-discard of an oversized line (waiting for its newline).
    overflow: bool,
}

impl FrameReader {
    /// A reader with no partial frame.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Whether a frame has started arriving but not yet completed — the
    /// slow-loris signal a caller's frame deadline applies to.
    pub fn mid_frame(&self) -> bool {
        !self.partial.is_empty() || self.overflow
    }

    /// Reads the next newline-delimited frame, enforcing
    /// [`MAX_FRAME_BYTES`]. Returns `Ok(None)` on a read timeout with
    /// the partial frame retained for the next call.
    ///
    /// # Errors
    ///
    /// [`FrameError::Eof`] at end of stream, [`FrameError::TooLong`]
    /// once an oversized line has been consumed to its newline,
    /// [`FrameError::Io`] on transport failures other than timeouts.
    pub fn read<R: BufRead>(&mut self, reader: &mut R) -> Result<Option<String>, FrameError> {
        loop {
            let available = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(FrameError::Io(e)),
            };
            if available.is_empty() {
                if self.overflow {
                    self.overflow = false;
                    return Err(FrameError::TooLong);
                }
                if self.partial.is_empty() {
                    return Err(FrameError::Eof);
                }
                // A torn final frame (no newline): surface what arrived;
                // the parse layer will answer it with a typed error.
                let line = std::mem::take(&mut self.partial);
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            let newline = available.iter().position(|&b| b == b'\n');
            let take = newline.map_or(available.len(), |n| n + 1);
            if self.overflow {
                reader.consume(take);
                if newline.is_some() {
                    self.overflow = false;
                    return Err(FrameError::TooLong);
                }
                continue;
            }
            if self.partial.len() + take > MAX_FRAME_BYTES + 1 {
                self.partial.clear();
                reader.consume(take);
                if newline.is_some() {
                    return Err(FrameError::TooLong);
                }
                self.overflow = true;
                continue;
            }
            self.partial.extend_from_slice(&available[..take]);
            reader.consume(take);
            if newline.is_some() {
                while self.partial.last() == Some(&b'\n') || self.partial.last() == Some(&b'\r') {
                    self.partial.pop();
                }
                let line = std::mem::take(&mut self.partial);
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
        }
    }
}

/// Parses a request frame into either a [`Request`] or the typed error
/// reply the daemon sends back verbatim.
// The Err variant is always the small `Response::Error`; the enum's big
// variants never travel this path, so boxing would tax the hot side for
// nothing.
#[allow(clippy::result_large_err)]
pub fn parse_request(frame: &str) -> Result<Request, Response> {
    if frame.trim().is_empty() {
        return Err(Response::Error {
            message: "empty frame (send one JSON request per line)".into(),
        });
    }
    serde_json::from_str::<Request>(frame).map_err(|e| Response::Error {
        message: format!("unparseable request: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn requests_round_trip_through_json() {
        let requests = vec![
            Request::Submit {
                spec: CampaignSpec {
                    scale: "quick".into(),
                    temp_c: 72.5,
                    ue: true,
                    minimize: false,
                    seed: 7,
                    step_budget: 3,
                },
            },
            Request::Status { campaign: 9 },
            Request::List,
            Request::Pause { campaign: 0 },
            Request::Resume { campaign: 0 },
            Request::Cancel { campaign: 1 },
            Request::Watch {
                campaign: 2,
                from_seq: 9,
            },
            Request::Ping,
        ];
        for request in requests {
            let json = serde_json::to_string(&request).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, request, "{json}");
        }
    }

    #[test]
    fn responses_and_events_round_trip_through_json() {
        let report = StatusReport {
            campaign: 3,
            name: "word64-ce-max-60C".into(),
            state: "running".into(),
            generation: 4,
            best: Some(LeaderboardEntry {
                genes: vec![0x3333_3333_3333_3333],
                fitness: 812.5,
            }),
            evaluations: 48,
            cache_hits: 12,
            incidents: 0,
            converged: false,
            error: None,
        };
        let responses = vec![
            Response::Submitted {
                campaign: 3,
                name: "word64-ce-max-60C".into(),
            },
            Response::Status {
                report: report.clone(),
            },
            Response::List {
                campaigns: vec![report],
            },
            Response::Ok,
            Response::Watching { campaign: 3 },
            Response::Pong,
            Response::Error {
                message: "no such campaign".into(),
            },
        ];
        for response in responses {
            let json = serde_json::to_string(&response).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(back, response, "{json}");
        }
        let events = vec![
            Event::Generation {
                campaign: 1,
                generation: 2,
                best: None,
                leaderboard_delta: vec![],
                stats: EvalStats::default(),
                incidents: vec![],
            },
            Event::Completed {
                campaign: 1,
                generations: 9,
                converged: true,
                leaderboard: vec![LeaderboardEntry {
                    genes: vec![1, 2],
                    fitness: -3.5,
                }],
            },
            Event::Cancelled { campaign: 1 },
            Event::Failed {
                campaign: 2,
                error: "injected fault at op 7".into(),
                at_seq: 4,
                resume_backoff_ms: 200,
            },
            Event::Lagged { missed: 17 },
        ];
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event, "{json}");
            let stamped = SeqEvent {
                seq: 3,
                event: event.clone(),
            };
            let json = serde_json::to_string(&stamped).unwrap();
            let back: SeqEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, stamped, "{json}");
        }
    }

    #[test]
    fn watch_without_from_seq_defaults_to_zero() {
        let request: Request = serde_json::from_str(r#"{"Watch":{"campaign":3}}"#).unwrap();
        assert_eq!(
            request,
            Request::Watch {
                campaign: 3,
                from_seq: 0
            }
        );
    }

    #[test]
    fn minimal_submit_uses_defaults() {
        let request: Request = serde_json::from_str(r#"{"Submit":{"spec":{}}}"#).unwrap();
        let Request::Submit { spec } = request else {
            panic!("expected submit");
        };
        assert_eq!(spec, CampaignSpec::default());
        assert_eq!(spec.temperature(), 60.0);
        assert_eq!(spec.framework_seed(), 42);
    }

    #[test]
    fn unknown_commands_are_typed_errors_not_panics() {
        for bad in [
            "",
            "   ",
            "{",
            "nonsense",
            r#"{"Explode":{}}"#,
            r#"{"Submit":{"spec":{"seed":"not a number"}}}"#,
            r#"["Submit"]"#,
        ] {
            match parse_request(bad) {
                Err(Response::Error { message }) => {
                    assert!(!message.is_empty(), "{bad:?}");
                }
                other => panic!("{bad:?} produced {other:?}"),
            }
        }
    }

    #[test]
    fn read_frame_splits_lines_and_handles_eof() {
        let mut reader = BufReader::new(&b"{\"Ping\"}\r\n{\"List\"}\ntail"[..]);
        assert_eq!(read_frame(&mut reader).unwrap(), "{\"Ping\"}");
        assert_eq!(read_frame(&mut reader).unwrap(), "{\"List\"}");
        // A torn final frame is surfaced (the parser will reject it) …
        assert_eq!(read_frame(&mut reader).unwrap(), "tail");
        // … and the next read is a clean EOF.
        assert!(matches!(read_frame(&mut reader), Err(FrameError::Eof)));
    }

    #[test]
    fn read_frame_rejects_oversized_lines_but_keeps_the_connection() {
        let mut data = vec![b'x'; MAX_FRAME_BYTES + 10];
        data.push(b'\n');
        data.extend_from_slice(b"\"Ping\"\n");
        let mut reader = BufReader::new(data.as_slice());
        assert!(matches!(read_frame(&mut reader), Err(FrameError::TooLong)));
        // The oversized line was fully consumed: the next frame parses.
        assert_eq!(read_frame(&mut reader).unwrap(), "\"Ping\"");
    }
}
