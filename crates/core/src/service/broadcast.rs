//! A bounded broadcast channel with lagging-client drop semantics.
//!
//! One [`EventBus`] per campaign fans progress events out to every
//! `watch` subscriber. Each subscriber owns a bounded queue; when a
//! publish finds a queue full, the **oldest** queued event is dropped and
//! the subscriber's lag counter bumped, so one stalled client can never
//! block the engine or balloon daemon memory. The next receive surfaces
//! the gap as an explicit `Lagged` notification before newer events.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

struct SubQueue<T> {
    queue: VecDeque<T>,
    lagged: u64,
    closed: bool,
}

struct SubShared<T> {
    state: Mutex<SubQueue<T>>,
    available: Condvar,
}

/// The receiving half of one subscription.
pub struct Subscriber<T> {
    shared: Arc<SubShared<T>>,
    capacity: usize,
}

/// What a [`Subscriber`] receive produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Recv<T> {
    /// The next event.
    Event(T),
    /// This subscriber fell behind: `0` events were silently dropped —
    /// the count is carried — before the ones still queued.
    Lagged(u64),
    /// Nothing available within the timeout (the bus is still open).
    Empty,
    /// The bus closed and every queued event has been delivered.
    Closed,
}

impl<T> Subscriber<T> {
    /// Waits up to `timeout` for the next event. Lag is reported before
    /// the events that survived it, so a client always learns it missed
    /// something before seeing what came after the gap.
    pub fn recv_timeout(&self, timeout: Duration) -> Recv<T> {
        let mut state = self
            .shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if state.lagged > 0 {
                let missed = state.lagged;
                state.lagged = 0;
                return Recv::Lagged(missed);
            }
            if let Some(event) = state.queue.pop_front() {
                return Recv::Event(event);
            }
            if state.closed {
                return Recv::Closed;
            }
            let (next, wait) = self
                .shared
                .available
                .wait_timeout(state, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
            if wait.timed_out() && state.queue.is_empty() && state.lagged == 0 && !state.closed {
                return Recv::Empty;
            }
        }
    }

    /// This subscription's queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The publishing half: a bounded broadcast bus. Cloning shares the bus.
pub struct EventBus<T> {
    subscribers: Arc<Mutex<Vec<Weak<SubShared<T>>>>>,
    capacity: usize,
    closed: Arc<Mutex<bool>>,
}

impl<T> Clone for EventBus<T> {
    fn clone(&self) -> Self {
        EventBus {
            subscribers: Arc::clone(&self.subscribers),
            capacity: self.capacity,
            closed: Arc::clone(&self.closed),
        }
    }
}

impl<T: Clone> EventBus<T> {
    /// A bus whose subscribers each buffer at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a subscriber buffers at least one event");
        EventBus {
            subscribers: Arc::new(Mutex::new(Vec::new())),
            capacity,
            closed: Arc::new(Mutex::new(false)),
        }
    }

    /// Registers a new subscriber. Subscribing to an already-closed bus
    /// yields a subscriber that immediately reports [`Recv::Closed`].
    pub fn subscribe(&self) -> Subscriber<T> {
        let closed = *lock(&self.closed);
        let shared = Arc::new(SubShared {
            state: Mutex::new(SubQueue {
                queue: VecDeque::with_capacity(self.capacity),
                lagged: 0,
                closed,
            }),
            available: Condvar::new(),
        });
        lock(&self.subscribers).push(Arc::downgrade(&shared));
        Subscriber {
            shared,
            capacity: self.capacity,
        }
    }

    /// Delivers `event` to every live subscriber, dropping the oldest
    /// queued event (and bumping the lag counter) of any full one.
    /// Dead subscribers are reaped in passing.
    pub fn publish(&self, event: &T) {
        let mut subscribers = lock(&self.subscribers);
        subscribers.retain(|weak| {
            let Some(shared) = weak.upgrade() else {
                return false;
            };
            let mut state = lock(&shared.state);
            if state.closed {
                return true;
            }
            if state.queue.len() >= self.capacity {
                state.queue.pop_front();
                state.lagged += 1;
            }
            state.queue.push_back(event.clone());
            drop(state);
            shared.available.notify_all();
            true
        });
    }

    /// Closes the bus: queued events still drain, then every subscriber
    /// (current and future) reports [`Recv::Closed`].
    pub fn close(&self) {
        *lock(&self.closed) = true;
        let subscribers = lock(&self.subscribers);
        for weak in subscribers.iter() {
            if let Some(shared) = weak.upgrade() {
                lock(&shared.state).closed = true;
                shared.available.notify_all();
            }
        }
    }

    /// How many subscribers are currently alive.
    pub fn subscriber_count(&self) -> usize {
        let mut subscribers = lock(&self.subscribers);
        subscribers.retain(|weak| weak.upgrade().is_some());
        subscribers.len()
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T> std::fmt::Debug for EventBus<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Subscriber<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(50);

    #[test]
    fn events_fan_out_to_every_subscriber_in_order() {
        let bus = EventBus::new(8);
        let a = bus.subscribe();
        let b = bus.subscribe();
        for i in 0..3 {
            bus.publish(&i);
        }
        for sub in [&a, &b] {
            for i in 0..3 {
                assert_eq!(sub.recv_timeout(TICK), Recv::Event(i));
            }
            assert_eq!(sub.recv_timeout(Duration::from_millis(1)), Recv::Empty);
        }
    }

    #[test]
    fn lagging_subscriber_drops_oldest_and_learns_the_gap() {
        let bus = EventBus::new(2);
        let slow = bus.subscribe();
        for i in 0..5 {
            bus.publish(&i);
        }
        // Capacity 2: events 0..3 were dropped; 3 and 4 survive, and the
        // gap is reported first.
        assert_eq!(slow.recv_timeout(TICK), Recv::Lagged(3));
        assert_eq!(slow.recv_timeout(TICK), Recv::Event(3));
        assert_eq!(slow.recv_timeout(TICK), Recv::Event(4));
    }

    #[test]
    fn close_drains_queued_events_then_reports_closed() {
        let bus = EventBus::new(4);
        let sub = bus.subscribe();
        bus.publish(&7);
        bus.close();
        assert_eq!(sub.recv_timeout(TICK), Recv::Event(7));
        assert_eq!(sub.recv_timeout(TICK), Recv::Closed);
        // A late subscriber sees the closure immediately.
        assert_eq!(bus.subscribe().recv_timeout(TICK), Recv::Closed);
    }

    #[test]
    fn dropped_subscribers_are_reaped() {
        let bus = EventBus::new(4);
        let keep = bus.subscribe();
        drop(bus.subscribe());
        bus.publish(&1);
        assert_eq!(bus.subscriber_count(), 1);
        assert_eq!(keep.recv_timeout(TICK), Recv::Event(1));
    }

    #[test]
    fn recv_wakes_on_publish_from_another_thread() {
        let bus = EventBus::new(4);
        let sub = bus.subscribe();
        let publisher = std::thread::spawn({
            let bus = bus.clone();
            move || {
                std::thread::sleep(Duration::from_millis(20));
                bus.publish(&99);
            }
        });
        assert_eq!(sub.recv_timeout(Duration::from_secs(5)), Recv::Event(99));
        publisher.join().unwrap();
    }
}
