//! The on-disk campaign registry: ids, specs, journals, results.
//!
//! Each campaign owns three files inside the daemon's directory, keyed by
//! its id:
//!
//! * `c{id}.spec.json` — the submitted [`CampaignSpec`] plus the campaign
//!   lifecycle state (`running`, `paused`, `budget-paused`, `failed`,
//!   `done`, `cancelled`). Written atomically (tmp + fsync + rename) on
//!   every state change.
//! * `c{id}.db.json` — the campaign's own write-ahead journal snapshot
//!   (with `.journal` / `.tmp` siblings), giving every campaign journal
//!   isolation: one campaign's records can never interleave with
//!   another's.
//! * `c{id}.result.json` — the final report + leaderboard, written once
//!   when the campaign completes.
//!
//! All I/O goes through the [`Storage`] trait ([`DiskStorage`] by
//! default), so the fault-injection suite can fail any individual
//! registry operation through [`MemStorage`](dstress_ga::MemStorage).
//!
//! On boot the registry scans the directory: `done`/`cancelled` campaigns
//! are listed for status queries, everything else is handed back to the
//! engine to resume **bit-identically** from its journal checkpoint (or
//! from its spec seed if it never stepped).

use crate::service::protocol::{CampaignSpec, LeaderboardEntry, StatusReport};
use dstress_ga::journal::{DiskStorage, Storage};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// The spec file contents: what was submitted plus where the campaign is
/// in its lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredSpec {
    /// The submitted spec.
    pub spec: CampaignSpec,
    /// The campaign's database key.
    pub name: String,
    /// `running`, `paused`, `budget-paused`, `failed`, `done` or
    /// `cancelled`.
    pub state: String,
    /// The storage error that quarantined the campaign, when `state` is
    /// `failed` (absent otherwise).
    #[serde(default)]
    pub error: Option<String>,
}

/// The result file contents: the terminal report and full leaderboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredResult {
    /// The final status report.
    pub report: StatusReport,
    /// The final leaderboard, best first.
    pub leaderboard: Vec<LeaderboardEntry>,
}

/// One registered campaign as recovered by a boot scan.
#[derive(Debug, Clone)]
pub struct RegisteredCampaign {
    /// The campaign id.
    pub id: u64,
    /// Its spec file contents.
    pub stored: StoredSpec,
}

/// The campaign registry over one daemon directory.
#[derive(Debug)]
pub struct CampaignRegistry<S: Storage = DiskStorage> {
    storage: S,
    dir: PathBuf,
    next_id: u64,
}

impl CampaignRegistry<DiskStorage> {
    /// Opens (creating if needed) the registry directory on the real
    /// filesystem and scans it. See [`open_with`](Self::open_with).
    ///
    /// # Errors
    ///
    /// Propagates directory and file I/O failures; an unparseable spec
    /// file is [`io::ErrorKind::InvalidData`].
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<(Self, Vec<RegisteredCampaign>)> {
        Self::open_with(DiskStorage::new(), dir)
    }
}

impl<S: Storage> CampaignRegistry<S> {
    /// Opens (creating if needed) the registry directory through
    /// `storage` and scans it, returning the registry and every
    /// previously registered campaign in id order.
    ///
    /// # Errors
    ///
    /// Propagates directory and file I/O failures; an unparseable spec
    /// file is [`io::ErrorKind::InvalidData`] (the daemon refuses to boot
    /// over a corrupt registry rather than silently dropping campaigns).
    pub fn open_with(
        mut storage: S,
        dir: impl Into<PathBuf>,
    ) -> io::Result<(Self, Vec<RegisteredCampaign>)> {
        let dir = dir.into();
        storage.create_dir_all(&dir)?;
        let mut campaigns = Vec::new();
        for path in storage.list(&dir)? {
            let Some(name) = path.file_name().and_then(|f| f.to_str()) else {
                continue;
            };
            let Some(id) = name
                .strip_prefix('c')
                .and_then(|rest| rest.strip_suffix(".spec.json"))
                .and_then(|id| id.parse::<u64>().ok())
            else {
                continue;
            };
            let bytes = storage
                .read(&path)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "spec file vanished"))?;
            let text = String::from_utf8(bytes).map_err(invalid_data)?;
            let stored: StoredSpec = serde_json::from_str(&text).map_err(invalid_data)?;
            campaigns.push(RegisteredCampaign { id, stored });
        }
        campaigns.sort_by_key(|c| c.id);
        let next_id = campaigns.last().map_or(0, |c| c.id + 1);
        Ok((
            CampaignRegistry {
                storage,
                dir,
                next_id,
            },
            campaigns,
        ))
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Allocates the next campaign id (ids are never reused).
    pub fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// The campaign's journal snapshot path (its `.journal` and `.tmp`
    /// siblings are derived by the journal itself).
    pub fn db_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("c{id}.db.json"))
    }

    /// Persists a campaign's spec + lifecycle state atomically.
    ///
    /// # Errors
    ///
    /// Propagates file I/O and serialization failures.
    pub fn write_spec(&mut self, id: u64, stored: &StoredSpec) -> io::Result<()> {
        let json = serde_json::to_string_pretty(stored).map_err(io::Error::other)?;
        self.write_atomic(&format!("c{id}.spec.json"), json.as_bytes())
    }

    /// Persists a campaign's terminal result atomically.
    ///
    /// # Errors
    ///
    /// Propagates file I/O and serialization failures.
    pub fn write_result(&mut self, id: u64, result: &StoredResult) -> io::Result<()> {
        let json = serde_json::to_string_pretty(result).map_err(io::Error::other)?;
        self.write_atomic(&format!("c{id}.result.json"), json.as_bytes())
    }

    /// Loads a campaign's terminal result, if it finished.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures; an unparseable result file is
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_result(&self, id: u64) -> io::Result<Option<StoredResult>> {
        let path = self.dir.join(format!("c{id}.result.json"));
        let Some(bytes) = self.storage.read(&path)? else {
            return Ok(None);
        };
        let text = String::from_utf8(bytes).map_err(invalid_data)?;
        Ok(Some(serde_json::from_str(&text).map_err(invalid_data)?))
    }

    /// Best-effort removal of a campaign's journal files (used to clean
    /// up after a submit whose spec never persisted, so a later campaign
    /// reusing the id cannot resume a stale checkpoint).
    pub fn discard_journal(&mut self, id: u64) {
        let db = self.db_path(id);
        for path in [db.clone(), sibling(&db, ".journal"), sibling(&db, ".tmp")] {
            let _ = self.storage.remove(&path);
        }
    }

    /// Writes `data` under `file` with the same durability discipline the
    /// journal's compaction uses: write the temporary, fsync it, then
    /// atomically rename it over the target — a crash can surface the old
    /// file or the new one, never a torn or zero-length hybrid.
    fn write_atomic(&mut self, file: &str, data: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{file}.tmp"));
        let target = self.dir.join(file);
        self.storage.write(&tmp, data)?;
        self.storage.sync(&tmp)?;
        self.storage.rename(&tmp, &target)
    }
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(suffix);
    path.with_file_name(name)
}

fn invalid_data<E: std::fmt::Display>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_ga::MemStorage;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dstress-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn stored(state: &str) -> StoredSpec {
        StoredSpec {
            spec: CampaignSpec::default(),
            name: "word64-ce-max-60C".into(),
            state: state.into(),
            error: None,
        }
    }

    #[test]
    fn ids_are_allocated_past_every_recovered_campaign() {
        let dir = temp_dir("ids");
        let (mut registry, recovered) = CampaignRegistry::open(&dir).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(registry.alloc_id(), 0);
        assert_eq!(registry.alloc_id(), 1);
        registry.write_spec(0, &stored("done")).unwrap();
        registry.write_spec(1, &stored("running")).unwrap();
        let (mut reopened, recovered) = CampaignRegistry::open(&dir).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].id, 0);
        assert_eq!(recovered[0].stored.state, "done");
        assert_eq!(recovered[1].stored.state, "running");
        assert_eq!(reopened.alloc_id(), 2, "ids continue past the scan");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn results_round_trip_and_absence_is_none() {
        let dir = temp_dir("results");
        let (mut registry, _) = CampaignRegistry::open(&dir).unwrap();
        assert!(registry.read_result(0).unwrap().is_none());
        let result = StoredResult {
            report: StatusReport {
                campaign: 0,
                name: "word64-ce-max-60C".into(),
                state: "done".into(),
                generation: 9,
                best: None,
                evaluations: 100,
                cache_hits: 3,
                incidents: 0,
                converged: true,
                error: None,
            },
            leaderboard: vec![LeaderboardEntry {
                genes: vec![0x3333_3333_3333_3333],
                fitness: 800.0,
            }],
        };
        registry.write_result(0, &result).unwrap();
        assert_eq!(registry.read_result(0).unwrap().unwrap(), result);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spec_files_refuse_to_boot() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("c0.spec.json"), b"not json").unwrap();
        let err = CampaignRegistry::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_writes_are_durable_before_the_rename() {
        // The write_atomic discipline through an injectable storage:
        // write tmp (op 0), fsync tmp (op 1), rename (op 2). A crash
        // after the rename keeps the full spec because the fsync came
        // first; failing the fsync never leaves a torn target.
        let dir = PathBuf::from("reg");
        let (mut registry, _) = CampaignRegistry::open_with(MemStorage::new(), &dir).unwrap();
        registry.write_spec(0, &stored("running")).unwrap();
        let (registry, recovered) = CampaignRegistry::open_with(registry.storage, &dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].stored.state, "running");
        // Now fail the fsync of the next spec write: the target file must
        // be untouched (the failed write only ever touched the tmp).
        let mut registry = registry;
        let before = registry
            .storage
            .read(&dir.join("c0.spec.json"))
            .unwrap()
            .unwrap();
        registry.storage.fail_op(1); // op 0 = tmp write, op 1 = tmp fsync
        assert!(registry.write_spec(0, &stored("paused")).is_err());
        let after = registry
            .storage
            .read(&dir.join("c0.spec.json"))
            .unwrap()
            .unwrap();
        assert_eq!(before, after, "a failed spec write tore the target");
        // After a crash (unsynced bytes vanish) the registry still boots
        // with the old spec.
        registry.storage.clear_faults();
        registry.storage.crash();
        let (_, recovered) = CampaignRegistry::open_with(registry.storage, &dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].stored.state, "running");
    }
}
