//! `dstressd`: the TCP front-end over [`ServiceEngine`].
//!
//! Hand-rolled on `std::net` threads — no async runtime. One acceptor
//! thread hands each connection to its own client thread; every client
//! speaks line-delimited JSON ([`Request`] in, [`Response`] /
//! [`SeqEvent`] out). All campaign state lives on a single engine thread
//! that alternates between draining client commands and ticking the
//! scheduler, so the engine itself needs no locking. A `watch` request
//! flips the connection into streaming mode: the client thread writes
//! the retained backlog (for `from_seq` reconnects), then pumps its
//! [`Subscriber`] queue onto the socket until the campaign's bus closes,
//! then returns to request/response mode.
//!
//! The connection edge is its own fault domain: every client read runs
//! under a short poll timeout, so the client thread — never the engine —
//! enforces two deadlines. A connection that starts a frame but does not
//! finish it within [`DaemonConfig::frame_deadline`] (a slow-loris
//! client) is reaped; one that sits idle between requests past
//! [`DaemonConfig::idle_timeout`] is reaped. [`FrameReader`] keeps the
//! partial line across poll timeouts, so a merely slow legitimate frame
//! is never torn.
//!
//! Shutdown: the acceptor stops, every client socket is
//! [`Shutdown::Both`]-torn (which unblocks their reads without losing
//! frame state), the threads are joined, and finally the engine thread
//! checkpoints out. Because every generation already journals before the
//! next step, a hard kill (power loss, SIGKILL) loses nothing either —
//! the next boot resumes each campaign from its journal bit-identically.

use crate::service::broadcast::{Recv, Subscriber};
use crate::service::engine::ServiceEngine;
use crate::service::protocol::{
    parse_request, CampaignSpec, Event, FrameError, FrameReader, Request, Response, SeqEvent,
    StatusReport,
};
use dstress_ga::journal::{DiskStorage, Storage};
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a client thread wakes from a blocked read to check its
/// deadlines and the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How the daemon is wired up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address; use port 0 to let the OS pick (the bound address
    /// is reported by [`Dstressd::addr`]).
    pub addr: String,
    /// The campaign registry directory.
    pub dir: PathBuf,
    /// Evaluation worker threads shared by all campaigns of a substrate.
    pub workers: usize,
    /// Per-subscriber event buffer; slower clients lag past this. Also
    /// the per-campaign retained-event ring backing `watch --from-seq`.
    pub event_capacity: usize,
    /// How long a started frame may dribble in before the connection is
    /// reaped (the slow-loris bound).
    pub frame_deadline: Duration,
    /// How long a connection may sit idle between requests before it is
    /// reaped. Watch streams are never idle-reaped while events flow.
    pub idle_timeout: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            dir: PathBuf::from("dstressd-campaigns"),
            workers: 2,
            event_capacity: 256,
            frame_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
        }
    }
}

/// What a `Watch` command answers with: the retained backlog from the
/// requested cut, plus the live subscription.
type WatchReply = Result<(Vec<SeqEvent>, Subscriber<SeqEvent>), String>;

/// A client request routed to the engine thread, with its reply channel.
enum Command {
    Submit {
        spec: CampaignSpec,
        reply: Sender<Result<(u64, String), String>>,
    },
    Status {
        campaign: u64,
        reply: Sender<Result<StatusReport, String>>,
    },
    List {
        reply: Sender<Vec<StatusReport>>,
    },
    SetPaused {
        campaign: u64,
        paused: bool,
        reply: Sender<Result<(), String>>,
    },
    Cancel {
        campaign: u64,
        reply: Sender<Result<(), String>>,
    },
    Watch {
        campaign: u64,
        from_seq: u64,
        reply: Sender<WatchReply>,
    },
}

type ClientRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// A running campaign daemon. Dropping it (or calling
/// [`shutdown`](Dstressd::shutdown)) stops the listener, disconnects
/// every client, and checkpoints the engine out cleanly.
pub struct Dstressd {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
    clients: ClientRegistry,
}

impl std::fmt::Debug for Dstressd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dstressd")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Dstressd {
    /// Boots the engine over `config.dir` on the real filesystem
    /// (resuming every unfinished campaign) and starts serving on
    /// `config.addr`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and engine boot failures (a corrupt
    /// registry refuses to boot).
    pub fn start(config: DaemonConfig) -> io::Result<Dstressd> {
        Self::start_with_storage(DiskStorage::new(), config)
    }

    /// [`start`](Self::start) over an injectable [`Storage`] — how the
    /// chaos suite runs a whole daemon against a fault-scheduled
    /// in-memory filesystem.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and engine boot failures.
    pub fn start_with_storage<S: Storage + Clone + Send + 'static>(
        storage: S,
        config: DaemonConfig,
    ) -> io::Result<Dstressd> {
        let engine = ServiceEngine::with_storage(
            storage,
            &config.dir,
            config.workers,
            config.event_capacity,
        )?;
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let clients: ClientRegistry = Arc::new(Mutex::new(Vec::new()));
        let (commands, inbox) = mpsc::channel();
        let engine_handle = std::thread::Builder::new()
            .name("dstressd-engine".into())
            .spawn({
                let shutdown = Arc::clone(&shutdown);
                move || engine_loop(engine, inbox, shutdown)
            })?;
        let deadlines = (config.frame_deadline, config.idle_timeout);
        let accept_handle = std::thread::Builder::new()
            .name("dstressd-accept".into())
            .spawn({
                let shutdown = Arc::clone(&shutdown);
                let clients = Arc::clone(&clients);
                move || accept_loop(listener, commands, shutdown, clients, deadlines)
            })?;
        Ok(Dstressd {
            addr,
            shutdown,
            accept: Some(accept_handle),
            engine: Some(engine_handle),
            clients,
        })
    }

    /// The address the daemon is actually listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the daemon: no new connections, every client disconnected,
    /// engine checkpointed out. Idempotent.
    ///
    /// # Errors
    ///
    /// Reports an engine thread that died abnormally. Storage faults
    /// never kill the engine — they quarantine single campaigns — so
    /// this is only ever a bug's panic.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop()
    }

    fn stop(&mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let clients = std::mem::take(
            &mut *self
                .clients
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for (stream, handle) in clients {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = handle.join();
        }
        match self.engine.take() {
            Some(engine) => engine
                .join()
                .map_err(|_| io::Error::other("the engine thread panicked")),
            None => Ok(()),
        }
    }
}

impl Drop for Dstressd {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

/// The engine thread: drain queued commands, tick the scheduler, sleep
/// briefly when idle. Returns once the shutdown flag is raised and the
/// in-flight generation has been settled. Infallible: storage faults
/// quarantine individual campaigns inside [`ServiceEngine::tick`].
fn engine_loop<S: Storage + Clone>(
    mut engine: ServiceEngine<S>,
    inbox: Receiver<Command>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        while let Ok(command) = inbox.try_recv() {
            dispatch(&mut engine, command);
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        if !engine.tick() {
            // Idle: block on the inbox instead of spinning.
            match inbox.recv_timeout(Duration::from_millis(20)) {
                Ok(command) => dispatch(&mut engine, command),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

fn dispatch<S: Storage + Clone>(engine: &mut ServiceEngine<S>, command: Command) {
    match command {
        Command::Submit { spec, reply } => {
            let _ = reply.send(engine.submit(spec).map_err(|e| e.to_string()));
        }
        Command::Status { campaign, reply } => {
            let _ = reply.send(engine.status(campaign).map_err(|e| e.to_string()));
        }
        Command::List { reply } => {
            let _ = reply.send(engine.list());
        }
        Command::SetPaused {
            campaign,
            paused,
            reply,
        } => {
            let _ = reply.send(
                engine
                    .set_paused(campaign, paused)
                    .map_err(|e| e.to_string()),
            );
        }
        Command::Cancel { campaign, reply } => {
            let _ = reply.send(engine.cancel(campaign).map_err(|e| e.to_string()));
        }
        Command::Watch {
            campaign,
            from_seq,
            reply,
        } => {
            let _ = reply.send(engine.watch(campaign, from_seq).map_err(|e| e.to_string()));
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    commands: Sender<Command>,
    shutdown: Arc<AtomicBool>,
    clients: ClientRegistry,
    deadlines: (Duration, Duration),
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let Ok(teardown) = stream.try_clone() else {
                    continue;
                };
                let commands = commands.clone();
                let shutdown = Arc::clone(&shutdown);
                let spawned = std::thread::Builder::new()
                    .name("dstressd-client".into())
                    .spawn(move || client_loop(stream, commands, shutdown, deadlines));
                if let Ok(handle) = spawned {
                    clients
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((teardown, handle));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Sends a command to the engine thread and waits for its reply.
fn ask<T>(
    commands: &Sender<Command>,
    build: impl FnOnce(Sender<T>) -> Command,
) -> Result<T, String> {
    let (reply, answer) = mpsc::channel();
    commands
        .send(build(reply))
        .map_err(|_| "the daemon is shutting down".to_string())?;
    answer
        .recv_timeout(Duration::from_secs(60))
        .map_err(|_| "the daemon did not answer".to_string())
}

fn write_line<W: Write, T: serde::Serialize>(out: &mut W, value: &T) -> io::Result<()> {
    let mut line = serde_json::to_string(value).map_err(io::Error::other)?;
    line.push('\n');
    out.write_all(line.as_bytes())?;
    out.flush()
}

/// One connection: run the session, then actively shut the socket down.
/// The explicit `shutdown(2)` matters: the accept loop's teardown
/// registry holds another clone of this socket, so merely dropping the
/// session's halves would leave the fd open — and a reaped slow-loris
/// peer blocked — until the whole daemon stops.
fn client_loop(
    stream: TcpStream,
    commands: Sender<Command>,
    shutdown: Arc<AtomicBool>,
    deadlines: (Duration, Duration),
) {
    let Ok(socket) = stream.try_clone() else {
        return;
    };
    client_session(stream, commands, shutdown, deadlines);
    let _ = socket.shutdown(Shutdown::Both);
}

/// One connection's session: read a frame, answer it, repeat. A
/// malformed or oversized frame earns a typed [`Response::Error`] and
/// the connection stays up; EOF, socket errors, daemon shutdown, or a
/// blown deadline (slow-loris frame, idle connection) end it.
fn client_session(
    stream: TcpStream,
    commands: Sender<Command>,
    shutdown: Arc<AtomicBool>,
    (frame_deadline, idle_timeout): (Duration, Duration),
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut frames = FrameReader::new();
    let mut last_activity = Instant::now();
    let mut frame_started: Option<Instant> = None;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let frame = match frames.read(&mut reader) {
            Ok(Some(frame)) => {
                frame_started = None;
                last_activity = Instant::now();
                frame
            }
            Ok(None) => {
                // A poll timeout: enforce the connection deadlines.
                if frames.mid_frame() {
                    let started = *frame_started.get_or_insert_with(Instant::now);
                    if started.elapsed() >= frame_deadline {
                        return; // slow-loris: a frame that never finishes
                    }
                } else {
                    frame_started = None;
                    if last_activity.elapsed() >= idle_timeout {
                        return; // idle connection
                    }
                }
                continue;
            }
            Err(FrameError::TooLong) => {
                frame_started = None;
                last_activity = Instant::now();
                let refused = Response::Error {
                    message: "frame too long".into(),
                };
                if write_line(&mut writer, &refused).is_err() {
                    return;
                }
                continue;
            }
            Err(FrameError::Eof) | Err(FrameError::Io(_)) => return,
        };
        if frame.is_empty() {
            continue;
        }
        let request = match parse_request(&frame) {
            Ok(request) => request,
            Err(error) => {
                if write_line(&mut writer, &error).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Submit { spec } => {
                match ask(&commands, |reply| Command::Submit { spec, reply }) {
                    Ok(Ok((campaign, name))) => Response::Submitted { campaign, name },
                    Ok(Err(message)) | Err(message) => Response::Error { message },
                }
            }
            Request::Status { campaign } => {
                match ask(&commands, |reply| Command::Status { campaign, reply }) {
                    Ok(Ok(report)) => Response::Status { report },
                    Ok(Err(message)) | Err(message) => Response::Error { message },
                }
            }
            Request::List => match ask(&commands, |reply| Command::List { reply }) {
                Ok(campaigns) => Response::List { campaigns },
                Err(message) => Response::Error { message },
            },
            Request::Pause { campaign } => pause_response(&commands, campaign, true),
            Request::Resume { campaign } => pause_response(&commands, campaign, false),
            Request::Cancel { campaign } => {
                match ask(&commands, |reply| Command::Cancel { campaign, reply }) {
                    Ok(Ok(())) => Response::Ok,
                    Ok(Err(message)) | Err(message) => Response::Error { message },
                }
            }
            Request::Watch { campaign, from_seq } => {
                match ask(&commands, |reply| Command::Watch {
                    campaign,
                    from_seq,
                    reply,
                }) {
                    Ok(Ok((backlog, subscriber))) => {
                        let opened = Response::Watching { campaign };
                        if write_line(&mut writer, &opened).is_err() {
                            return;
                        }
                        for event in &backlog {
                            if write_line(&mut writer, event).is_err() {
                                return;
                            }
                        }
                        match stream_events(&mut writer, &subscriber, &shutdown, from_seq) {
                            // End-of-stream marker: the campaign's bus
                            // closed, so the connection returns to
                            // request/response mode. Only a settled
                            // campaign earns the marker — a daemon
                            // shutdown drops the connection instead, so
                            // a reconnecting watcher keeps retrying
                            // against the restarted daemon.
                            Ok(StreamEnd::Settled) => {
                                if write_line(&mut writer, &Response::Ok).is_err() {
                                    return;
                                }
                            }
                            Ok(StreamEnd::Shutdown) | Err(_) => return,
                        }
                        // A long watch is activity, not idleness.
                        last_activity = Instant::now();
                        continue;
                    }
                    Ok(Err(message)) | Err(message) => Response::Error { message },
                }
            }
        };
        if write_line(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn pause_response(commands: &Sender<Command>, campaign: u64, paused: bool) -> Response {
    match ask(commands, |reply| Command::SetPaused {
        campaign,
        paused,
        reply,
    }) {
        Ok(Ok(())) => Response::Ok,
        Ok(Err(message)) | Err(message) => Response::Error { message },
    }
}

/// Why a watch stream stopped pumping: the campaign settled (bus closed)
/// or the daemon is going down mid-campaign. Clients treat the two very
/// differently — settled is final, shutdown is a reconnect cue — so the
/// distinction must survive to the wire.
enum StreamEnd {
    Settled,
    Shutdown,
}

/// Pumps a subscription onto the socket until the campaign's bus closes
/// (or the daemon shuts down). Lag surfaces as an explicit seq-0
/// [`Event::Lagged`] line. Events below `from_seq` (possible when a
/// reconnecting client raced the backlog cut) are suppressed so the
/// client never sees a duplicate.
fn stream_events<W: Write>(
    out: &mut W,
    subscriber: &Subscriber<SeqEvent>,
    shutdown: &Arc<AtomicBool>,
    from_seq: u64,
) -> io::Result<StreamEnd> {
    loop {
        match subscriber.recv_timeout(Duration::from_millis(100)) {
            Recv::Event(event) => {
                if event.seq == 0 || event.seq >= from_seq {
                    write_line(out, &event)?;
                }
            }
            Recv::Lagged(missed) => write_line(
                out,
                &SeqEvent {
                    seq: 0,
                    event: Event::Lagged { missed },
                },
            )?,
            Recv::Empty => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(StreamEnd::Shutdown);
                }
            }
            Recv::Closed => return Ok(StreamEnd::Settled),
        }
    }
}
