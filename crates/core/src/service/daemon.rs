//! `dstressd`: the TCP front-end over [`ServiceEngine`].
//!
//! Hand-rolled on `std::net` threads — no async runtime. One acceptor
//! thread hands each connection to its own client thread; every client
//! speaks line-delimited JSON ([`Request`] in, [`Response`] /
//! [`Event`] out). All campaign state lives on a single engine thread
//! that alternates between draining client commands and ticking the
//! scheduler, so the engine itself needs no locking. A `watch` request
//! flips the connection into streaming mode: the client thread pumps its
//! [`Subscriber`] queue onto the socket until the campaign's bus closes,
//! then returns to request/response mode.
//!
//! Shutdown: the acceptor stops, every client socket is
//! [`Shutdown::Both`]-torn (which unblocks their reads without losing
//! frame state), the threads are joined, and finally the engine thread
//! checkpoints out. Because every generation already journals before the
//! next step, a hard kill (power loss, SIGKILL) loses nothing either —
//! the next boot resumes each campaign from its journal bit-identically.

use crate::service::broadcast::{Recv, Subscriber};
use crate::service::engine::ServiceEngine;
use crate::service::protocol::{
    parse_request, read_frame, CampaignSpec, Event, FrameError, Request, Response, StatusReport,
};
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the daemon is wired up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address; use port 0 to let the OS pick (the bound address
    /// is reported by [`Dstressd::addr`]).
    pub addr: String,
    /// The campaign registry directory.
    pub dir: PathBuf,
    /// Evaluation worker threads shared by all campaigns of a substrate.
    pub workers: usize,
    /// Per-subscriber event buffer; slower clients lag past this.
    pub event_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            dir: PathBuf::from("dstressd-campaigns"),
            workers: 2,
            event_capacity: 256,
        }
    }
}

/// A client request routed to the engine thread, with its reply channel.
enum Command {
    Submit {
        spec: CampaignSpec,
        reply: Sender<Result<(u64, String), String>>,
    },
    Status {
        campaign: u64,
        reply: Sender<Result<StatusReport, String>>,
    },
    List {
        reply: Sender<Vec<StatusReport>>,
    },
    SetPaused {
        campaign: u64,
        paused: bool,
        reply: Sender<Result<(), String>>,
    },
    Cancel {
        campaign: u64,
        reply: Sender<Result<(), String>>,
    },
    Watch {
        campaign: u64,
        reply: Sender<Result<Subscriber<Event>, String>>,
    },
}

type ClientRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// A running campaign daemon. Dropping it (or calling
/// [`shutdown`](Dstressd::shutdown)) stops the listener, disconnects
/// every client, and checkpoints the engine out cleanly.
pub struct Dstressd {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<io::Result<()>>>,
    clients: ClientRegistry,
}

impl std::fmt::Debug for Dstressd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dstressd")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Dstressd {
    /// Boots the engine over `config.dir` (resuming every unfinished
    /// campaign) and starts serving on `config.addr`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and engine boot failures (a corrupt
    /// registry refuses to boot).
    pub fn start(config: DaemonConfig) -> io::Result<Dstressd> {
        let engine = ServiceEngine::new(&config.dir, config.workers, config.event_capacity)?;
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let clients: ClientRegistry = Arc::new(Mutex::new(Vec::new()));
        let (commands, inbox) = mpsc::channel();
        let engine_handle = std::thread::Builder::new()
            .name("dstressd-engine".into())
            .spawn({
                let shutdown = Arc::clone(&shutdown);
                move || engine_loop(engine, inbox, shutdown)
            })?;
        let accept_handle = std::thread::Builder::new()
            .name("dstressd-accept".into())
            .spawn({
                let shutdown = Arc::clone(&shutdown);
                let clients = Arc::clone(&clients);
                move || accept_loop(listener, commands, shutdown, clients)
            })?;
        Ok(Dstressd {
            addr,
            shutdown,
            accept: Some(accept_handle),
            engine: Some(engine_handle),
            clients,
        })
    }

    /// The address the daemon is actually listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the daemon: no new connections, every client disconnected,
    /// engine checkpointed out. Idempotent.
    ///
    /// # Errors
    ///
    /// Surfaces any journal/registry I/O failure the engine thread hit.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop()
    }

    fn stop(&mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let clients = std::mem::take(
            &mut *self
                .clients
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for (stream, handle) in clients {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = handle.join();
        }
        match self.engine.take() {
            Some(engine) => match engine.join() {
                Ok(result) => result,
                Err(_) => Err(io::Error::other("the engine thread panicked")),
            },
            None => Ok(()),
        }
    }
}

impl Drop for Dstressd {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

/// The engine thread: drain queued commands, tick the scheduler, sleep
/// briefly when idle. Returns once the shutdown flag is raised and the
/// in-flight generation has been settled.
fn engine_loop(
    mut engine: ServiceEngine,
    inbox: Receiver<Command>,
    shutdown: Arc<AtomicBool>,
) -> io::Result<()> {
    loop {
        while let Ok(command) = inbox.try_recv() {
            dispatch(&mut engine, command);
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        if !engine.tick()? {
            // Idle: block on the inbox instead of spinning.
            match inbox.recv_timeout(Duration::from_millis(20)) {
                Ok(command) => dispatch(&mut engine, command),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
            }
        }
    }
}

fn dispatch(engine: &mut ServiceEngine, command: Command) {
    match command {
        Command::Submit { spec, reply } => {
            let _ = reply.send(engine.submit(spec));
        }
        Command::Status { campaign, reply } => {
            let _ = reply.send(engine.status(campaign));
        }
        Command::List { reply } => {
            let _ = reply.send(engine.list());
        }
        Command::SetPaused {
            campaign,
            paused,
            reply,
        } => {
            let _ = reply.send(engine.set_paused(campaign, paused));
        }
        Command::Cancel { campaign, reply } => {
            let _ = reply.send(engine.cancel(campaign));
        }
        Command::Watch { campaign, reply } => {
            let _ = reply.send(engine.watch(campaign));
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    commands: Sender<Command>,
    shutdown: Arc<AtomicBool>,
    clients: ClientRegistry,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let Ok(teardown) = stream.try_clone() else {
                    continue;
                };
                let commands = commands.clone();
                let shutdown = Arc::clone(&shutdown);
                let spawned = std::thread::Builder::new()
                    .name("dstressd-client".into())
                    .spawn(move || client_loop(stream, commands, shutdown));
                if let Ok(handle) = spawned {
                    clients
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push((teardown, handle));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Sends a command to the engine thread and waits for its reply.
fn ask<T>(
    commands: &Sender<Command>,
    build: impl FnOnce(Sender<T>) -> Command,
) -> Result<T, String> {
    let (reply, answer) = mpsc::channel();
    commands
        .send(build(reply))
        .map_err(|_| "the daemon is shutting down".to_string())?;
    answer
        .recv_timeout(Duration::from_secs(60))
        .map_err(|_| "the daemon did not answer".to_string())
}

fn write_line<W: Write, T: serde::Serialize>(out: &mut W, value: &T) -> io::Result<()> {
    let mut line = serde_json::to_string(value).map_err(io::Error::other)?;
    line.push('\n');
    out.write_all(line.as_bytes())?;
    out.flush()
}

/// One connection: read a frame, answer it, repeat. A malformed or
/// oversized frame earns a typed [`Response::Error`] and the connection
/// stays up; only EOF, socket errors, or daemon shutdown end it.
fn client_loop(stream: TcpStream, commands: Sender<Command>, shutdown: Arc<AtomicBool>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(FrameError::TooLong) => {
                let refused = Response::Error {
                    message: "frame too long".into(),
                };
                if write_line(&mut writer, &refused).is_err() {
                    return;
                }
                continue;
            }
            Err(FrameError::Eof) | Err(FrameError::Io(_)) => return,
        };
        if frame.is_empty() {
            continue;
        }
        let request = match parse_request(&frame) {
            Ok(request) => request,
            Err(error) => {
                if write_line(&mut writer, &error).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Submit { spec } => {
                match ask(&commands, |reply| Command::Submit { spec, reply }) {
                    Ok(Ok((campaign, name))) => Response::Submitted { campaign, name },
                    Ok(Err(message)) | Err(message) => Response::Error { message },
                }
            }
            Request::Status { campaign } => {
                match ask(&commands, |reply| Command::Status { campaign, reply }) {
                    Ok(Ok(report)) => Response::Status { report },
                    Ok(Err(message)) | Err(message) => Response::Error { message },
                }
            }
            Request::List => match ask(&commands, |reply| Command::List { reply }) {
                Ok(campaigns) => Response::List { campaigns },
                Err(message) => Response::Error { message },
            },
            Request::Pause { campaign } => pause_response(&commands, campaign, true),
            Request::Resume { campaign } => pause_response(&commands, campaign, false),
            Request::Cancel { campaign } => {
                match ask(&commands, |reply| Command::Cancel { campaign, reply }) {
                    Ok(Ok(())) => Response::Ok,
                    Ok(Err(message)) | Err(message) => Response::Error { message },
                }
            }
            Request::Watch { campaign } => {
                match ask(&commands, |reply| Command::Watch { campaign, reply }) {
                    Ok(Ok(subscriber)) => {
                        let opened = Response::Watching { campaign };
                        if write_line(&mut writer, &opened).is_err() {
                            return;
                        }
                        if stream_events(&mut writer, &subscriber, &shutdown).is_err() {
                            return;
                        }
                        // End-of-stream marker: the campaign's bus closed
                        // (or the daemon is stopping), so the connection
                        // returns to request/response mode.
                        if write_line(&mut writer, &Response::Ok).is_err() {
                            return;
                        }
                        continue;
                    }
                    Ok(Err(message)) | Err(message) => Response::Error { message },
                }
            }
        };
        if write_line(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn pause_response(commands: &Sender<Command>, campaign: u64, paused: bool) -> Response {
    match ask(commands, |reply| Command::SetPaused {
        campaign,
        paused,
        reply,
    }) {
        Ok(Ok(())) => Response::Ok,
        Ok(Err(message)) | Err(message) => Response::Error { message },
    }
}

/// Pumps a subscription onto the socket until the campaign's bus closes
/// (or the daemon shuts down). Lag surfaces as an explicit
/// [`Event::Lagged`] line.
fn stream_events<W: Write>(
    out: &mut W,
    subscriber: &Subscriber<Event>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    loop {
        match subscriber.recv_timeout(Duration::from_millis(100)) {
            Recv::Event(event) => write_line(out, &event)?,
            Recv::Lagged(missed) => write_line(out, &Event::Lagged { missed })?,
            Recv::Empty => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Recv::Closed => return Ok(()),
        }
    }
}
