//! The `dstressd` campaign service: a long-running multi-tenant daemon
//! serving many concurrent clients over a line-delimited JSON protocol.
//!
//! The paper frames virus synthesis as long-running search campaigns that
//! operators launch, monitor, and harvest over hours. This module is the
//! server shape of that workflow, composed from pieces the library already
//! provides:
//!
//! * [`protocol`] — the wire types: newline-delimited JSON requests,
//!   responses, and progress events, every one a plain serde round-trip.
//! * [`broadcast`] — a bounded broadcast channel with lagging-client drop
//!   semantics, one bus per campaign, feeding `watch` subscribers.
//! * [`registry`] — the on-disk campaign registry: a spec file, a
//!   per-campaign write-ahead journal (isolation), and a result file per
//!   campaign, scanned on boot so every unfinished campaign resumes
//!   bit-identically after a daemon restart.
//! * [`engine`] — the network-free service core: campaigns grouped by
//!   evaluation substrate, each group fair-share scheduled over one
//!   persistent [`EvalPool`](dstress_ga::pool::EvalPool), with the same
//!   journaling protocol as
//!   [`search_word64_journaled`](crate::DStress::search_word64_journaled).
//! * [`daemon`] — the TCP front-end: an accept loop, one thread per
//!   client connection, and a single engine thread that owns all campaign
//!   state (so no search state is ever shared across threads).
//!
//! # Determinism contract
//!
//! A campaign submitted to the daemon produces the same journal, the same
//! record stream, and the same leaderboard as a solo
//! [`DStress::search_word64`](crate::DStress::search_word64) run with the
//! same spec — regardless of how many other campaigns share the pool, of
//! the worker count, and of daemon restarts in between. The integration
//! suite pins this byte-for-byte on the journal snapshots.

pub mod broadcast;
pub mod daemon;
pub mod engine;
pub mod protocol;
pub mod registry;

pub use broadcast::{EventBus, Recv, Subscriber};
pub use daemon::{DaemonConfig, Dstressd};
pub use engine::{campaign_db_paths, run_word64_campaigns_journaled, ServiceEngine, ServiceError};
pub use protocol::{
    parse_request, read_frame, CampaignSpec, Event, FrameError, FrameReader, LeaderboardEntry,
    Request, Response, SeqEvent, StatusReport, MAX_FRAME_BYTES,
};
pub use registry::CampaignRegistry;
